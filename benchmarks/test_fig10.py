"""Fig. 10: response-time speedup vs DD at lambda = 1.2 TPS.

Paper shape: ASL/GOW/LOW show the best (near-linear) speedup; C2PL+M's
speedup is capped by blocking chains; OPT's by restart-saturated
resources; NODC's by already being resource-bound (~2x at DD = 8).
"""

from repro.experiments import exp1


def test_fig10(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp1.figure10(scale, dds=(1, 4, 8), mpl_candidates=(4, 8, 16)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    # baseline row is exactly 1
    for scheduler in ("NODC", "ASL", "GOW", "LOW", "C2PL+M", "OPT"):
        assert by[scheduler][0] == 1.0
    # the blocking-chain avoiders benefit from parallelism at heavy load
    for scheduler in ("ASL", "GOW", "LOW"):
        assert by[scheduler][-1] > 1.2
    # and OPT gains the least among lock/validation schedulers
    assert by["OPT"][-1] <= min(by[s][-1] for s in ("ASL", "GOW", "LOW"))
