"""Extension bench: resource-aware LOW (the paper's further work).

The paper closes by suggesting the WTPG schedulers be improved "for
resource-level load-balancing".  LOW-LB adds the current DPN scan
backlog to the WTPG's T0 weights, so contended locks preferentially go
to transactions headed for idle nodes.

Workload: Pattern 1 with the heavy 5-object scan (F2) *skewed* onto
files homed at nodes 0-3, while F1 stays uniform -- the imbalanced
placement where resource awareness can matter.
"""

from repro.analysis import render_table
from repro.machine import MachineConfig
from repro.sim.simulation import Simulation
from repro.txn import PATTERN_1
from repro.txn.workload import Workload

#: files homed on nodes 0-3 under the paper's (f mod 8) home rule
SKEWED_FILES = (0, 1, 2, 3, 8, 9, 10, 11)


def skewed_chooser(streams):
    f2 = SKEWED_FILES[streams.uniform_int("f2-skew", 0, len(SKEWED_FILES) - 1)]
    while True:
        f1 = streams.uniform_int("f1-uniform", 0, 15)
        if f1 != f2:
            return {"F1": f1, "F2": f2}


def skewed_workload(rate):
    return Workload(PATTERN_1, skewed_chooser, rate, name="exp1-skewed")


def run_one(scheduler, scale, seed):
    sim = Simulation(
        MachineConfig(dd=1, num_files=16),
        skewed_workload(0.8),
        scheduler=scheduler,
        seed=seed,
        duration_ms=scale.duration_ms,
        warmup_ms=scale.warmup_ms,
    )
    return sim.run()


def test_ext_low_lb(benchmark, scale, show):
    def run():
        rows = []
        for scheduler in ("LOW", "LOW-LB"):
            result = run_one(scheduler, scale, seed=5)
            rows.append([
                scheduler,
                result.throughput_tps,
                result.mean_response_s,
                result.delays,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["scheduler", "TPS", "meanRT(s)", "delays"],
        rows,
        title="Extension: LOW vs LOW-LB on a node-skewed workload (0.8 TPS)",
    ))

    by = {row[0]: row for row in rows}
    # the extension must not hurt: stays within 15% of LOW's throughput
    assert by["LOW-LB"][1] >= by["LOW"][1] * 0.85
