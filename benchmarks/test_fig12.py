"""Fig. 12: hot-set response-time speedup vs DD at 1.2 TPS.

Paper shape: LOW/GOW/ASL have the best speedup; C2PL's is limited by
blocking chains on the hot files; OPT's is the worst; LOW pairs the
best throughput with the best speedup.
"""

from repro.experiments import exp2


def test_fig12(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp2.figure12(scale, dds=(1, 4)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    # baseline = 1, and parallelism gives the chain-avoiders real
    # speedup on the hot set; C2PL's is limited by blocking chains (the
    # paper's point), so it only gets a loose floor here
    for scheduler in ("ASL", "GOW", "LOW", "C2PL"):
        assert by[scheduler][0] == 1.0
    for scheduler in ("ASL", "GOW", "LOW"):
        assert by[scheduler][1] > 1.0
    assert by["C2PL"][1] > 0.8
    # OPT gains the least (restarts saturate the machine regardless)
    assert by["OPT"][1] <= min(by[s][1] for s in ("ASL", "GOW", "LOW"))
