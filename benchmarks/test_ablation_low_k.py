"""Ablation: LOW's K-conflict admission limit (the paper fixes K = 2).

K bounds how many conflicting declarations may coexist per granule:
K = 0 admits no conflicting pair at all (serialising hot-file updaters
like a stricter ASL), while large K floods the hot files with blocked
transactions like C2PL.  The hot-set workload (Experiment 2) is where
the choice matters.
"""

from repro.analysis import render_table
from repro.machine import MachineConfig
from repro.sim import run_at_rate
from repro.txn import experiment2_workload

K_VALUES = (0, 1, 2, 4, 8)


def test_ablation_low_k(benchmark, scale, show):
    def run():
        rows = []
        for k in K_VALUES:
            result = run_at_rate(
                f"LOW(K={k})",
                experiment2_workload,
                1.0,
                config=MachineConfig(dd=1, num_files=16),
                seed=3,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
            )
            rows.append([
                k,
                result.throughput_tps,
                result.mean_response_s,
                result.admission_rejections,
                result.delays,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["K", "TPS", "meanRT(s)", "admission rejections", "delays"],
        rows,
        title="Ablation: LOW K-conflict limit on the hot-set workload (1.0 TPS)",
    ))

    by_k = {row[0]: row for row in rows}
    # K = 0 over-serialises: admits strictly less than K = 2
    assert by_k[0][3] > by_k[2][3] * 0.5  # rejects plenty
    # some K in the middle should be at least as good as the extremes
    best_tps = max(row[1] for row in rows)
    assert by_k[2][1] >= best_tps * 0.75  # the paper's K=2 is near-best
