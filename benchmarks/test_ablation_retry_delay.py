"""Ablation: the re-submission delay for delayed lock requests.

The paper only says delayed/aborted requests are re-submitted "after
some delay".  Our scheduler wakes them on every commit and adds a
configurable fallback timer; this ablation shows the metric surface is
flat across an order of magnitude of fallback delays -- i.e. the
unspecified constant is not doing the scheduling work, the event-driven
wake-ups are.
"""

from repro.analysis import render_table
from repro.machine import MachineConfig
from repro.sim import run_at_rate
from repro.txn import experiment1_workload

DELAYS_MS = (25.0, 100.0, 400.0)


def test_ablation_retry_delay(benchmark, scale, show):
    def run():
        rows = []
        for delay in DELAYS_MS:
            result = run_at_rate(
                "LOW",
                lambda rate: experiment1_workload(rate, num_files=16),
                0.8,
                config=MachineConfig(
                    dd=1, num_files=16, retry_delay_ms=delay
                ),
                seed=3,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
            )
            rows.append([
                delay,
                result.throughput_tps,
                result.mean_response_s,
                result.delays,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["retry delay (ms)", "TPS", "meanRT(s)", "delays"],
        rows,
        title="Ablation: delayed-request re-submission fallback (LOW, 0.8 TPS)",
    ))

    tps = [row[1] for row in rows]
    # performance is insensitive to the fallback constant
    assert max(tps) - min(tps) <= 0.15 * max(tps)
