"""Ablation: network transit delay.

Table 1 sets ``netdelay`` to 0 ms.  This ablation verifies that the
conclusion is insensitive to realistic LAN delays: message latency adds
a constant per step, negligible against 1,000 ms object scans, so the
scheduler ranking is unchanged even at 50 ms per hop.
"""

from repro.analysis import render_table
from repro.machine import MachineConfig
from repro.sim import run_at_rate
from repro.txn import experiment1_workload

DELAYS_MS = (0.0, 10.0, 50.0)
SCHEDULERS = ("ASL", "C2PL")


def test_ablation_netdelay(benchmark, scale, show):
    def run():
        rows = []
        for delay in DELAYS_MS:
            config = MachineConfig(dd=1, num_files=16, netdelay_ms=delay)
            row = [delay]
            for scheduler in SCHEDULERS:
                result = run_at_rate(
                    scheduler,
                    lambda rate: experiment1_workload(rate, num_files=16),
                    0.6,
                    config=config,
                    seed=3,
                    duration_ms=scale.duration_ms,
                    warmup_ms=scale.warmup_ms,
                )
                row.extend([result.throughput_tps, result.mean_response_s])
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["netdelay (ms)", "ASL TPS", "ASL RT(s)", "C2PL TPS", "C2PL RT(s)"],
        rows,
        title="Ablation: network delay (Experiment 1, 0.6 TPS, DD=1)",
    ))

    # ASL beats C2PL at every delay; absolute impact of delay is small
    for row in rows:
        assert row[1] > row[3] * 0.9
    assert rows[-1][1] > rows[0][1] * 0.8  # 50 ms barely moves throughput
