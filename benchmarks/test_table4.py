"""Table 4: hot-set throughput (at RT = 70 s) and response time (at
1.2 TPS) vs DD -- Experiment 2.

Paper shape at DD = 1: LOW best lock-based (0.77), then C2PL (0.7),
then GOW (0.57), ASL worst except OPT (0.4); parallelism (DD = 4)
brings everyone but OPT close to NODC.
"""

from repro.experiments import exp2


def test_table4(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp2.table4(scale, dds=(1, 4)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    metrics = by["metric"]
    thruput_dd1 = metrics.index("thruput DD=1")
    thruput_dd4 = metrics.index("thruput DD=4")
    # the paper's headline: LOW beats GOW and ASL when updating a hot set
    assert by["LOW"][thruput_dd1] > by["GOW"][thruput_dd1] * 0.95
    assert by["LOW"][thruput_dd1] > by["ASL"][thruput_dd1]
    assert by["LOW"][thruput_dd1] > by["OPT"][thruput_dd1]
    # parallelism lifts every lock-based scheduler (tolerance for the
    # short-horizon bisection noise at smoke scale)
    for scheduler in ("ASL", "GOW", "LOW", "C2PL"):
        assert by[scheduler][thruput_dd4] > by[scheduler][thruput_dd1] * 0.85
