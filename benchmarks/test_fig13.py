"""Fig. 13: declaration-error sigma vs throughput at RT = 70 s.

Paper shape: GOW and LOW degrade gracefully as declared I/O demands get
noisier, staying above the C2PL floor even at sigma = 10; higher DD
shrinks the degradation.
"""

from repro.experiments import exp3


def test_fig13(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp3.figure13(scale, sigmas=(0.0, 1.0, 10.0), dds=(1, 4)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    for dd in (1, 4):
        for scheduler in ("GOW", "LOW"):
            series = by[f"{scheduler}@DD={dd}"]
            # degradation is bounded: sigma = 10 keeps most of sigma = 0
            assert series[-1] > series[0] * 0.5
            # and stays above (or near) the C2PL floor
            assert series[-1] > by[f"C2PL@DD={dd}"][0] * 0.8
