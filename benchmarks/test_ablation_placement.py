"""Ablation: consecutive vs strided declustering.

The paper places a file's DD partitions on *consecutive* nodes starting
at its home node.  A strided placement spreads them maximally.  With
Pattern 1's uniform file choice both balance load well; the ablation
verifies the simulator exposes placement as a real knob and that the
paper's consecutive rule is not hiding a pathology.
"""

from repro.analysis import render_table
from repro.machine import DataPlacement, MachineConfig
from repro.sim.simulation import Simulation
from repro.txn import experiment1_workload


def run_with_striping(striping, scale, seed=3):
    config = MachineConfig(dd=4, num_files=16)
    sim = Simulation(
        config,
        experiment1_workload(1.0, num_files=16),
        scheduler="ASL",
        seed=seed,
        duration_ms=scale.duration_ms,
        warmup_ms=scale.warmup_ms,
    )
    sim.machine.placement = DataPlacement(config, striping=striping)
    return sim.run()


def test_ablation_placement(benchmark, scale, show):
    def run():
        rows = []
        for striping in ("consecutive", "strided"):
            result = run_with_striping(striping, scale)
            rows.append([
                striping,
                result.throughput_tps,
                result.mean_response_s,
                result.dpn_utilisation,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["striping", "TPS", "meanRT(s)", "DPN util"],
        rows,
        title="Ablation: partition striping at DD=4 (ASL, Experiment 1, 1.0 TPS)",
    ))

    tps = {row[0]: row[1] for row in rows}
    # both placements sustain the load; neither collapses
    assert tps["consecutive"] > 0.5
    assert tps["strided"] > 0.5
    # and they agree within a modest factor (uniform access pattern)
    assert 0.7 < tps["strided"] / tps["consecutive"] < 1.4
