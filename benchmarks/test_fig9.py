"""Fig. 9: throughput (TPS) at RT = 70 s vs degree of declustering.

Paper shape: ASL/GOW/LOW reach ~85% useful utilisation already at
DD = 2 (1.5x C2PL); all lock-based schedulers converge near NODC by
DD = 8; OPT stays lowest.
"""

from repro.experiments import exp1


def test_fig9(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp1.figure9(scale, dds=(1, 2, 8)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    dd_index = {dd: i for i, dd in enumerate(by["dd"])}
    # parallelism raises lock-based throughput
    for scheduler in ("ASL", "GOW", "LOW", "C2PL"):
        assert by[scheduler][dd_index[8]] > by[scheduler][dd_index[1]]
    # at limited parallelism the blocking-chain avoiders beat C2PL
    i2 = dd_index[2]
    for good in ("ASL", "GOW", "LOW"):
        assert by[good][i2] > by["C2PL"][i2] * 0.9
    # by DD = 8 the lock-based schedulers close on NODC
    i8 = dd_index[8]
    for good in ("ASL", "GOW", "LOW"):
        assert by[good][i8] > by["NODC"][i8] * 0.7
