"""Microbenchmarks of the substrate: DES engine, chain solver, WTPG.

These are ordinary pytest-benchmark measurements (multiple rounds) of
the hot paths underneath the reproduction, useful to catch performance
regressions independently of any experiment.
"""

import random

from repro.core import WTPG
from repro.core.chain import ChainComponent, ChainEdge, LEFT, RIGHT, solve_component
from repro.des import Environment
from repro.txn import AccessMode, BatchTransaction, Step


def run_event_storm():
    """10k timeout events through the engine."""
    env = Environment()

    def ticker(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(ticker(env, 10_000))
    env.run()
    return env.now


def test_perf_des_engine(benchmark):
    now = benchmark(run_event_storm)
    assert now == 10_000.0


def make_chain(k, seed=7):
    rng = random.Random(seed)
    return ChainComponent(
        nodes=list(range(k)),
        node_weights=[rng.uniform(0, 10) for _ in range(k)],
        edges=[
            ChainEdge(
                i,
                i + 1,
                rng.uniform(0, 10),
                rng.uniform(0, 10),
                frozenset({RIGHT, LEFT}),
            )
            for i in range(k - 1)
        ],
    )


def test_perf_chain_solver_64_nodes(benchmark):
    """GOW's W computation on a 64-transaction chain."""
    component = make_chain(64)
    value, directions = benchmark(solve_component, component)
    assert len(directions) == 63
    assert value > 0


def make_txn(txn_id, rng, num_files=16):
    files = rng.sample(range(num_files), 2)
    return BatchTransaction(
        txn_id,
        [
            Step(files[0], AccessMode.EXCLUSIVE, 1.0),
            Step(files[1], AccessMode.EXCLUSIVE, 5.0),
        ],
        arrival_time=0.0,
    )


def run_wtpg_churn():
    """Add/grant/remove 300 transactions through a shared WTPG."""
    rng = random.Random(3)
    wtpg = WTPG()
    live = []
    for txn_id in range(300):
        txn = make_txn(txn_id, rng)
        wtpg.add_transaction(txn)
        live.append(txn)
        for file_id in txn.files:
            fixes = wtpg.fixes_for_grant(txn.txn_id, file_id)
            if not wtpg.creates_cycle(fixes):
                wtpg.grant(txn.txn_id, file_id, propagate=False)
        if len(live) > 60:  # keep a realistic live-set size
            gone = live.pop(0)
            wtpg.remove_transaction(gone.txn_id)
    return len(wtpg)


def test_perf_wtpg_churn(benchmark):
    remaining = benchmark(run_wtpg_churn)
    assert remaining == 60
