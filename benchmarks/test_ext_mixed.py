"""Extension bench: mixed small-job / bulk-batch workload.

The paper's motivation scenario, quantified: per-class response times
under each scheduler.  Shape expectation: the chain-avoiding schedulers
(ASL/GOW/LOW) keep small-job latency far below C2PL's, and OPT starves
the bulk class (large transactions keep failing validation).
"""

from repro.analysis import render_table
from repro.machine import MachineConfig
from repro.sim.simulation import Simulation
from repro.txn import mixed_workload

SCHEDULERS = ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT")


def test_ext_mixed(benchmark, scale, show):
    def run():
        rows = []
        for scheduler in SCHEDULERS:
            result = Simulation(
                MachineConfig(dd=1, num_files=16),
                mixed_workload(2.0, small_share=0.8),
                scheduler=scheduler,
                seed=2,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
            ).run()
            small = result.label_metrics.get("small", (0, float("nan")))
            bulk = result.label_metrics.get("bulk", (0, float("nan")))
            rows.append([
                scheduler,
                result.throughput_tps,
                small[1] / 1000.0,
                bulk[1] / 1000.0,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["scheduler", "TPS", "small RT(s)", "bulk RT(s)"],
        rows,
        title="Extension: mixed small/bulk workload (2.0 TPS, 80% small)",
    ))

    by = {row[0]: row for row in rows}
    # chain avoiders protect small-job latency vs C2PL
    for good in ("ASL", "LOW"):
        assert by[good][2] < by["C2PL"][2] * 1.1
    # every locking scheduler completes both classes
    for scheduler in ("ASL", "GOW", "LOW", "C2PL"):
        assert by[scheduler][1] > 1.0
