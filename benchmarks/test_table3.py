"""Table 3: mean response time (s) at lambda = 1.2 TPS vs DD.

Paper shape (DD = 1 -> 8): every scheduler's RT falls with DD;
ASL/GOW/LOW fall fastest and land near NODC at DD = 8; C2PL+M stays
2-2.5x worse at DD = 2-4; OPT barely improves.
"""

from repro.experiments import exp1


def test_table3(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp1.table3(scale, dds=(1, 4), mpl_candidates=(4, 8, 16)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    # declustering shortens response times for the lock-based schedulers
    for scheduler in ("NODC", "ASL", "GOW", "LOW", "C2PL+M"):
        assert by[scheduler][1] < by[scheduler][0]
    # at DD = 1 the bulk-update contention puts everyone at or above
    # NODC (short horizons censor overloaded response times, so allow
    # near-equality)
    for scheduler in ("ASL", "GOW", "LOW", "C2PL+M", "OPT"):
        assert by[scheduler][0] > by["NODC"][0] * 0.8
