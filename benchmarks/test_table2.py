"""Table 2: throughput (TPS) at RT = 70 s vs NumFiles (DD = 1).

Paper shape: ASL ~= GOW ~= LOW, 1.6-2.0x above C2PL, which is above
OPT; NODC stays ~1.04 regardless; everyone improves as NumFiles grows
(less contention).
"""

from repro.experiments import exp1


def test_table2(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp1.table2(scale, file_counts=(8, 16, 32)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    for i in range(len(output.rows)):
        # the paper's grouping: blocking-chain avoiders beat C2PL and OPT
        for good in ("ASL", "GOW", "LOW"):
            assert by[good][i] > by["C2PL"][i] * 0.9
            assert by[good][i] > by["OPT"][i] * 0.9
        # NODC is the bound for everyone (generous tolerance: at smoke
        # scale the 3-iteration bisection is noisy)
        for scheduler in ("ASL", "GOW", "LOW", "C2PL", "OPT"):
            assert by[scheduler][i] <= by["NODC"][i] * 1.4
    # more files -> less contention -> higher lock-based throughput
    assert by["ASL"][-1] > by["ASL"][0]
    assert by["C2PL"][-1] > by["C2PL"][0]

    # quantified shape agreement with the published table: the measured
    # scheduler ranking must be mostly concordant with the paper's
    from repro.analysis import ordering_agreement, paper_data

    schedulers = ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT")
    for i, num_files in enumerate(by["num_files"]):
        measured = {s: by[s][i] for s in schedulers}
        agreement = ordering_agreement(
            measured, paper_data.TABLE2[num_files]
        )
        assert agreement >= 0.7, (num_files, measured)
