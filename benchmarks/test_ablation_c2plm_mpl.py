"""Ablation: the MPL knob behind C2PL+M.

The paper footnotes that C2PL+M improves response time but not peak
throughput.  Sweeping the multiprogramming level makes that visible:
small MPL caps the blocking chains (better RT), but admission queueing
replaces lock queueing, so completed work saturates.
"""

from repro.analysis import render_table
from repro.machine import MachineConfig
from repro.sim import run_at_rate
from repro.txn import experiment1_workload

MPLS = (2, 4, 8, 16, None)  # None = plain C2PL (infinite MPL)


def test_ablation_c2plm_mpl(benchmark, scale, show):
    def run():
        rows = []
        for mpl in MPLS:
            result = run_at_rate(
                "C2PL",
                lambda rate: experiment1_workload(rate, num_files=16),
                1.0,
                config=MachineConfig(dd=1, num_files=16, mpl=mpl),
                seed=3,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
            )
            rows.append([
                "inf" if mpl is None else mpl,
                result.throughput_tps,
                result.mean_response_s,
                result.blocks,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["mpl", "TPS", "meanRT(s)", "blocks"],
        rows,
        title="Ablation: C2PL under MPL control (Experiment 1, 1.0 TPS, DD=1)",
    ))

    by_mpl = {row[0]: row for row in rows}
    # bounding MPL reduces lock blocking dramatically vs infinite MPL
    assert by_mpl[2][3] < by_mpl["inf"][3]
    # and some finite MPL completes at least as much work
    assert max(r[1] for r in rows[:-1]) >= by_mpl["inf"][1] * 0.9
