"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures and
prints it.  The simulation horizon is controlled by ``REPRO_SCALE``:

- ``smoke`` (default here): short runs -- the orderings the paper reports
  are already visible, and the whole suite stays fast;
- ``quick``: 400 s simulated per point;
- ``paper``: the paper's full 2,000,000-clock horizon per point.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables inline.
"""

import pytest

from repro.analysis import render_table
from repro.experiments import SMOKE, scale_from_env


@pytest.fixture(scope="session")
def scale():
    """The RunScale for every benchmark (REPRO_SCALE overrides)."""
    return scale_from_env(default=SMOKE)


@pytest.fixture
def show():
    """Print a regenerated ExperimentOutput as an aligned table."""

    def _show(output):
        print()
        print(render_table(output.headers, output.rows, title=output.title))
        if output.paper_reference:
            print(f"[paper] {output.paper_reference}")
        return output

    return _show
