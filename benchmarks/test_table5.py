"""Table 5: sensitivity degradation ratio TPS(sigma=10)/TPS(sigma=0).

Paper: GOW 94/96/97.5 %, LOW 77/84/93 % at DD = 1/2/4 -- GOW's
chain-form constraint makes it less sensitive to bad declarations, and
both schedulers get *less* sensitive as parallelism grows.
"""

from repro.experiments import exp3


def test_table5(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp3.table5(scale=scale, dds=(1, 4)),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    for scheduler_row in output.rows:
        name = scheduler_row[0]
        # degradation bounded (ratios are percentages)
        for value in scheduler_row[1:]:
            assert 50.0 <= value <= 115.0, f"{name}: {value}"
