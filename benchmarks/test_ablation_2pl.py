"""Ablation: the dismissed baseline -- plain strict 2PL with deadlocks.

The paper drops traditional 2PL in the introduction ("chains of
blocking") and studies its cautious variant instead.  This bench makes
the dismissal quantitative: plain 2PL adds deadlock restarts on top of
C2PL's blocking chains, and both trail the chain-avoiders badly.
"""

from repro.analysis import render_table
from repro.machine import MachineConfig
from repro.sim import run_at_rate
from repro.txn import experiment1_workload

SCHEDULERS = ("ASL", "LOW", "C2PL", "2PL")


def test_ablation_2pl(benchmark, scale, show):
    def run():
        rows = []
        for scheduler in SCHEDULERS:
            result = run_at_rate(
                scheduler,
                lambda rate: experiment1_workload(rate, num_files=16),
                0.8,
                config=MachineConfig(dd=1, num_files=16),
                seed=3,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
            )
            rows.append([
                scheduler,
                result.throughput_tps,
                result.mean_response_s,
                result.restarts,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["scheduler", "TPS", "meanRT(s)", "deadlock restarts"],
        rows,
        title="Ablation: plain 2PL vs the paper's line-up (Exp. 1, 0.8 TPS, DD=1)",
    ))

    by = {row[0]: row for row in rows}
    # plain 2PL actually deadlocks on this workload
    assert by["2PL"][3] > 0
    # the chain-avoiders beat both 2PL variants
    for good in ("ASL", "LOW"):
        assert by[good][1] > by["2PL"][1] * 0.9
        assert by[good][1] > by["C2PL"][1] * 0.9
