"""Fig. 8: arrival rate vs mean response time (DD = 1, NumFiles = 16).

Paper shape: every scheduler's RT curve blows up well below NODC's
saturation rate of ~1.04 TPS (data contention dominates resource
congestion for bulk-update batches); ASL/GOW/LOW blow up latest,
C2PL and OPT earliest.
"""

from repro.experiments import exp1


def test_fig8(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp1.figure8(scale, rates=(0.2, 0.6, 1.0, 1.2)),
        rounds=1,
        iterations=1,
    )
    show(output)

    rates = output.column("lambda_tps")
    heavy = rates.index(1.2)
    light = rates.index(0.2)
    for scheduler in ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"):
        series = output.column(scheduler)
        assert series[light] > 0
        # response time grows with load for every scheduler
        assert series[heavy] > series[light]
    # locking/contention puts every scheduler above the NODC bound
    # at heavy load
    nodc_heavy = output.column("NODC")[heavy]
    for scheduler in ("ASL", "GOW", "LOW", "C2PL", "OPT"):
        assert output.column(scheduler)[heavy] > nodc_heavy * 0.9
