"""Fig. 11: response-time speedup (DD = 1 -> 4) vs arrival rate.

Paper shape: at light loads every scheduler enjoys the parallelism;
at heavy loads (lambda above C2PL's DD = 4 capacity) only ASL/GOW/LOW
keep high speedup -- C2PL's blocking chains and OPT's restarts flatten
theirs.
"""

from repro.experiments import exp1


def test_fig11(benchmark, scale, show):
    output = benchmark.pedantic(
        lambda: exp1.figure11(scale, rates=(0.4, 1.2), dd=4),
        rounds=1,
        iterations=1,
    )
    show(output)

    by = output.as_dict()
    light, heavy = 0, 1
    # parallelism helps every scheduler at light load
    for scheduler in ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"):
        assert by[scheduler][light] > 1.0
    # at heavy load the blocking-chain avoiders keep better speedup
    # than OPT (the paper's observations #2-#4)
    for good in ("ASL", "GOW", "LOW"):
        assert by[good][heavy] > by["OPT"][heavy] * 0.9
