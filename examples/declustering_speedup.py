#!/usr/bin/env python3
"""Intra-transaction parallelism: response-time speedup from declustering.

A shared-nothing machine tunes data placement for short transactions,
which limits how many nodes a batch's file scan can use (the degree of
declustering, DD).  This example sweeps DD and reports each scheduler's
response-time speedup relative to DD = 1 at a heavy load -- the paper's
Fig. 10 scenario.

The headline: ASL, GOW and LOW turn limited parallelism into near-linear
speedup even under heavy load, while C2PL's blocking chains and OPT's
restart-saturated resources waste it.

Usage::

    python examples/declustering_speedup.py [ARRIVAL_RATE_TPS]
"""

import sys

from repro import MachineConfig, experiment1_workload, run_simulation
from repro.analysis import render_series

SCHEDULERS = ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT")
DDS = (1, 2, 4, 8)


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 1.2

    response_times = {s: [] for s in SCHEDULERS}
    for dd in DDS:
        config = MachineConfig(dd=dd, num_files=16)
        for scheduler in SCHEDULERS:
            result = run_simulation(
                scheduler,
                experiment1_workload(rate, num_files=16),
                config,
                seed=5,
                duration_ms=500_000,
                warmup_ms=60_000,
            )
            response_times[scheduler].append(result.mean_response_ms)

    speedups = {
        s: [rts[0] / rt if rt > 0 else float("nan") for rt in rts]
        for s, rts in response_times.items()
    }
    print(render_series(
        "DD",
        list(DDS),
        speedups,
        title=f"Response-time speedup vs DD=1 at {rate} TPS (Fig. 10 scenario)",
    ))
    print(
        "\nASL/GOW/LOW obtain high speedup already at DD <= 4 -- blocking, "
        "not bandwidth, dominated their DD=1 response times, and these "
        "three schedulers convert parallelism into shorter lock-holding "
        "times without restarts.  NODC barely speeds up (it was already "
        "resource-bound), and OPT's restarts keep the machine saturated."
    )


if __name__ == "__main__":
    main()
