#!/usr/bin/env python3
"""Build a custom batch workload with the pattern DSL.

Models a nightly reporting pipeline on a 4-node machine:

- ``etl``     : scan a staging file and rewrite a fact file,
- ``report``  : heavy read over the fact file plus a dimension file,
- ``cleanup`` : small update of the staging file.

Each arrival picks one of the three job types.  The example also shows
per-file declustering overrides (the fact file is spread wider than the
rest) and the declaration-error model (costs estimated within +/-30%).

Usage::

    python examples/custom_workload.py [SCHEDULER]
"""

import sys

from repro import MachineConfig, Pattern, Workload
from repro.analysis import render_table
from repro.machine import DataPlacement
from repro.sim.simulation import Simulation
from repro.txn.workload import DeclarationErrorModel

# files: 0 = staging, 1 = fact, 2, 3 = dimensions
ETL = Pattern.parse("r(0:2) -> w(1:4)")
REPORT = Pattern.parse("r(1:6) -> r(D:1)")
CLEANUP = Pattern.parse("w(0:0.5)")

JOB_MIX = (
    (0.50, ETL),
    (0.35, REPORT),
    (0.15, CLEANUP),
)


def choose_job_files(streams):
    """Pick a job type by weight, binding REPORT's dimension file."""
    roll = streams.stream("job-mix").random()
    cumulative = 0.0
    for weight, pattern in JOB_MIX:
        cumulative += weight
        if roll <= cumulative:
            break
    dimension = streams.uniform_int("dimension", 2, 3)
    return {"D": dimension, "__pattern__": pattern}


class MixedWorkload(Workload):
    """A workload drawing from several patterns per arrival."""

    def make_transaction(self, arrival_time, streams):
        binding = dict(choose_job_files(streams))
        pattern = binding.pop("__pattern__")
        steps = pattern.instantiate(binding)
        declared = self.error_model.declare([s.cost for s in steps], streams)
        from repro.txn import BatchTransaction

        return BatchTransaction(
            txn_id=self.allocate_txn_id(),
            steps=steps,
            arrival_time=arrival_time,
            declared_costs=declared,
        )


def main() -> None:
    scheduler = sys.argv[1] if len(sys.argv) > 1 else "LOW"

    config = MachineConfig(num_nodes=4, num_files=4, dd=1)
    # spread the hot fact file across all 4 nodes, keep the rest local
    placement = DataPlacement(config, dd_overrides={1: 4})

    workload = MixedWorkload(
        ETL,  # placeholder; make_transaction picks the real pattern
        choose_job_files,
        arrival_rate_tps=0.4,
        error_model=DeclarationErrorModel(sigma=0.3),
        name="nightly-pipeline",
    )

    sim = Simulation(
        config,
        workload,
        scheduler=scheduler,
        seed=23,
        duration_ms=600_000,
        warmup_ms=60_000,
    )
    sim.machine.placement = placement  # apply the override placement
    result = sim.run()

    print(render_table(
        ["metric", "value"],
        [
            ["scheduler", scheduler],
            ["committed jobs", result.completed],
            ["throughput (TPS)", result.throughput_tps],
            ["mean response (s)", result.mean_response_s],
            ["p95 response (s)", result.p95_response_ms / 1000.0],
            ["DPN utilisation", result.dpn_utilisation],
            ["blocks", result.blocks],
            ["delays", result.delays],
        ],
        title="Nightly pipeline on a 4-node machine (fact file declustered x4)",
    ))
    print(
        "\nNote how the WTPG schedulers take the +/-30% declared-cost error "
        "in stride (the paper's Experiment 3 studies exactly this)."
    )


if __name__ == "__main__":
    main()
