#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs Experiments 1-3 end to end and writes one text table per
table/figure (plus CSVs) into ``results/<scale>/``.

Usage::

    python examples/reproduce_paper.py [--scale smoke|quick|paper]
                                       [--only fig8,table2,...]
                                       [--seed N] [--pool N] [--no-cache]

``--scale paper`` matches the paper's 2,000,000-clock horizon per point
(slow: hours).  ``quick`` preserves every qualitative shape in minutes.

Runs execute through :class:`repro.runner.ParallelRunner`: ``--pool``
sets the worker-process count (default: CPU count), completed runs are
cached under ``<out>/cache/`` so re-invocations (and the overlapping
points of fig10/table3, fig13/table5) are served from disk, and each
batch writes a JSON manifest under ``<out>/runs/``.
"""

import argparse
import pathlib
import sys
import time

from repro.analysis import render_table, to_csv
from repro.experiments import PAPER, QUICK, SMOKE, exp1, exp2, exp3
from repro.runner import ParallelRunner, ResultCache

SCALES = {"smoke": SMOKE, "quick": QUICK, "paper": PAPER}

EXPERIMENTS = {
    "fig8": exp1.figure8,
    "table2": exp1.table2,
    "fig9": exp1.figure9,
    "table3": exp1.table3,
    "fig10": exp1.figure10,
    "fig11": exp1.figure11,
    "table4": exp2.table4,
    "fig12": exp2.figure12,
    "fig13": exp3.figure13,
    "table5": lambda scale, **kwargs: exp3.table5(scale=scale, **kwargs),
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated experiment ids (default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--pool",
        type=int,
        default=None,
        help="worker processes for independent runs (default: CPU count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate; do not read or write the result cache",
    )
    args = parser.parse_args()

    scale = SCALES[args.scale]
    wanted = [w for w in args.only.split(",") if w] or list(EXPERIMENTS)
    unknown = set(wanted) - set(EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiment ids: {sorted(unknown)}")

    out_dir = pathlib.Path(args.out) / args.scale
    out_dir.mkdir(parents=True, exist_ok=True)
    cache = (
        None if args.no_cache
        else ResultCache(pathlib.Path(args.out) / "cache")
    )
    runner = ParallelRunner(
        pool_size=args.pool,
        cache=cache,
        runs_dir=pathlib.Path(args.out) / "runs",
    )

    for experiment_id in wanted:
        started = time.time()
        print(f"=== {experiment_id} (scale={args.scale}) ...", flush=True)
        output = EXPERIMENTS[experiment_id](
            scale, seed=args.seed, runner=runner
        )
        table = render_table(output.headers, output.rows, title=output.title)
        print(table)
        if output.paper_reference:
            print(f"[paper] {output.paper_reference}")
        print(f"[{time.time() - started:.1f}s]\n", flush=True)
        (out_dir / f"{experiment_id}.txt").write_text(
            table + "\n\n[paper] " + output.paper_reference + "\n"
        )
        (out_dir / f"{experiment_id}.csv").write_text(
            to_csv(output.headers, output.rows)
        )
    print(
        f"[runner] pool={runner.pool_size} cache hits={runner.cache_hits} "
        f"misses={runner.cache_misses} over {runner.runs_completed} runs"
    )
    print(f"Wrote results to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
