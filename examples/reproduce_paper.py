#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs Experiments 1-3 end to end and writes one text table per
table/figure (plus CSVs) into ``results/<scale>/``.

Usage::

    python examples/reproduce_paper.py [--scale smoke|quick|paper]
                                       [--only fig8,table2,...]
                                       [--seed N]

``--scale paper`` matches the paper's 2,000,000-clock horizon per point
(slow: hours).  ``quick`` preserves every qualitative shape in minutes.
"""

import argparse
import pathlib
import sys
import time

from repro.analysis import render_table, to_csv
from repro.experiments import PAPER, QUICK, SMOKE, exp1, exp2, exp3

SCALES = {"smoke": SMOKE, "quick": QUICK, "paper": PAPER}

EXPERIMENTS = {
    "fig8": lambda scale, seed: exp1.figure8(scale, seed=seed),
    "table2": lambda scale, seed: exp1.table2(scale, seed=seed),
    "fig9": lambda scale, seed: exp1.figure9(scale, seed=seed),
    "table3": lambda scale, seed: exp1.table3(scale, seed=seed),
    "fig10": lambda scale, seed: exp1.figure10(scale, seed=seed),
    "fig11": lambda scale, seed: exp1.figure11(scale, seed=seed),
    "table4": lambda scale, seed: exp2.table4(scale, seed=seed),
    "fig12": lambda scale, seed: exp2.figure12(scale, seed=seed),
    "fig13": lambda scale, seed: exp3.figure13(scale, seed=seed),
    "table5": lambda scale, seed: exp3.table5(scale=scale, seed=seed),
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated experiment ids (default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    scale = SCALES[args.scale]
    wanted = [w for w in args.only.split(",") if w] or list(EXPERIMENTS)
    unknown = set(wanted) - set(EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiment ids: {sorted(unknown)}")

    out_dir = pathlib.Path(args.out) / args.scale
    out_dir.mkdir(parents=True, exist_ok=True)

    for experiment_id in wanted:
        started = time.time()
        print(f"=== {experiment_id} (scale={args.scale}) ...", flush=True)
        output = EXPERIMENTS[experiment_id](scale, args.seed)
        table = render_table(output.headers, output.rows, title=output.title)
        print(table)
        if output.paper_reference:
            print(f"[paper] {output.paper_reference}")
        print(f"[{time.time() - started:.1f}s]\n", flush=True)
        (out_dir / f"{experiment_id}.txt").write_text(
            table + "\n\n[paper] " + output.paper_reference + "\n"
        )
        (out_dir / f"{experiment_id}.csv").write_text(
            to_csv(output.headers, output.rows)
        )
    print(f"Wrote results to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
