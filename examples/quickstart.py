#!/usr/bin/env python3
"""Quickstart: simulate one batch-transaction scheduler.

Runs the paper's Experiment-1 workload (bulk read + bulk update of two
random files) under the LOW scheduler on the 8-node shared-nothing
machine, and prints the steady-state metrics.

Usage::

    python examples/quickstart.py [SCHEDULER] [ARRIVAL_RATE_TPS]
"""

import sys

from repro import MachineConfig, experiment1_workload, run_simulation


def main() -> None:
    scheduler = sys.argv[1] if len(sys.argv) > 1 else "LOW"
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.8

    config = MachineConfig(
        num_nodes=8,  # data-processing nodes (Table 1)
        num_files=16,  # file-level locking granules
        dd=2,  # each file declustered over 2 nodes
    )
    workload = experiment1_workload(arrival_rate_tps=rate, num_files=16)

    print(f"Simulating {scheduler} at {rate} TPS on {config.num_nodes} nodes "
          f"(DD={config.dd}) for 400 simulated seconds...")
    result = run_simulation(
        scheduler,
        workload,
        config,
        seed=42,
        duration_ms=400_000,
        warmup_ms=50_000,
    )

    print(f"\n  committed transactions : {result.completed}")
    print(f"  throughput             : {result.throughput_tps:.3f} TPS")
    print(f"  mean response time     : {result.mean_response_s:.1f} s")
    print(f"  95th pct response time : {result.p95_response_ms / 1000:.1f} s")
    print(f"  DPN utilisation        : {result.dpn_utilisation:.0%}")
    print(f"  CN (coordinator) load  : {result.cn_utilisation:.0%}")
    print(f"  lock blocks / delays   : {result.blocks} / {result.delays}")
    if result.restarts:
        print(f"  optimistic restarts    : {result.restarts}")


if __name__ == "__main__":
    main()
