#!/usr/bin/env python3
"""Hot-set scenario: periodic batches updating master files.

The paper's Experiment 2: every batch bulk-reads one of 8 read-only
files and then updates two of 8 'hot' master files.  Concurrency is
scarce -- at most a handful of updaters can touch a hot file at once --
so how many transactions a scheduler lets *start* dominates.

This example shows the paper's Section 5.2 finding: LOW (which admits
non-chain conflict patterns up to its K limit) beats both GOW (whose
chain-form test rejects too many starts) and ASL (which cannot start a
transaction until every hot file it needs is free).

Usage::

    python examples/hot_set_updates.py [ARRIVAL_RATE_TPS]
"""

import sys

from repro import MachineConfig, experiment2_workload, run_simulation
from repro.analysis import render_table

SCHEDULERS = ("NODC", "LOW", "C2PL", "GOW", "ASL", "OPT")


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0

    rows = []
    for dd in (1, 4):
        config = MachineConfig(dd=dd, num_files=16)
        for scheduler in SCHEDULERS:
            result = run_simulation(
                scheduler,
                experiment2_workload(rate),
                config,
                seed=11,
                duration_ms=500_000,
                warmup_ms=60_000,
            )
            rows.append([
                dd,
                scheduler,
                result.throughput_tps,
                result.mean_response_s,
                result.admission_rejections,
            ])

    print(render_table(
        ["DD", "scheduler", "TPS", "meanRT(s)", "start rejections"],
        rows,
        title=f"Hot-set batch updates at {rate} TPS (Experiment 2)",
    ))
    print(
        "\nReading the table: at DD=1 LOW sustains the highest lock-based "
        "throughput; ASL's atomic all-locks-at-start admission starves on "
        "the hot files (see its rejection count), and GOW's chain-form "
        "constraint sits in between.  Parallelism (DD=4) narrows the gap, "
        "which is the paper's argument that the scheduler choice matters "
        "most exactly when placement tuning limits parallelism."
    )


if __name__ == "__main__":
    main()
