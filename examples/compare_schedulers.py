#!/usr/bin/env python3
"""Compare all six schedulers on the frequently-blocked batch workload.

Reproduces the qualitative content of the paper's Section 5.1 at one
load level: ASL, GOW and LOW avoid chains of blocking and track the
NODC upper bound; C2PL suffers blocking chains; OPT thrashes on
restarts.

Usage::

    python examples/compare_schedulers.py [ARRIVAL_RATE_TPS] [DD]
"""

import sys

from repro import MachineConfig, PAPER_SCHEDULERS, experiment1_workload, run_simulation
from repro.analysis import render_table


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    dd = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    config = MachineConfig(dd=dd, num_files=16)
    rows = []
    for scheduler in PAPER_SCHEDULERS:
        result = run_simulation(
            scheduler,
            experiment1_workload(rate, num_files=16),
            config,
            seed=7,
            duration_ms=500_000,
            warmup_ms=60_000,
        )
        rows.append([
            scheduler,
            result.throughput_tps,
            result.mean_response_s,
            result.dpn_utilisation * 100,
            result.blocks,
            result.delays,
            result.restarts,
        ])

    print(render_table(
        ["scheduler", "TPS", "meanRT(s)", "DPN%", "blocks", "delays", "restarts"],
        rows,
        title=f"Experiment-1 workload at {rate} TPS, DD={dd}, NumFiles=16",
    ))

    by_name = {row[0]: row for row in rows}
    nodc_tps = by_name["NODC"][1]
    print(f"\nUseful resource utilisation (TPS / NODC's {nodc_tps:.2f} TPS):")
    for scheduler in PAPER_SCHEDULERS[1:]:
        ratio = by_name[scheduler][1] / nodc_tps if nodc_tps else float("nan")
        print(f"  {scheduler:5s} {ratio:6.0%}")
    print(
        "\nThe paper's observation #1 (Section 5.1.2): ASL, GOW and LOW "
        "perform nearly alike and well above C2PL and OPT, because they "
        "avoid chains of blocking without rolling anything back."
    )


if __name__ == "__main__":
    main()
