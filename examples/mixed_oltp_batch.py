#!/usr/bin/env python3
"""Mixed workload: small jobs sharing the machine with bulk updates.

The paper's introduction motivates the whole study with "heavy
mixed-workload of short-term transactions and batch transactions".  This
example puts numbers on it: 80% of arrivals are small single-file
updates (0.1 objects ~ 100 ms of scan), 20% are Pattern-1 bulk batches,
and we report *per-class* response times per scheduler.

The punchline mirrors the paper: a scheduler that avoids chains of
blocking protects the small jobs from queueing behind bulk updates.

Usage::

    python examples/mixed_oltp_batch.py [TOTAL_RATE_TPS] [SMALL_SHARE]
"""

import sys

from repro import MachineConfig, run_simulation
from repro.analysis import render_table
from repro.txn import mixed_workload

SCHEDULERS = ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT")


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    small_share = float(sys.argv[2]) if len(sys.argv) > 2 else 0.8

    rows = []
    for scheduler in SCHEDULERS:
        result = run_simulation(
            scheduler,
            mixed_workload(rate, small_share=small_share),
            MachineConfig(dd=1, num_files=16),
            seed=2,
            duration_ms=500_000,
            warmup_ms=60_000,
        )
        small_count, small_rt = result.label_metrics.get("small", (0, float("nan")))
        bulk_count, bulk_rt = result.label_metrics.get("bulk", (0, float("nan")))
        rows.append([
            scheduler,
            result.throughput_tps,
            small_rt / 1000.0,
            bulk_rt / 1000.0,
            small_count,
            bulk_count,
        ])

    print(render_table(
        ["scheduler", "TPS", "small RT(s)", "bulk RT(s)", "#small", "#bulk"],
        rows,
        title=(
            f"Mixed workload at {rate} TPS total "
            f"({small_share:.0%} small single-file updates)"
        ),
    ))
    print(
        "\nSmall jobs are the collateral damage of blocking chains: under "
        "C2PL they queue behind bulk updates holding hot files, while "
        "ASL/GOW/LOW keep their latency near the no-contention bound.  "
        "(OPT instead sacrifices the *bulk* class: big transactions keep "
        "failing validation against small committed writers.)"
    )


if __name__ == "__main__":
    main()
