"""Batch-transaction model (Section 2 of the paper).

- :class:`Step` / :class:`AccessMode` -- one file scan, S or X.
- :class:`Pattern` -- the ``r(F1:1) -> w(F2:0.2)`` workload DSL, with the
  paper's :data:`PATTERN_1` and :data:`PATTERN_2` predefined.
- :class:`BatchTransaction` -- declared step sequence, lock plan, WTPG
  cost arithmetic, restart support.
- :class:`Workload` and the per-experiment factories -- Poisson arrivals
  and the Experiment 1/2/3 file-choice and declaration-error rules.
"""

from repro.txn.pattern import PATTERN_1, PATTERN_2, Pattern, PatternError
from repro.txn.step import AccessMode, Step
from repro.txn.transaction import BatchTransaction, TransactionState
from repro.txn.workload import (
    DeclarationErrorModel,
    MixedWorkload,
    Workload,
    experiment1_workload,
    experiment2_workload,
    experiment3_workload,
    hot_set_chooser,
    mixed_workload,
    uniform_two_files,
)

__all__ = [
    "AccessMode",
    "BatchTransaction",
    "DeclarationErrorModel",
    "PATTERN_1",
    "PATTERN_2",
    "Pattern",
    "PatternError",
    "Step",
    "TransactionState",
    "Workload",
    "experiment1_workload",
    "experiment2_workload",
    "experiment3_workload",
    "hot_set_chooser",
    "MixedWorkload",
    "mixed_workload",
    "uniform_two_files",
]
