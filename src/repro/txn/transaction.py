"""Batch transactions: a declared sequence of file-scanning steps.

On startup a batch declares its full step sequence and each step's I/O
demand (Section 3.1).  Schedulers work exclusively from these
*declarations*; Experiment 3 perturbs them with a Gaussian error while the
actual execution uses the exact costs.
"""

from __future__ import annotations

import enum
import typing

from repro.txn.step import AccessMode, Step

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.machine import StepExecution


class TransactionState(enum.Enum):
    """Lifecycle of a batch transaction."""

    PENDING = "pending"  # arrived, not yet admitted by the scheduler
    ACTIVE = "active"  # admitted; executing / waiting for locks
    COMMITTED = "committed"
    ABORTED = "aborted"  # OPT validation failure or GOW start rejection


class BatchTransaction:
    """One batch transaction instance.

    ``steps`` carry the exact I/O costs; ``declared_costs`` (same length)
    are what the transaction announced at startup and are all the
    schedulers may look at.  ``arrival_time`` is the *first* arrival --
    restarted transactions keep it so response time spans all attempts.
    """

    def __init__(
        self,
        txn_id: int,
        steps: typing.Sequence[Step],
        arrival_time: float,
        declared_costs: typing.Optional[typing.Sequence[float]] = None,
        attempt: int = 1,
        label: str = "txn",
    ) -> None:
        if not steps:
            raise ValueError("a transaction needs at least one step")
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        self.txn_id = txn_id
        self.steps = list(steps)
        self.arrival_time = arrival_time
        self.attempt = attempt
        #: free-form workload class tag (drives per-class metrics)
        self.label = label
        if declared_costs is None:
            declared_costs = [step.cost for step in self.steps]
        declared = [float(c) for c in declared_costs]
        if len(declared) != len(self.steps):
            raise ValueError(
                f"{len(declared)} declared costs for {len(self.steps)} steps"
            )
        if any(c < 0 for c in declared):
            raise ValueError("declared costs must be >= 0")
        self.declared_costs = declared

        self.state = TransactionState.PENDING
        #: index of the step being (or about to be) executed
        self.current_step_index = 0
        #: live scan progress of the current step, set by the executor
        self.current_execution: typing.Optional["StepExecution"] = None
        self.start_time: typing.Optional[float] = None
        self.commit_time: typing.Optional[float] = None

        # Lock plan: strongest mode ever needed per file, ordered by the
        # step that first touches the file (the paper: "X-locks are
        # requested at the first two steps" of Pattern 1).
        self._mode_by_file: typing.Dict[int, AccessMode] = {}
        self._first_need: typing.Dict[int, int] = {}
        for index, step in enumerate(self.steps):
            current = self._mode_by_file.get(step.file_id)
            if current is None:
                self._mode_by_file[step.file_id] = step.mode
                self._first_need[step.file_id] = index
            elif step.mode.is_write and not current.is_write:
                self._mode_by_file[step.file_id] = AccessMode.EXCLUSIVE

        # The declared shape never changes after construction, so the
        # derived views schedulers hammer per decision are precomputed:
        # the first-need file order, the access sets, and the suffix
        # sums of the declared costs (computed with the same
        # left-to-right association as a fresh ``sum`` over the slice).
        self._files: typing.List[int] = sorted(
            self._first_need, key=self._first_need.__getitem__
        )
        self._read_set: typing.FrozenSet[int] = frozenset(self._mode_by_file)
        self._write_set: typing.FrozenSet[int] = frozenset(
            f for f, m in self._mode_by_file.items() if m.is_write
        )
        self._cost_from_step: typing.List[float] = [
            sum(declared[i:]) for i in range(len(declared) + 1)
        ]

    # -- static shape -------------------------------------------------------

    @property
    def files(self) -> typing.List[int]:
        """Distinct files touched, in first-need order.

        The returned list is a shared cache; callers must not mutate it.
        """
        return self._files

    def mode_for(self, file_id: int) -> AccessMode:
        """Strongest access mode the transaction ever needs on the file."""
        return self._mode_by_file[file_id]

    def first_step_needing(self, file_id: int) -> int:
        """Index of the first step that scans ``file_id``."""
        return self._first_need[file_id]

    def writes(self, file_id: int) -> bool:
        """True when the transaction ever writes ``file_id``."""
        mode = self._mode_by_file.get(file_id)
        return mode is not None and mode.is_write

    @property
    def read_set(self) -> typing.FrozenSet[int]:
        """Files accessed in any mode (OPT validation reads everything it scans)."""
        return self._read_set

    @property
    def write_set(self) -> typing.FrozenSet[int]:
        """Files the transaction writes."""
        return self._write_set

    def conflicts_with(self, other: "BatchTransaction") -> bool:
        """Declared-access conflict: a shared file one of the two writes."""
        shared = self.read_set & other.read_set
        return any(self.writes(f) or other.writes(f) for f in shared)

    def conflict_files(self, other: "BatchTransaction") -> typing.List[int]:
        """Files on which the two transactions' declarations conflict."""
        shared = self.read_set & other.read_set
        return sorted(
            f for f in shared if self.writes(f) or other.writes(f)
        )

    # -- declared-cost arithmetic (drives WTPG weights) -----------------------

    @property
    def total_declared_cost(self) -> float:
        return self._cost_from_step[0]

    def declared_cost_from_step(self, index: int) -> float:
        """Declared I/O from step ``index`` (inclusive) to commitment."""
        if not 0 <= index <= len(self.steps):
            raise IndexError(f"step index {index} out of range")
        return self._cost_from_step[index]

    def blocked_step_against(self, other: "BatchTransaction") -> int:
        """Index of this transaction's first step conflicting with ``other``.

        This is the step at which *this* transaction would block were the
        other one holding its locks (defines the WTPG weight
        ``w(other -> self)``).
        """
        conflicted = set(self.conflict_files(other))
        if not conflicted:
            raise ValueError(
                f"T{self.txn_id} and T{other.txn_id} do not conflict"
            )
        return min(self._first_need[f] for f in conflicted)

    def remaining_declared_cost(self) -> float:
        """Declared I/O still to run, scaling the current step by progress.

        This is the weight of the WTPG edge ``T0 -> self`` -- the only
        weight the paper adjusts as the schedule proceeds.
        """
        if self.state is TransactionState.COMMITTED:
            return 0.0
        index = self.current_step_index
        if index >= len(self.steps):
            return 0.0
        # hot path (T0 weight of every WTPG node per critical-path
        # evaluation): index the precomputed suffix sums directly --
        # ``index + 1`` is in range because ``index < len(steps)``
        remaining = self._cost_from_step[index + 1]
        current_declared = self.declared_costs[index]
        execution = self.current_execution
        if execution is not None:
            remaining += current_declared * (1.0 - execution.fraction_done())
        else:
            remaining += current_declared
        return remaining

    # -- lifecycle -------------------------------------------------------------

    @property
    def current_step(self) -> Step:
        """The step at ``current_step_index``."""
        return self.steps[self.current_step_index]

    @property
    def is_last_step(self) -> bool:
        return self.current_step_index == len(self.steps) - 1

    @property
    def finished_all_steps(self) -> bool:
        return self.current_step_index >= len(self.steps)

    def advance(self) -> None:
        """Move to the next step (the executor calls this when one ends)."""
        if self.finished_all_steps:
            raise RuntimeError(f"T{self.txn_id} has no more steps")
        self.current_step_index += 1
        self.current_execution = None

    def restart_copy(self, new_txn_id: int) -> "BatchTransaction":
        """A fresh attempt of this transaction (for OPT restarts).

        Same steps and declarations, same original arrival time, attempt
        counter bumped.
        """
        return BatchTransaction(
            txn_id=new_txn_id,
            steps=self.steps,
            arrival_time=self.arrival_time,
            declared_costs=self.declared_costs,
            attempt=self.attempt + 1,
            label=self.label,
        )

    def response_time(self) -> float:
        """Arrival-to-commit latency; requires a committed transaction."""
        if self.commit_time is None:
            raise RuntimeError(f"T{self.txn_id} has not committed")
        return self.commit_time - self.arrival_time

    def __repr__(self) -> str:
        rendered = " -> ".join(str(s) for s in self.steps)
        return (
            f"<T{self.txn_id} attempt={self.attempt} "
            f"{self.state.value} [{rendered}]>"
        )
