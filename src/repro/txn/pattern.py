"""The pattern DSL for workload definitions.

The paper specifies workloads as patterns like::

    Pattern1: r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)

where ``F1``/``F2`` are placeholders bound to concrete (randomly chosen)
files per transaction instance.  :class:`Pattern` parses this syntax and
instantiates concrete step lists from a placeholder binding.
"""

from __future__ import annotations

import re
import typing

from repro.txn.step import AccessMode, Step

_STEP_RE = re.compile(
    r"^\s*(?P<op>[rw])\s*\(\s*(?P<file>[A-Za-z_][A-Za-z_0-9]*|\d+)\s*:\s*"
    r"(?P<cost>\d+(?:\.\d+)?)\s*\)\s*$"
)


class PatternError(ValueError):
    """Raised for syntax errors in a pattern string."""


class PatternStep(typing.NamedTuple):
    """One parsed step: placeholder name (or literal id), mode, cost."""

    placeholder: str
    mode: AccessMode
    cost: float


class Pattern:
    """A parsed transaction pattern.

    ``placeholders`` preserves first-appearance order, so workload
    generators can bind them positionally (e.g. two distinct files drawn
    for ``F1`` and ``F2``).
    """

    #: per-pattern instantiation memo size bound (distinct bindings)
    _MEMO_LIMIT = 4096

    def __init__(self, steps: typing.Sequence[PatternStep]) -> None:
        if not steps:
            raise PatternError("a pattern needs at least one step")
        self.steps = list(steps)
        seen: typing.Dict[str, None] = {}
        for step in self.steps:
            seen.setdefault(step.placeholder, None)
        self.placeholders: typing.List[str] = list(seen)
        #: resolved-binding tuple -> shared Step list (Steps are frozen,
        #: so instances may be shared across transactions)
        self._memo: typing.Dict[
            typing.Tuple[int, ...], typing.List[Step]
        ] = {}

    @classmethod
    def parse(cls, text: str) -> "Pattern":
        """Parse ``"r(F1:1) -> w(F2:0.2)"`` into a Pattern.

        Both ``->`` and unicode arrows are accepted as separators; file
        names may be symbolic placeholders or literal integers.
        """
        normalised = text.replace("→", "->").strip()
        if not normalised:
            raise PatternError("empty pattern string")
        parts = normalised.split("->")
        steps = []
        for part in parts:
            match = _STEP_RE.match(part)
            if match is None:
                raise PatternError(f"cannot parse pattern step {part.strip()!r}")
            mode = (
                AccessMode.EXCLUSIVE
                if match.group("op") == "w"
                else AccessMode.SHARED
            )
            steps.append(
                PatternStep(
                    placeholder=match.group("file"),
                    mode=mode,
                    cost=float(match.group("cost")),
                )
            )
        return cls(steps)

    def instantiate(
        self, binding: typing.Mapping[str, int]
    ) -> typing.List[Step]:
        """Concrete steps with placeholders replaced per ``binding``.

        Literal integer "placeholders" bind to themselves unless
        overridden.  Resolution is memoised per distinct binding: the
        workloads draw the same few file combinations over and over, and
        :class:`Step` is frozen, so step objects are shared.
        """
        resolved = []
        for name in self.placeholders:
            if name in binding:
                resolved.append(binding[name])
            elif name.isdigit():
                resolved.append(int(name))
            else:
                raise PatternError(f"no binding for placeholder {name!r}")
        key = tuple(resolved)
        steps = self._memo.get(key)
        if steps is None:
            lookup = dict(zip(self.placeholders, resolved))
            steps = [
                Step(
                    file_id=lookup[pattern_step.placeholder],
                    mode=pattern_step.mode,
                    cost=pattern_step.cost,
                )
                for pattern_step in self.steps
            ]
            if len(self._memo) < self._MEMO_LIMIT:
                self._memo[key] = steps
        return list(steps)

    @property
    def total_cost(self) -> float:
        """Sum of step costs (at DD = 1)."""
        return sum(step.cost for step in self.steps)

    def __str__(self) -> str:
        rendered = []
        for step in self.steps:
            tag = "w" if step.mode.is_write else "r"
            rendered.append(f"{tag}({step.placeholder}:{step.cost:g})")
        return " -> ".join(rendered)

    def __len__(self) -> int:
        return len(self.steps)


#: Experiment 1 & 3 workload (Section 5.1): two files, read then bulk-read,
#: then update both.  X locks are taken from the first touch of each file.
PATTERN_1 = Pattern.parse("r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)")

#: Experiment 2 workload (Section 5.2): bulk-read one read-only file, then
#: update two hot files.
PATTERN_2 = Pattern.parse("r(B:5) -> w(F1:1) -> w(F2:1)")
