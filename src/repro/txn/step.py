"""Steps: the unit of work inside a batch transaction.

A batch transaction is a sequential execution of steps; each step reads or
writes one whole file by scanning (Section 2 of the paper).  The I/O cost
is in *objects* (a bulk-access unit such as a disk cylinder) at DD = 1.
"""

from __future__ import annotations

import dataclasses
import enum


class AccessMode(enum.Enum):
    """Lock/access mode of a step: shared read or exclusive write."""

    SHARED = "S"
    EXCLUSIVE = "X"

    @property
    def is_write(self) -> bool:
        return self is AccessMode.EXCLUSIVE

    def conflicts_with(self, other: "AccessMode") -> bool:
        """S/S is the only compatible pair at file granularity."""
        return self.is_write or other.is_write

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Step:
    """One read or write scan of a file.

    ``cost`` is the exact I/O demand in objects at DD = 1 (the simulator
    divides by DD per cohort).  The *declared* cost may differ when the
    Experiment-3 error model is active; declarations live on the
    transaction, not here.
    """

    file_id: int
    mode: AccessMode
    cost: float

    def __post_init__(self) -> None:
        if self.file_id < 0:
            raise ValueError(f"file_id must be >= 0, got {self.file_id}")
        if self.cost < 0:
            raise ValueError(f"step cost must be >= 0, got {self.cost}")
        if not isinstance(self.mode, AccessMode):
            raise TypeError(f"mode must be an AccessMode, got {self.mode!r}")

    @property
    def is_write(self) -> bool:
        return self.mode.is_write

    def __str__(self) -> str:
        tag = "w" if self.is_write else "r"
        return f"{tag}(F{self.file_id}:{self.cost:g})"
