"""Workload generation: arrival processes and the paper's experiments.

A workload couples a Poisson arrival process (rate in transactions per
second) with a transaction factory.  The factories provided here implement
the paper's Experiments:

- Experiment 1/3: Pattern 1 over ``NumFiles`` files, the two files drawn
  distinct uniformly at random; Experiment 3 adds the Gaussian
  declaration-error model.
- Experiment 2: Pattern 2 with one bulk-read over 8 read-only files and
  updates of two distinct files from 8 hot files; each node is home to
  exactly one read-only and one hot file.
"""

from __future__ import annotations

import typing

from repro.des.rng import RandomStreams
from repro.txn.pattern import PATTERN_1, PATTERN_2, Pattern
from repro.txn.transaction import BatchTransaction

FileChooser = typing.Callable[[RandomStreams], typing.Mapping[str, int]]


class DeclarationErrorModel:
    """Experiment 3's estimate error: C = C0 * (1 + x), x ~ N(0, sigma).

    Declared cost floors at 0 when x <= -1 (the paper's rule).
    ``sigma = 0`` declares exact costs.
    """

    def __init__(self, sigma: float = 0.0) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma

    def declare(
        self, exact_costs: typing.Sequence[float], streams: RandomStreams
    ) -> typing.List[float]:
        """Per-step declared costs for a new transaction."""
        if self.sigma == 0.0:
            return [float(c) for c in exact_costs]
        declared = []
        for cost in exact_costs:
            x = streams.gauss("declaration-error", 0.0, self.sigma)
            declared.append(0.0 if x <= -1.0 else cost * (1.0 + x))
        return declared


class Workload:
    """Poisson arrivals of instances of one pattern.

    ``arrival_rate_tps`` is the paper's lambda in transactions per second;
    the simulator clock is milliseconds.
    """

    def __init__(
        self,
        pattern: Pattern,
        choose_files: FileChooser,
        arrival_rate_tps: float,
        error_model: typing.Optional[DeclarationErrorModel] = None,
        name: str = "workload",
    ) -> None:
        if arrival_rate_tps <= 0:
            raise ValueError(
                f"arrival rate must be > 0 TPS, got {arrival_rate_tps}"
            )
        self.pattern = pattern
        self.choose_files = choose_files
        self.arrival_rate_tps = arrival_rate_tps
        self.error_model = error_model or DeclarationErrorModel(0.0)
        self.name = name
        self._next_txn_id = 0

    @property
    def rate_per_ms(self) -> float:
        return self.arrival_rate_tps / 1000.0

    def next_interarrival_ms(self, streams: RandomStreams) -> float:
        """One exponential inter-arrival draw in milliseconds."""
        return streams.exponential("interarrival", self.rate_per_ms)

    def allocate_txn_id(self) -> int:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return txn_id

    def make_transaction(
        self, arrival_time: float, streams: RandomStreams
    ) -> BatchTransaction:
        """Instantiate the pattern with fresh file choices and declarations."""
        binding = self.choose_files(streams)
        steps = self.pattern.instantiate(binding)
        declared = self.error_model.declare(
            [s.cost for s in steps], streams
        )
        return BatchTransaction(
            txn_id=self.allocate_txn_id(),
            steps=steps,
            arrival_time=arrival_time,
            declared_costs=declared,
        )


# -- the paper's file choosers ------------------------------------------------


def uniform_two_files(num_files: int) -> FileChooser:
    """Experiment 1/3: F1, F2 distinct uniform over ``num_files`` files."""
    if num_files < 2:
        raise ValueError(f"need at least 2 files, got {num_files}")

    def choose(streams: RandomStreams) -> typing.Mapping[str, int]:
        f1, f2 = streams.sample_without_replacement(
            "file-choice", range(num_files), 2
        )
        return {"F1": f1, "F2": f2}

    return choose


def hot_set_chooser(
    read_only_files: typing.Sequence[int] = tuple(range(8)),
    hot_files: typing.Sequence[int] = tuple(range(8, 16)),
) -> FileChooser:
    """Experiment 2: B from the read-only pool, F1 != F2 from the hot pool.

    With the paper's home-node rule (file mod 8) the defaults give every
    node exactly one read-only and one hot file.
    """
    if len(hot_files) < 2:
        raise ValueError("hot set needs at least 2 files")
    if not read_only_files:
        raise ValueError("read-only set must not be empty")
    if set(read_only_files) & set(hot_files):
        raise ValueError("read-only and hot sets must be disjoint")
    read_only_files = tuple(read_only_files)
    hot_files = tuple(hot_files)

    def choose(streams: RandomStreams) -> typing.Mapping[str, int]:
        b = streams.sample_without_replacement(
            "readonly-choice", read_only_files, 1
        )[0]
        f1, f2 = streams.sample_without_replacement(
            "hot-choice", hot_files, 2
        )
        return {"B": b, "F1": f1, "F2": f2}

    return choose


def experiment1_workload(
    arrival_rate_tps: float, num_files: int = 16
) -> Workload:
    """Pattern 1 over ``num_files`` files (Experiments 1 and the Fig. 8 runs)."""
    return Workload(
        PATTERN_1,
        uniform_two_files(num_files),
        arrival_rate_tps,
        name=f"exp1(files={num_files})",
    )


def experiment2_workload(arrival_rate_tps: float) -> Workload:
    """Pattern 2 over the 8 read-only + 8 hot files of Experiment 2."""
    return Workload(
        PATTERN_2,
        hot_set_chooser(),
        arrival_rate_tps,
        name="exp2(hot-set)",
    )


def experiment3_workload(
    arrival_rate_tps: float, sigma: float, num_files: int = 16
) -> Workload:
    """Pattern 1 with the Gaussian declaration-error model (Experiment 3)."""
    return Workload(
        PATTERN_1,
        uniform_two_files(num_files),
        arrival_rate_tps,
        error_model=DeclarationErrorModel(sigma),
        name=f"exp3(sigma={sigma:g})",
    )


class MixedWorkload(Workload):
    """Batches mixed with small jobs (the paper's motivating scenario).

    Each arrival is a *bulk* Pattern-1 batch with probability
    ``1 - small_share``, otherwise a *small* single-file update of
    ``small_cost`` objects.  Transactions carry a ``label`` ("bulk" or
    "small") so per-class response times can be reported.
    """

    def __init__(
        self,
        arrival_rate_tps: float,
        small_share: float = 0.8,
        small_cost: float = 0.1,
        num_files: int = 16,
        error_model: typing.Optional[DeclarationErrorModel] = None,
    ) -> None:
        if not 0.0 <= small_share <= 1.0:
            raise ValueError(f"small_share must be in [0, 1], got {small_share}")
        if small_cost <= 0:
            raise ValueError(f"small_cost must be > 0, got {small_cost}")
        super().__init__(
            PATTERN_1,
            uniform_two_files(num_files),
            arrival_rate_tps,
            error_model=error_model,
            name=f"mixed(small={small_share:g})",
        )
        self.small_share = small_share
        self.small_cost = small_cost
        self.num_files = num_files

    def make_transaction(
        self, arrival_time: float, streams: RandomStreams
    ) -> BatchTransaction:
        from repro.txn.step import AccessMode, Step

        if streams.stream("mix").random() < self.small_share:
            file_id = streams.uniform_int("small-file", 0, self.num_files - 1)
            steps = [Step(file_id, AccessMode.EXCLUSIVE, self.small_cost)]
            label = "small"
        else:
            binding = self.choose_files(streams)
            steps = self.pattern.instantiate(binding)
            label = "bulk"
        declared = self.error_model.declare([s.cost for s in steps], streams)
        return BatchTransaction(
            txn_id=self.allocate_txn_id(),
            steps=steps,
            arrival_time=arrival_time,
            declared_costs=declared,
            label=label,
        )


def mixed_workload(
    arrival_rate_tps: float,
    small_share: float = 0.8,
    small_cost: float = 0.1,
    num_files: int = 16,
) -> MixedWorkload:
    """Convenience factory for the mixed batch/small-job workload."""
    return MixedWorkload(
        arrival_rate_tps,
        small_share=small_share,
        small_cost=small_cost,
        num_files=num_files,
    )
