"""Parallel batch execution of run specs with caching and manifests.

:class:`ParallelRunner` takes batches of :class:`~repro.runner.spec.RunSpec`
and returns their :class:`~repro.sim.metrics.SimulationResult`s in input
order, no matter how execution interleaves:

- duplicate specs inside a batch are *coalesced* (simulated once);
- specs seen before are served from the :class:`ResultCache`;
- the remainder fans out over a process pool, streaming a progress line
  per completed run;
- every batch appends a JSON manifest under ``runs_dir`` recording the
  specs, git SHA, wall time and cache hit/miss counts.

Because each run is a pure function of its spec, results are identical
for any pool size -- the determinism tests assert byte-identical output
for pool sizes 1 and N.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
import pathlib
import re
import subprocess
import sys
import time
import typing

from repro.runner.cache import ResultCache
from repro.runner.spec import RunSpec
from repro.runner.worker import (
    execute_bench,
    execute_bench_indexed,
    execute_indexed,
    execute_spec,
    series_artifact_path,
    trace_artifact_path,
)
from repro.sim.metrics import SimulationResult


@dataclasses.dataclass(frozen=True)
class RunEvent:
    """One progress notification streamed while a batch executes.

    ``kind`` is ``batch-start``, ``run-done`` or ``batch-done``; ``done``
    counts completed runs (cached ones included), ``cached`` flags a
    cache hit for ``run-done`` events.
    """

    kind: str
    label: str
    done: int
    total: int
    spec: typing.Optional[RunSpec] = None
    cached: bool = False
    elapsed_s: float = 0.0


def print_progress(event: RunEvent, stream: typing.TextIO = sys.stderr) -> None:
    """Default progress listener: one console line per event."""
    if event.kind == "batch-start":
        print(
            f"[runner] {event.label}: {event.total} run(s), "
            f"{event.done} cached",
            file=stream,
            flush=True,
        )
    elif event.kind == "run-done":
        origin = "cache" if event.cached else f"{event.elapsed_s:.1f}s"
        desc = event.spec.describe() if event.spec is not None else "?"
        print(
            f"[runner] {event.label}: {event.done}/{event.total} "
            f"{desc} ({origin})",
            file=stream,
            flush=True,
        )
    elif event.kind == "batch-done":
        print(
            f"[runner] {event.label}: done in {event.elapsed_s:.1f}s",
            file=stream,
            flush=True,
        )


def _git_sha() -> typing.Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "batch"


class ParallelRunner:
    """Executes spec batches across worker processes, cache-first."""

    def __init__(
        self,
        pool_size: typing.Optional[int] = None,
        cache: typing.Optional[ResultCache] = None,
        runs_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
        progress: typing.Optional[
            typing.Callable[[RunEvent], None]
        ] = print_progress,
        traces_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
        series_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
    ) -> None:
        if pool_size is not None and pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size or os.cpu_count() or 1
        self.cache = cache
        self.runs_dir = pathlib.Path(runs_dir) if runs_dir is not None else None
        self.traces_dir = (
            pathlib.Path(traces_dir) if traces_dir is not None else None
        )
        self.series_dir = (
            pathlib.Path(series_dir) if series_dir is not None else None
        )
        self.progress = progress
        #: cumulative counters across all batches of this runner
        self.cache_hits = 0
        self.cache_misses = 0
        self.runs_completed = 0
        #: manifest payload and path of the most recent batch
        self.last_batch: typing.Optional[typing.Dict[str, typing.Any]] = None
        self.last_manifest_path: typing.Optional[pathlib.Path] = None
        self._session = f"{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}"
        self._batch_seq = 0

    # -- public API ---------------------------------------------------------

    def run_one(self, spec: RunSpec, label: str = "run") -> SimulationResult:
        """Execute (or fetch) a single spec."""
        return self.run_batch([spec], label=label)[0]

    def run_batch(
        self, specs: typing.Sequence[RunSpec], label: str = "batch"
    ) -> typing.List[SimulationResult]:
        """Execute ``specs``, returning results in input order."""
        specs = list(specs)
        started = time.time()
        results: typing.List[typing.Optional[SimulationResult]] = (
            [None] * len(specs)
        )
        cached_flags = [False] * len(specs)

        # coalesce duplicates: one simulation per distinct cache key
        by_key: typing.Dict[str, typing.List[int]] = {}
        keys = [spec.cache_key() for spec in specs]
        for index, key in enumerate(keys):
            by_key.setdefault(key, []).append(index)

        pending: typing.List[int] = []  # first index of each key to compute
        for key, indices in by_key.items():
            hit = self.cache.get(specs[indices[0]]) if self.cache else None
            if hit is not None:
                for index in indices:
                    results[index] = hit
                    cached_flags[index] = True
            else:
                pending.append(indices[0])
        hits = sum(cached_flags)
        self.cache_hits += hits
        self.cache_misses += len(specs) - hits

        done = hits
        self._emit(RunEvent("batch-start", label, done, len(specs)))
        for index, result, elapsed_s in self._execute(specs, pending):
            if self.cache is not None:
                self.cache.put(specs[index], result)
            for twin in by_key[keys[index]]:
                results[twin] = result
            done += len(by_key[keys[index]])
            self._emit(
                RunEvent(
                    "run-done",
                    label,
                    done,
                    len(specs),
                    spec=specs[index],
                    elapsed_s=elapsed_s,
                )
            )
        wall_s = time.time() - started
        self.runs_completed += len(specs)
        self._emit(
            RunEvent("batch-done", label, done, len(specs), elapsed_s=wall_s)
        )
        self._write_manifest(label, specs, keys, cached_flags, wall_s)
        return typing.cast(typing.List[SimulationResult], results)

    def run_bench(
        self,
        specs: typing.Sequence[RunSpec],
        label: str = "bench",
        repeats: int = 1,
    ) -> typing.List[typing.Dict[str, typing.Any]]:
        """Execute ``specs`` as perf measurements, in input order.

        Deliberately bypasses the result cache and coalescing: every
        spec is simulated afresh (a cache hit takes no wall time and
        would report infinite speed).  Rows come from
        :func:`~repro.runner.worker.execute_bench` (best of
        ``repeats``).
        """
        specs = list(specs)
        started = time.time()
        rows: typing.List[typing.Optional[typing.Dict[str, typing.Any]]] = (
            [None] * len(specs)
        )
        self._emit(RunEvent("batch-start", label, 0, len(specs)))
        done = 0
        workers = min(self.pool_size, len(specs)) if specs else 0
        if workers <= 1:
            for index, spec in enumerate(specs):
                run_started = time.time()
                rows[index] = execute_bench(spec, repeats=repeats)
                done += 1
                self._emit(RunEvent(
                    "run-done", label, done, len(specs), spec=spec,
                    elapsed_s=time.time() - run_started,
                ))
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = [
                    pool.submit(
                        execute_bench_indexed, (index, spec, repeats)
                    )
                    for index, spec in enumerate(specs)
                ]
                for future in concurrent.futures.as_completed(futures):
                    index, row = future.result()
                    rows[index] = row
                    done += 1
                    self._emit(RunEvent(
                        "run-done", label, done, len(specs),
                        spec=specs[index],
                        elapsed_s=time.time() - started,
                    ))
        wall_s = time.time() - started
        self.runs_completed += len(specs)
        self._emit(
            RunEvent("batch-done", label, done, len(specs), elapsed_s=wall_s)
        )
        return typing.cast(
            typing.List[typing.Dict[str, typing.Any]], rows
        )

    # -- execution ----------------------------------------------------------

    def _execute(
        self, specs: typing.Sequence[RunSpec], pending: typing.Sequence[int]
    ) -> typing.Iterator[typing.Tuple[int, SimulationResult, float]]:
        """Yield ``(index, result, elapsed_s)`` for every pending index."""
        if not pending:
            return
        traces_dir: typing.Optional[str] = None
        if self.traces_dir is not None and any(
            specs[index].trace for index in pending
        ):
            self.traces_dir.mkdir(parents=True, exist_ok=True)
            traces_dir = str(self.traces_dir)
        series_dir: typing.Optional[str] = None
        if self.series_dir is not None and any(
            specs[index].timeseries for index in pending
        ):
            self.series_dir.mkdir(parents=True, exist_ok=True)
            series_dir = str(self.series_dir)
        workers = min(self.pool_size, len(pending))
        if workers == 1:
            for index in pending:
                run_started = time.time()
                yield index, execute_spec(
                    specs[index], traces_dir=traces_dir,
                    series_dir=series_dir,
                ), (time.time() - run_started)
            return
        batch_started = time.time()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = [
                pool.submit(
                    execute_indexed,
                    (index, specs[index], traces_dir, series_dir),
                )
                for index in pending
            ]
            for future in concurrent.futures.as_completed(futures):
                index, result = future.result()
                # per-run wall time is unobservable from here; report the
                # time since the batch started (monotone, still useful)
                yield index, result, time.time() - batch_started

    # -- manifest -----------------------------------------------------------

    def _write_manifest(
        self,
        label: str,
        specs: typing.Sequence[RunSpec],
        keys: typing.Sequence[str],
        cached_flags: typing.Sequence[bool],
        wall_s: float,
    ) -> None:
        self._batch_seq += 1
        hits = sum(cached_flags)
        simulated = len({k for k, c in zip(keys, cached_flags) if not c})
        payload = {
            "label": label,
            "session": self._session,
            "batch": self._batch_seq,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "git_sha": _git_sha(),
            "pool_size": self.pool_size,
            "wall_s": round(wall_s, 3),
            "counts": {
                "total": len(specs),
                "cache_hits": hits,
                "cache_misses": len(specs) - hits,
                "simulated": simulated,
                "coalesced": (len(specs) - hits) - simulated,
            },
            "runs": [
                {
                    "key": key,
                    "cached": cached,
                    "spec": spec.to_dict(),
                    "trace_artifact": self._trace_artifact(spec),
                    "series_artifact": self._series_artifact(spec),
                }
                for spec, key, cached in zip(specs, keys, cached_flags)
            ],
        }
        self.last_batch = payload
        self.last_manifest_path = None
        if self.runs_dir is None:
            return
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        name = f"{self._session}-b{self._batch_seq:03d}-{_slug(label)}.json"
        path = self.runs_dir / name
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, path)
        self.last_manifest_path = path

    def _trace_artifact(self, spec: RunSpec) -> typing.Optional[str]:
        """Manifest entry for a run's trace file (None when untraced).

        Cached traced runs keep pointing at the artifact their original
        execution wrote -- it is content-addressed by the same cache key.
        """
        if not spec.trace or self.traces_dir is None:
            return None
        path = trace_artifact_path(self.traces_dir, spec)
        return str(path) if path.exists() else None

    def _series_artifact(self, spec: RunSpec) -> typing.Optional[str]:
        """Manifest entry for a run's series file (None when unsampled)."""
        if not spec.timeseries or self.series_dir is None:
            return None
        path = series_artifact_path(self.series_dir, spec)
        return str(path) if path.exists() else None

    def _emit(self, event: RunEvent) -> None:
        if self.progress is not None:
            self.progress(event)


def default_runner(
    pool_size: typing.Optional[int] = None,
    cache_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/cache"
    ),
    runs_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/runs"
    ),
    progress: typing.Optional[
        typing.Callable[[RunEvent], None]
    ] = print_progress,
    traces_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/traces"
    ),
    series_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/series"
    ),
) -> ParallelRunner:
    """A runner with the conventional on-disk layout under ``results/``."""
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ParallelRunner(
        pool_size=pool_size,
        cache=cache,
        runs_dir=runs_dir,
        progress=progress,
        traces_dir=traces_dir,
        series_dir=series_dir,
    )
