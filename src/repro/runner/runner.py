"""Parallel batch execution of run specs with caching and manifests.

:class:`ParallelRunner` takes batches of :class:`~repro.runner.spec.RunSpec`
and returns their :class:`~repro.sim.metrics.SimulationResult`s in input
order, no matter how execution interleaves:

- duplicate specs inside a batch are *coalesced* (simulated once);
- specs seen before are served from the :class:`ResultCache`;
- the remainder fans out over an :class:`ExecutorBackend` (the local
  process pool by default; ``backend=`` selects an asyncio-subprocess
  or shared-directory multi-host fabric instead), streaming a progress
  line per completed run;
- every batch appends a JSON manifest under ``runs_dir`` recording the
  specs, git SHA, wall time and cache hit/miss counts, and registers
  itself in the :class:`~repro.runner.registry.RunRegistry` index.

Because each run is a pure function of its spec, results are identical
for any pool size *and any backend* -- the determinism tests assert
byte-identical output for pool sizes 1 and N, and the backend
conformance battery asserts it against the serial reference for every
registered backend.

The runner is the *orchestration core*: it owns dispatch order,
dedup/coalescing, cache lookups, stall detection, retry and isolation
policy, and manifest/registry/status writing.  Backends own process
(or host) placement behind the small protocol in
:mod:`repro.runner.backends.base`; worker deaths come back as crashed
outcomes the runner triages, never as exceptions that lose the batch.

Live telemetry (``telemetry=True``): workers append lifecycle records
to ``<runs_dir>/<batch_id>/telemetry.jsonl`` and the runner folds them
into an atomically rewritten ``status.json`` (watch it with ``repro
watch``).  With a ``stall_timeout_s`` the runner watches heartbeats: a
running worker silent for that long is marked *stalled*, then killed
when the backend supports it (per-run on isolating backends; breaking
the shared pool on the local one) or abandoned when it does not
(shared-dir: the worker may be on another host), and (``stall_retry``)
resubmitted once -- a hung cell can fail, but it can never hang the
batch.  A worker process that dies abruptly (OOM kill, segfault)
surfaces as a crashed outcome: the affected cells are recorded as
failed in the manifest and the batch returns its partial results
instead of losing everything.  ``KeyboardInterrupt`` writes a partial
manifest marked ``interrupted`` before propagating.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import re
import subprocess
import sys
import tempfile
import time
import typing

from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    BatchStatus,
    TelemetrySink,
    WorkerTelemetry,
    read_telemetry_records,
)
from repro.runner.backends import (
    ExecutorBackend,
    WorkerTaskError,
    create_backend,
    get_backend_info,
)
from repro.runner.backends.task import bench_task, sweep_task
from repro.runner.cache import ResultCache
from repro.runner.registry import RunRegistry, spec_digest
from repro.runner.spec import RunSpec
from repro.runner.worker import (
    execute_bench,
    execute_spec,
    series_artifact_path,
    trace_artifact_path,
)
from repro.sim.metrics import SimulationResult


@dataclasses.dataclass(frozen=True)
class RunEvent:
    """One progress notification streamed while a batch executes.

    ``kind`` is ``batch-start``, ``run-done`` or ``batch-done``; ``done``
    counts completed runs (cached ones included), ``cached`` flags a
    cache hit for ``run-done`` events.
    """

    kind: str
    label: str
    done: int
    total: int
    spec: typing.Optional[RunSpec] = None
    cached: bool = False
    elapsed_s: float = 0.0


def print_progress(event: RunEvent, stream: typing.TextIO = sys.stderr) -> None:
    """Default progress listener: one console line per event."""
    if event.kind == "batch-start":
        print(
            f"[runner] {event.label}: {event.total} run(s), "
            f"{event.done} cached",
            file=stream,
            flush=True,
        )
    elif event.kind == "run-done":
        origin = "cache" if event.cached else f"{event.elapsed_s:.1f}s"
        desc = event.spec.describe() if event.spec is not None else "?"
        print(
            f"[runner] {event.label}: {event.done}/{event.total} "
            f"{desc} ({origin})",
            file=stream,
            flush=True,
        )
    elif event.kind == "batch-done":
        print(
            f"[runner] {event.label}: done in {event.elapsed_s:.1f}s",
            file=stream,
            flush=True,
        )


def _git_sha() -> typing.Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "batch"


class _BatchTelemetry:
    """Parent-side telemetry of one batch: sink + status + stall watch.

    Workers (and the parent itself) append records to
    ``<dir>/telemetry.jsonl``; :meth:`tick` tails the file, folds every
    new record into the :class:`BatchStatus`, flags heartbeat-overdue
    cells, and rewrites ``status.json`` (throttled).  Everything the
    snapshot says derives from the JSONL stream, so the stream is the
    single source of truth.
    """

    #: at most one status.json rewrite per this many seconds
    STATUS_INTERVAL_S = 0.5
    #: how long the runner waits on futures between telemetry ticks
    POLL_S = 0.2

    def __init__(
        self,
        runs_dir: pathlib.Path,
        batch_id: str,
        label: str,
        specs: typing.Sequence[RunSpec],
        keys: typing.Sequence[str],
        kind: str,
        heartbeat_s: float,
        progress_every: int,
        stall_timeout_s: typing.Optional[float],
        backend: str = "local",
    ) -> None:
        self.dir = pathlib.Path(runs_dir) / batch_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / "telemetry.jsonl"
        self.status_path = self.dir / "status.json"
        self.heartbeat_s = heartbeat_s
        self.progress_every = progress_every
        self.stall_timeout_s = stall_timeout_s
        self._specs = list(specs)
        self._keys = list(keys)
        self.sink = TelemetrySink(self.path)
        self.status = BatchStatus(
            batch_id,
            label,
            [
                {
                    "cell": index,
                    "key": keys[index][:16],
                    "label": specs[index].describe(),
                    "until_ms": specs[index].duration_ms,
                }
                for index in range(len(specs))
            ],
            kind=kind,
        )
        self._offset = 0
        self._last_write = 0.0
        self.sink.emit(
            "batch.meta",
            schema=TELEMETRY_SCHEMA_VERSION,
            batch=batch_id,
            label=label,
            total=len(specs),
            mode=kind,
            backend=backend,
        )
        self.tick(force=True)

    # -- worker contexts ----------------------------------------------------

    def worker_context(self, index: int) -> WorkerTelemetry:
        """A picklable lifecycle emitter for one pool job."""
        spec = self._specs[index]
        return WorkerTelemetry(
            str(self.path),
            index,
            until_ms=spec.duration_ms,
            key=self._keys[index][:16],
            label=spec.describe(),
            heartbeat_s=self.heartbeat_s,
            progress_every=self.progress_every,
        )

    def inline_worker(self, index: int) -> WorkerTelemetry:
        """Same, for the serial path: every emit refreshes the status."""
        context = self.worker_context(index)
        context.on_emit = self._on_inline_record
        return context

    def _on_inline_record(
        self, record: typing.Mapping[str, typing.Any]
    ) -> None:
        del record  # the tick tails the file; stalls can't self-detect
        self.tick()

    # -- parent-emitted lifecycle -------------------------------------------

    def mark_cached(self, index: int) -> None:
        self.sink.emit("run.cached", cell=index)

    def mark_coalesced(self, index: int) -> None:
        self.sink.emit("run.coalesced", cell=index)

    def fail(self, index: int, message: str) -> None:
        self.sink.emit("run.error", cell=index, error=message)

    def retry(self, index: int, attempt: int) -> None:
        self.sink.emit("run.retry", cell=index, attempt=attempt)

    # -- the heartbeat of the parent loop -----------------------------------

    def tick(self, force: bool = False) -> typing.List[int]:
        """Fold new records in; returns cells that *just* went stalled."""
        records, self._offset = read_telemetry_records(
            self.path, self._offset
        )
        for record in records:
            self.status.consume(record)
        newly: typing.List[int] = []
        if self.stall_timeout_s is not None:
            for cell in self.status.stalled_candidates(self.stall_timeout_s):
                last = self.status.cells[cell]["last_activity_ts"]
                idle = time.time() - last if last else 0.0
                self.sink.emit(
                    "run.stalled", cell=cell, idle_s=round(idle, 3)
                )
                newly.append(cell)
            if newly:
                records, self._offset = read_telemetry_records(
                    self.path, self._offset
                )
                for record in records:
                    self.status.consume(record)
        now = time.monotonic()
        if force or newly or now - self._last_write >= self.STATUS_INTERVAL_S:
            self.status.write(self.status_path)
            self._last_write = now
        return newly

    def finish(self, status: str, wall_s: float) -> None:
        self.sink.emit("batch.done", status=status, wall_s=round(wall_s, 3))
        self.tick(force=True)
        self.sink.close()


class ParallelRunner:
    """Executes spec batches across worker processes, cache-first."""

    def __init__(
        self,
        pool_size: typing.Optional[int] = None,
        cache: typing.Optional[ResultCache] = None,
        runs_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
        progress: typing.Optional[
            typing.Callable[[RunEvent], None]
        ] = print_progress,
        traces_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
        series_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
        telemetry: bool = False,
        stall_timeout_s: typing.Optional[float] = None,
        stall_retry: bool = True,
        heartbeat_s: float = 0.5,
        progress_every: int = 4096,
        backend: str = "local",
        backend_options: typing.Optional[
            typing.Dict[str, typing.Any]
        ] = None,
    ) -> None:
        if pool_size is not None and pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if telemetry and runs_dir is None:
            raise ValueError(
                "telemetry needs a runs_dir to write the batch artifacts"
            )
        if stall_timeout_s is not None and stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be > 0, got {stall_timeout_s}"
            )
        try:
            get_backend_info(backend)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        self.backend_name = backend
        self.backend_options = dict(backend_options or {})
        self.pool_size = pool_size or os.cpu_count() or 1
        self.cache = cache
        self.runs_dir = pathlib.Path(runs_dir) if runs_dir is not None else None
        self.traces_dir = (
            pathlib.Path(traces_dir) if traces_dir is not None else None
        )
        self.series_dir = (
            pathlib.Path(series_dir) if series_dir is not None else None
        )
        self.progress = progress
        #: live telemetry + registry configuration
        self.telemetry = telemetry
        self.stall_timeout_s = stall_timeout_s
        self.stall_retry = stall_retry
        self.heartbeat_s = heartbeat_s
        self.progress_every = progress_every
        self.registry = (
            RunRegistry(self.runs_dir) if self.runs_dir is not None else None
        )
        #: cumulative counters across all batches of this runner
        self.cache_hits = 0
        self.cache_misses = 0
        self.runs_completed = 0
        #: manifest payload and path of the most recent batch
        self.last_batch: typing.Optional[typing.Dict[str, typing.Any]] = None
        self.last_manifest_path: typing.Optional[pathlib.Path] = None
        #: batch id and per-cell failures of the most recent batch
        self.last_batch_id: typing.Optional[str] = None
        self.last_failures: typing.Dict[int, str] = {}
        self._git_sha = _git_sha()
        self._session = f"{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}"
        self._batch_seq = 0

    # -- public API ---------------------------------------------------------

    def run_one(self, spec: RunSpec, label: str = "run") -> SimulationResult:
        """Execute (or fetch) a single spec."""
        return self.run_batch([spec], label=label)[0]

    def run_batch(
        self, specs: typing.Sequence[RunSpec], label: str = "batch"
    ) -> typing.List[SimulationResult]:
        """Execute ``specs``, returning results in input order.

        A cell whose worker *process died* (and, with retry exhausted,
        a stalled cell) yields ``None`` at its position instead of
        aborting the batch -- ``last_failures`` and the manifest record
        why, and the batch status becomes ``partial``.  An ordinary
        exception raised by a run still fails the batch fast (it is
        deterministic; retrying cannot help), after writing a manifest
        marked ``failed``.
        """
        specs = list(specs)
        started = time.time()
        batch_id = self._next_batch_id()
        self.last_failures = {}
        results: typing.List[typing.Optional[SimulationResult]] = (
            [None] * len(specs)
        )
        cached_flags = [False] * len(specs)

        # coalesce duplicates: one simulation per distinct cache key
        by_key: typing.Dict[str, typing.List[int]] = {}
        keys = [spec.cache_key() for spec in specs]
        for index, key in enumerate(keys):
            by_key.setdefault(key, []).append(index)

        pending: typing.List[int] = []  # first index of each key to compute
        for key, indices in by_key.items():
            hit = self.cache.get(specs[indices[0]]) if self.cache else None
            if hit is not None:
                for index in indices:
                    results[index] = hit
                    cached_flags[index] = True
            else:
                pending.append(indices[0])
        hits = sum(cached_flags)
        self.cache_hits += hits
        self.cache_misses += len(specs) - hits

        tele = self._open_telemetry(batch_id, label, specs, keys, "sweep")
        if tele is not None:
            for index, flag in enumerate(cached_flags):
                if flag:
                    tele.mark_cached(index)
        self._register(batch_id, label, "sweep", keys, "running", tele=tele)

        done = hits
        status = "complete"
        try:
            self._emit(RunEvent("batch-start", label, done, len(specs)))
            for index, result, elapsed_s in self._execute(
                specs, pending, tele
            ):
                if self.cache is not None:
                    self.cache.put(specs[index], result)
                for twin in by_key[keys[index]]:
                    results[twin] = result
                if tele is not None:
                    for twin in by_key[keys[index]][1:]:
                        tele.mark_coalesced(twin)
                done += len(by_key[keys[index]])
                self._emit(
                    RunEvent(
                        "run-done",
                        label,
                        done,
                        len(specs),
                        spec=specs[index],
                        elapsed_s=elapsed_s,
                    )
                )
            if self.last_failures:
                status = "partial"
        except KeyboardInterrupt:
            status = "interrupted"
            raise
        except BaseException:
            status = "failed"
            raise
        finally:
            wall_s = time.time() - started
            self.runs_completed += len(specs)
            self._write_manifest(
                label, specs, keys, cached_flags, wall_s,
                batch_id=batch_id, status=status, results=results, tele=tele,
            )
            if tele is not None:
                tele.finish(status, wall_s)
            self._register(
                batch_id, label, "sweep", keys, status,
                wall_s=wall_s, tele=tele,
            )
            self._emit(
                RunEvent(
                    "batch-done", label, done, len(specs), elapsed_s=wall_s
                )
            )
        return typing.cast(typing.List[SimulationResult], results)

    def run_bench(
        self,
        specs: typing.Sequence[RunSpec],
        label: str = "bench",
        repeats: int = 1,
    ) -> typing.List[typing.Dict[str, typing.Any]]:
        """Execute ``specs`` as perf measurements, in input order.

        Deliberately bypasses the result cache and coalescing: every
        spec is simulated afresh (a cache hit takes no wall time and
        would report infinite speed).  Rows come from
        :func:`~repro.runner.worker.execute_bench` (best of
        ``repeats``).  With ``telemetry=True`` bench cells emit the
        same lifecycle records as sweep cells (heartbeats add one
        guarded check every ``progress_every`` events to the measured
        loop).
        """
        specs = list(specs)
        started = time.time()
        batch_id = self._next_batch_id()
        self.last_failures = {}
        keys = [spec.cache_key() for spec in specs]
        rows: typing.List[typing.Optional[typing.Dict[str, typing.Any]]] = (
            [None] * len(specs)
        )
        tele = self._open_telemetry(batch_id, label, specs, keys, "bench")
        self._register(batch_id, label, "bench", keys, "running", tele=tele)
        self._emit(RunEvent("batch-start", label, 0, len(specs)))
        done = 0
        status = "complete"
        try:
            workers = min(self.pool_size, len(specs)) if specs else 0
            if workers == 0 or self._inline_for(workers):
                for index, spec in enumerate(specs):
                    run_started = time.time()
                    context = (
                        tele.inline_worker(index) if tele is not None else None
                    )
                    rows[index] = execute_bench(
                        spec, repeats=repeats, telemetry=context
                    )
                    done += 1
                    self._emit(RunEvent(
                        "run-done", label, done, len(specs), spec=spec,
                        elapsed_s=time.time() - run_started,
                    ))
                    if tele is not None:
                        tele.tick()
            else:
                done = self._run_bench_backend(
                    specs, repeats, workers, label, rows, tele, started
                )
        except KeyboardInterrupt:
            status = "interrupted"
            raise
        except BaseException:
            status = "failed"
            raise
        finally:
            wall_s = time.time() - started
            self.runs_completed += len(specs)
            if tele is not None:
                tele.finish(status, wall_s)
            self._register(
                batch_id, label, "bench", keys, status,
                wall_s=wall_s, tele=tele,
            )
            self._emit(
                RunEvent(
                    "batch-done", label, done, len(specs), elapsed_s=wall_s
                )
            )
        return typing.cast(
            typing.List[typing.Dict[str, typing.Any]], rows
        )

    def _run_bench_backend(
        self,
        specs: typing.Sequence[RunSpec],
        repeats: int,
        workers: int,
        label: str,
        rows: typing.List[typing.Optional[typing.Dict[str, typing.Any]]],
        tele: typing.Optional[_BatchTelemetry],
        started: float,
    ) -> int:
        """The fanned-out half of :meth:`run_bench`; returns done count.

        Bench rows are measurements, not cacheable model results, so
        there is no retry policy here: a worker death fails the batch
        fast (a retried timing on a disturbed host would be a lie).
        """
        done = 0
        backend = create_backend(
            self.backend_name, workers=workers, **self.backend_options
        )
        try:
            backend.prepare(len(specs))
            outstanding: typing.Set[int] = set()
            for index, spec in enumerate(specs):
                context = (
                    tele.worker_context(index) if tele is not None else None
                )
                backend.submit(bench_task(index, spec, repeats, context))
                outstanding.add(index)
            while outstanding:
                outcomes = backend.poll(
                    _BatchTelemetry.POLL_S if tele is not None else None
                )
                for outcome in outcomes:
                    if outcome.cell not in outstanding:
                        continue
                    outstanding.discard(outcome.cell)
                    if outcome.crashed:
                        raise WorkerTaskError(
                            f"bench worker died abruptly: {outcome.error}"
                        )
                    if outcome.error is not None:
                        self._record_failure(
                            outcome.cell, outcome.error, tele, emit=False
                        )
                        if outcome.exception is not None:
                            raise outcome.exception
                        raise WorkerTaskError(
                            outcome.error, outcome.traceback
                        )
                    rows[outcome.cell] = outcome.result
                    done += 1
                    self._emit(RunEvent(
                        "run-done", label, done, len(specs),
                        spec=specs[outcome.cell],
                        elapsed_s=time.time() - started,
                    ))
                if tele is not None:
                    tele.tick()
        finally:
            backend.shutdown()
        return done

    # -- execution ----------------------------------------------------------

    def _execute(
        self,
        specs: typing.Sequence[RunSpec],
        pending: typing.Sequence[int],
        tele: typing.Optional[_BatchTelemetry],
    ) -> typing.Iterator[typing.Tuple[int, SimulationResult, float]]:
        """Yield ``(index, result, elapsed_s)`` for every pending index.

        Indices that fail (worker death, exhausted stall retry) are
        recorded in ``last_failures`` instead of being yielded.
        """
        if not pending:
            if tele is not None:
                tele.tick(force=True)
            return
        traces_dir: typing.Optional[str] = None
        if self.traces_dir is not None and any(
            specs[index].trace for index in pending
        ):
            self.traces_dir.mkdir(parents=True, exist_ok=True)
            traces_dir = str(self.traces_dir)
        series_dir: typing.Optional[str] = None
        if self.series_dir is not None and any(
            specs[index].timeseries for index in pending
        ):
            self.series_dir.mkdir(parents=True, exist_ok=True)
            series_dir = str(self.series_dir)
        workers = min(self.pool_size, len(pending))
        if self._inline_for(workers):
            yield from self._execute_inline(
                specs, pending, traces_dir, series_dir, tele
            )
        else:
            backend = create_backend(
                self.backend_name, workers=workers, **self.backend_options
            )
            try:
                yield from self._execute_backend(
                    specs, pending, traces_dir, series_dir, tele, backend
                )
            finally:
                backend.shutdown()
        if tele is not None:
            tele.tick(force=True)

    def _inline_for(self, workers: int) -> bool:
        """Whether this execution runs on the in-process serial path.

        ``serial`` always does (it is the reference semantics), and the
        default local backend keeps its historical behaviour of running
        single-worker batches in-process rather than through a
        one-process pool.
        """
        if self.backend_name == "serial":
            return True
        return self.backend_name == "local" and workers <= 1

    def _execute_inline(
        self,
        specs: typing.Sequence[RunSpec],
        pending: typing.Sequence[int],
        traces_dir: typing.Optional[str],
        series_dir: typing.Optional[str],
        tele: typing.Optional[_BatchTelemetry],
    ) -> typing.Iterator[typing.Tuple[int, SimulationResult, float]]:
        """Serial path: run in-process (stalls cannot self-detect here)."""
        for index in pending:
            run_started = time.time()
            context = tele.inline_worker(index) if tele is not None else None
            try:
                result = execute_spec(
                    specs[index], traces_dir=traces_dir,
                    series_dir=series_dir, telemetry=context,
                )
            except Exception as exc:
                self._record_failure(
                    index, f"{type(exc).__name__}: {exc}", tele, emit=False
                )
                raise
            yield index, result, time.time() - run_started
            if tele is not None:
                tele.tick()

    def _execute_backend(
        self,
        specs: typing.Sequence[RunSpec],
        pending: typing.Sequence[int],
        traces_dir: typing.Optional[str],
        series_dir: typing.Optional[str],
        tele: typing.Optional[_BatchTelemetry],
        backend: ExecutorBackend,
    ) -> typing.Iterator[typing.Tuple[int, SimulationResult, float]]:
        """Fan out over a backend: telemetry ticks, stall policy, triage.

        The loop never blocks indefinitely on the backend: with
        telemetry it polls at most ``POLL_S`` between ticks.  A stalled
        worker is killed where the backend supports it -- per-run on an
        isolating backend; on the shared local pool the kill breaks the
        pool and the backend reports *every* in-flight run as a crashed
        casualty for triage (retry the stalled cell once, resubmit
        innocent bystanders, fail the rest).  Where it does not
        (shared-dir: the worker may be on another host), the attempt is
        abandoned instead and triaged the same way.
        """
        capabilities = backend.capabilities
        # bystanders exist only where one worker's death can break
        # others; on isolating backends a crash always indicts its own
        # cell (treating it as a bystander would resubmit a
        # deterministic crasher forever)
        bystander_possible = not capabilities.isolates_runs
        remaining = list(pending)
        retried: typing.Set[int] = set()
        killed: typing.Set[int] = set()
        batch_started = time.time()
        while remaining:
            # cells on their second attempt run one per isolated round:
            # if one is a deterministic crasher it can only take itself
            # down, never a fellow retry
            isolate = [cell for cell in remaining if cell in retried]
            if isolate:
                submit = [isolate[0]]
                remaining = [c for c in remaining if c != isolate[0]]
            else:
                submit, remaining = remaining, []
            backend.prepare(len(submit))
            inflight: typing.Set[int] = set()
            for index in submit:
                context = (
                    tele.worker_context(index) if tele is not None else None
                )
                backend.submit(
                    sweep_task(
                        index, specs[index], traces_dir, series_dir, context
                    ),
                    isolated=index in retried,
                )
                inflight.add(index)
            while inflight:
                outcomes = backend.poll(
                    _BatchTelemetry.POLL_S if tele is not None else None
                )
                crashed: typing.List[int] = []
                crash_reason = "worker process lost"
                for outcome in outcomes:
                    if outcome.cell not in inflight:
                        continue  # late echo of an abandoned attempt
                    inflight.discard(outcome.cell)
                    if outcome.crashed:
                        crashed.append(outcome.cell)
                        if outcome.error:
                            crash_reason = outcome.error
                    elif outcome.error is not None:
                        # a deterministic worker exception: record it
                        # (the worker already emitted run.error with
                        # traceback) and fail fast -- unlike a death
                        # or stall, retrying cannot help
                        self._record_failure(
                            outcome.cell, outcome.error, tele, emit=False
                        )
                        if outcome.exception is not None:
                            raise outcome.exception
                        raise WorkerTaskError(
                            outcome.error, outcome.traceback
                        )
                    else:
                        killed.discard(outcome.cell)
                        yield (
                            outcome.cell,
                            outcome.result,
                            time.time() - batch_started,
                        )
                if crashed:
                    self._triage_casualties(
                        crashed, killed, retried, remaining,
                        crash_reason, tele, bystander_possible,
                    )
                    if bystander_possible:
                        # the shared pool broke: poll() reported every
                        # in-flight run as a casualty, so start a fresh
                        # round for whatever triage requeued
                        killed.clear()
                        inflight.clear()
                        break
                    killed.difference_update(crashed)
                if tele is not None:
                    for cell in tele.tick():
                        if cell not in inflight:
                            continue
                        if capabilities.supports_kill:
                            killed.add(cell)
                            backend.kill(cell, tele.status.pid_of(cell))
                        else:
                            # no cross-host kill: abandon this attempt
                            # and triage it like a kill casualty
                            backend.cancel(cell)
                            inflight.discard(cell)
                            self._triage_casualties(
                                [cell], {cell}, retried, remaining,
                                "stalled", tele, bystander_possible=False,
                                stall_note="abandoned; backend cannot kill",
                            )

    def _triage_casualties(
        self,
        casualties: typing.Sequence[int],
        killed: typing.Set[int],
        retried: typing.Set[int],
        remaining: typing.List[int],
        reason: str,
        tele: typing.Optional[_BatchTelemetry],
        bystander_possible: bool,
        stall_note: str = "worker killed",
    ) -> None:
        """Decide each crashed casualty's fate: retry, requeue, fail."""
        for cell in casualties:
            if cell in killed:
                if self.stall_retry and cell not in retried:
                    retried.add(cell)
                    remaining.append(cell)
                    if tele is not None:
                        tele.retry(cell, attempt=2)
                else:
                    self._record_failure(
                        cell,
                        "stalled: no heartbeat for "
                        f"{self.stall_timeout_s}s ({stall_note})",
                        tele,
                    )
            elif killed and bystander_possible:
                # innocent bystander of a stall kill: resubmit, no
                # retry charge (its own stall would be its own kill)
                remaining.append(cell)
            elif cell not in retried:
                # unexpected death (OOM kill, segfault): every casualty
                # is suspect and innocent alike -- each gets exactly one
                # resubmission, so a deterministic crasher fails on its
                # second attempt while bystanders get to finish
                retried.add(cell)
                remaining.append(cell)
                if tele is not None:
                    tele.retry(cell, attempt=2)
            else:
                self._record_failure(
                    cell, f"worker died abruptly: {reason}", tele
                )

    def _record_failure(
        self,
        index: int,
        message: str,
        tele: typing.Optional[_BatchTelemetry],
        emit: bool = True,
    ) -> None:
        self.last_failures[index] = message
        if tele is not None and emit:
            tele.fail(index, message)

    # -- bookkeeping --------------------------------------------------------

    def _next_batch_id(self) -> str:
        self._batch_seq += 1
        batch_id = f"{self._session}-b{self._batch_seq:03d}"
        self.last_batch_id = batch_id
        return batch_id

    def _open_telemetry(
        self,
        batch_id: str,
        label: str,
        specs: typing.Sequence[RunSpec],
        keys: typing.Sequence[str],
        kind: str,
    ) -> typing.Optional[_BatchTelemetry]:
        if not self.telemetry or self.runs_dir is None:
            return None
        return _BatchTelemetry(
            self.runs_dir, batch_id, label, specs, keys, kind,
            heartbeat_s=self.heartbeat_s,
            progress_every=self.progress_every,
            stall_timeout_s=self.stall_timeout_s,
            backend=self.backend_name,
        )

    def _register(
        self,
        batch_id: str,
        label: str,
        kind: str,
        keys: typing.Sequence[str],
        status: str,
        wall_s: typing.Optional[float] = None,
        tele: typing.Optional[_BatchTelemetry] = None,
    ) -> None:
        if self.registry is None:
            return
        entry = {
            "batch": batch_id,
            "label": label,
            "kind": kind,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "git_sha": self._git_sha,
            "status": status,
            "total": len(keys),
            "failed": len(self.last_failures),
            "digest": spec_digest(keys),
            "wall_s": round(wall_s, 3) if wall_s is not None else None,
            "manifest": (
                str(self.last_manifest_path)
                if self.last_manifest_path is not None and wall_s is not None
                else None
            ),
            "telemetry": str(tele.path) if tele is not None else None,
            "status_file": (
                str(tele.status_path) if tele is not None else None
            ),
        }
        try:
            self.registry.record(entry)
        except OSError:
            pass  # the registry is an index, never worth failing a batch

    # -- manifest -----------------------------------------------------------

    def _write_manifest(
        self,
        label: str,
        specs: typing.Sequence[RunSpec],
        keys: typing.Sequence[str],
        cached_flags: typing.Sequence[bool],
        wall_s: float,
        batch_id: str,
        status: str = "complete",
        results: typing.Optional[
            typing.Sequence[typing.Optional[SimulationResult]]
        ] = None,
        tele: typing.Optional[_BatchTelemetry] = None,
    ) -> None:
        hits = sum(cached_flags)
        simulated = len({k for k, c in zip(keys, cached_flags) if not c})
        failed_keys = {
            keys[index]: message
            for index, message in self.last_failures.items()
        }

        def run_status(index: int) -> str:
            if cached_flags[index]:
                return "cached"
            if keys[index] in failed_keys:
                return "failed"
            if results is not None and results[index] is not None:
                return "done"
            return "pending"

        payload = {
            "label": label,
            "session": self._session,
            "batch": self._batch_seq,
            "batch_id": batch_id,
            "status": status,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "git_sha": self._git_sha,
            "pool_size": self.pool_size,
            "backend": self.backend_name,
            "wall_s": round(wall_s, 3),
            "telemetry": str(tele.path) if tele is not None else None,
            "status_file": (
                str(tele.status_path) if tele is not None else None
            ),
            "counts": {
                "total": len(specs),
                "cache_hits": hits,
                "cache_misses": len(specs) - hits,
                "simulated": simulated,
                "coalesced": (len(specs) - hits) - simulated,
                "failed": sum(
                    1 for index in range(len(specs))
                    if run_status(index) == "failed"
                ),
            },
            "runs": [
                {
                    "key": key,
                    "cached": cached,
                    "status": run_status(index),
                    "error": failed_keys.get(key),
                    "spec": spec.to_dict(),
                    "trace_artifact": self._trace_artifact(spec),
                    "series_artifact": self._series_artifact(spec),
                }
                for index, (spec, key, cached) in enumerate(
                    zip(specs, keys, cached_flags)
                )
            ],
        }
        self.last_batch = payload
        self.last_manifest_path = None
        if self.runs_dir is None:
            return
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        name = f"{batch_id}-{_slug(label)}.json"
        path = self.runs_dir / name
        fd, tmp = tempfile.mkstemp(
            dir=str(self.runs_dir), prefix=".manifest.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, indent=1, sort_keys=True))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)
        self.last_manifest_path = path

    def _trace_artifact(self, spec: RunSpec) -> typing.Optional[str]:
        """Manifest entry for a run's trace file (None when untraced).

        Cached traced runs keep pointing at the artifact their original
        execution wrote -- it is content-addressed by the same cache key.
        """
        if not spec.trace or self.traces_dir is None:
            return None
        path = trace_artifact_path(self.traces_dir, spec)
        return str(path) if path.exists() else None

    def _series_artifact(self, spec: RunSpec) -> typing.Optional[str]:
        """Manifest entry for a run's series file (None when unsampled)."""
        if not spec.timeseries or self.series_dir is None:
            return None
        path = series_artifact_path(self.series_dir, spec)
        return str(path) if path.exists() else None

    def _emit(self, event: RunEvent) -> None:
        if self.progress is not None:
            self.progress(event)


def default_runner(
    pool_size: typing.Optional[int] = None,
    cache_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/cache"
    ),
    runs_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/runs"
    ),
    progress: typing.Optional[
        typing.Callable[[RunEvent], None]
    ] = print_progress,
    traces_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/traces"
    ),
    series_dir: typing.Optional[typing.Union[str, pathlib.Path]] = (
        "results/series"
    ),
    telemetry: bool = False,
    stall_timeout_s: typing.Optional[float] = None,
    backend: str = "local",
    backend_options: typing.Optional[typing.Dict[str, typing.Any]] = None,
) -> ParallelRunner:
    """A runner with the conventional on-disk layout under ``results/``."""
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ParallelRunner(
        pool_size=pool_size,
        cache=cache,
        runs_dir=runs_dir,
        progress=progress,
        traces_dir=traces_dir,
        series_dir=series_dir,
        telemetry=telemetry,
        stall_timeout_s=stall_timeout_s,
        backend=backend,
        backend_options=backend_options,
    )
