"""Parallel run orchestration: specs, cache, workers and manifests.

The paper's tables each need dozens of independent simulation runs;
this package executes them across worker processes and memoises every
completed run on disk, so repeated sweeps and bisections reuse prior
work.  See ``docs/RUNNER.md`` for the cache and manifest layout.

Public surface:

- :class:`RunSpec` / :class:`WorkloadSpec` -- declarative run inputs.
- :class:`ResultCache` -- content-addressed result store (with
  ``stats``/``gc`` maintenance for long-lived shared caches).
- :class:`ParallelRunner` -- batch orchestrator (dispatch + cache +
  manifest, plus live telemetry, stall detection and crash triage)
  over a pluggable :class:`ExecutorBackend`.
- :func:`create_backend` / :func:`backend_names` -- the executor
  registry: ``serial``, ``local`` (process pool), ``asyncio``
  (subprocess-per-run) and ``shared-dir`` (multi-host spool).
- :class:`RunRegistry` -- persistent index of every executed batch.
- :func:`execute_spec` -- one spec, inline, no orchestration.
- :func:`worker_pool_loop` -- serve a shared-dir spool as a worker.
- :func:`default_runner` -- runner over the ``results/`` layout.
"""

from repro.runner.backends import (
    BackendCapabilities,
    ExecutorBackend,
    JobOutcome,
    WorkerTaskError,
    backend_names,
    create_backend,
    get_backend_info,
    janitor_sweep,
    register_backend,
    worker_pool_loop,
)
from repro.runner.cache import ResultCache
from repro.runner.registry import (
    REGISTRY_FILENAME,
    RunRegistry,
    spec_digest,
)
from repro.runner.runner import (
    ParallelRunner,
    RunEvent,
    default_runner,
    print_progress,
)
from repro.runner.spec import (
    CACHE_FORMAT_VERSION,
    RunSpec,
    WorkloadSpec,
    register_workload,
    workload_kinds,
)
from repro.runner.worker import execute_bench, execute_spec

__all__ = [
    "BackendCapabilities",
    "CACHE_FORMAT_VERSION",
    "ExecutorBackend",
    "JobOutcome",
    "REGISTRY_FILENAME",
    "ParallelRunner",
    "ResultCache",
    "RunEvent",
    "RunRegistry",
    "RunSpec",
    "WorkerTaskError",
    "WorkloadSpec",
    "backend_names",
    "create_backend",
    "default_runner",
    "execute_bench",
    "execute_spec",
    "get_backend_info",
    "print_progress",
    "register_backend",
    "register_workload",
    "janitor_sweep",
    "spec_digest",
    "worker_pool_loop",
    "workload_kinds",
]
