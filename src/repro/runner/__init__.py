"""Parallel run orchestration: specs, cache, workers and manifests.

The paper's tables each need dozens of independent simulation runs;
this package executes them across worker processes and memoises every
completed run on disk, so repeated sweeps and bisections reuse prior
work.  See ``docs/RUNNER.md`` for the cache and manifest layout.

Public surface:

- :class:`RunSpec` / :class:`WorkloadSpec` -- declarative run inputs.
- :class:`ResultCache` -- content-addressed result store.
- :class:`ParallelRunner` -- batch executor (pool + cache + manifest,
  plus live telemetry, stall detection and broken-pool recovery).
- :class:`RunRegistry` -- persistent index of every executed batch.
- :func:`execute_spec` -- one spec, inline, no orchestration.
- :func:`default_runner` -- runner over the ``results/`` layout.
"""

from repro.runner.cache import ResultCache
from repro.runner.registry import (
    REGISTRY_FILENAME,
    RunRegistry,
    spec_digest,
)
from repro.runner.runner import (
    ParallelRunner,
    RunEvent,
    default_runner,
    print_progress,
)
from repro.runner.spec import (
    CACHE_FORMAT_VERSION,
    RunSpec,
    WorkloadSpec,
    register_workload,
    workload_kinds,
)
from repro.runner.worker import execute_bench, execute_spec

__all__ = [
    "CACHE_FORMAT_VERSION",
    "REGISTRY_FILENAME",
    "ParallelRunner",
    "ResultCache",
    "RunEvent",
    "RunRegistry",
    "RunSpec",
    "WorkloadSpec",
    "default_runner",
    "execute_bench",
    "execute_spec",
    "print_progress",
    "register_workload",
    "spec_digest",
    "workload_kinds",
]
