"""Disk cache of simulation results, keyed by run-spec content hash.

Layout: ``<root>/<key[:2]>/<key>.json`` -- two-level fan-out keeps any
single directory small when sweeps accumulate thousands of entries.
Each entry stores the spec alongside the result so the cache is
self-describing and auditable.

Writes go through a same-directory *unique* temp file + ``os.replace``
so a killed run never leaves a truncated entry behind and concurrent
runners (processes *or* threads) sharing a cache directory can race on
the same key without a reader ever observing a torn JSON entry -- the
last replace wins, and every intermediate state is a complete file.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import typing

from repro.runner.spec import CACHE_FORMAT_VERSION, RunSpec
from repro.sim.metrics import SimulationResult


class ResultCache:
    """Content-addressed store of :class:`SimulationResult`s."""

    def __init__(self, root: typing.Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> typing.Optional[SimulationResult]:
        """The cached result for ``spec``, or None on a miss."""
        path = self.path_for(spec.cache_key())
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None  # corrupt or written by an incompatible build

    def put(self, spec: RunSpec, result: SimulationResult) -> pathlib.Path:
        """Store ``result`` under ``spec``'s key; returns the entry path."""
        key = spec.cache_key()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        # a pid-suffixed name is not unique enough: two threads of one
        # runner (or a recycled pid) could interleave writes into the
        # same temp file; mkstemp guarantees a fresh file per writer
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=1))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
