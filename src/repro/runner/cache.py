"""Disk cache of simulation results, keyed by run-spec content hash.

Layout: ``<root>/<key[:2]>/<key>.json`` -- two-level fan-out keeps any
single directory small when sweeps accumulate thousands of entries.
Each entry stores the spec alongside the result so the cache is
self-describing and auditable.

Writes go through a same-directory *unique* temp file + ``os.replace``
so a killed run never leaves a truncated entry behind and concurrent
runners (processes *or* threads) sharing a cache directory can race on
the same key without a reader ever observing a torn JSON entry -- the
last replace wins, and every intermediate state is a complete file.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
import typing

from repro.runner.spec import CACHE_FORMAT_VERSION, RunSpec
from repro.sim.metrics import SimulationResult


class ResultCache:
    """Content-addressed store of :class:`SimulationResult`s."""

    def __init__(self, root: typing.Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> typing.Optional[SimulationResult]:
        """The cached result for ``spec``, or None on a miss."""
        path = self.path_for(spec.cache_key())
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None  # corrupt or written by an incompatible build

    def put(self, spec: RunSpec, result: SimulationResult) -> pathlib.Path:
        """Store ``result`` under ``spec``'s key; returns the entry path."""
        key = spec.cache_key()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        # a pid-suffixed name is not unique enough: two threads of one
        # runner (or a recycled pid) could interleave writes into the
        # same temp file; mkstemp guarantees a fresh file per writer
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=1))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # -- maintenance (multi-host caches grow without bound otherwise) -------

    def _entries(self) -> typing.Iterator[pathlib.Path]:
        if self.root.exists():
            yield from self.root.glob("*/*.json")

    def stats(self) -> typing.Dict[str, typing.Any]:
        """Size and age summary of the cache, for ``repro cache``.

        ``oldest_age_s`` / ``newest_age_s`` are relative to now, from
        entry mtimes (an entry's mtime is when its run finished, since
        writes go through ``os.replace``).
        """
        entries = 0
        total_bytes = 0
        oldest: typing.Optional[float] = None
        newest: typing.Optional[float] = None
        for path in self._entries():
            try:
                status = path.stat()
            except OSError:
                continue  # pruned concurrently
            entries += 1
            total_bytes += status.st_size
            mtime = status.st_mtime
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)
        now = time.time()
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_age_s": (
                round(now - oldest, 1) if oldest is not None else None
            ),
            "newest_age_s": (
                round(now - newest, 1) if newest is not None else None
            ),
        }

    def gc(
        self,
        max_age_s: typing.Optional[float] = None,
        max_entries: typing.Optional[int] = None,
        dry_run: bool = False,
    ) -> typing.Dict[str, int]:
        """Prune entries by age and/or count; returns what happened.

        ``max_age_s`` removes entries older than that many seconds;
        ``max_entries`` then removes oldest-first until at most that
        many remain.  ``dry_run`` counts without deleting.  Concurrent
        runners are safe: a pruned entry is merely a future cache miss,
        and deletion races collapse to whoever unlinks first.
        """
        dated: typing.List[typing.Tuple[float, pathlib.Path]] = []
        for path in self._entries():
            try:
                dated.append((path.stat().st_mtime, path))
            except OSError:
                continue
        dated.sort()  # oldest first
        now = time.time()
        doomed: typing.List[pathlib.Path] = []
        survivors: typing.List[typing.Tuple[float, pathlib.Path]] = []
        for mtime, path in dated:
            if max_age_s is not None and now - mtime > max_age_s:
                doomed.append(path)
            else:
                survivors.append((mtime, path))
        if max_entries is not None and len(survivors) > max_entries:
            overflow = len(survivors) - max_entries
            doomed.extend(path for _, path in survivors[:overflow])
            survivors = survivors[overflow:]
        removed = 0
        if not dry_run:
            for path in doomed:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
                try:
                    path.parent.rmdir()  # drop now-empty fan-out dirs
                except OSError:
                    pass
        return {
            "examined": len(dated),
            "pruned": len(doomed) if dry_run else removed,
            "kept": len(survivors),
            "dry_run": int(dry_run),
        }
