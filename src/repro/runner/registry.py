"""Persistent index of every batch the runner executed.

``results/runs/`` accumulates one manifest file per batch plus (with
telemetry on) one directory per batch holding ``telemetry.jsonl`` and
``status.json``.  The registry is the index over all of that: an
append-only ``registry.jsonl`` in the runs directory with one record
per batch *transition* -- the runner appends a ``running`` entry when a
batch starts and a terminal entry (``complete`` / ``partial`` /
``interrupted`` / ``failed``) when it ends.  The latest record per
batch id wins, so a batch that never wrote its terminal entry (parent
killed hard) is still visible, stuck at ``running``.

Appends are one ``write()`` of one line on an append-mode handle, so
concurrent runners sharing a runs directory never interleave records.

``repro runs list`` / ``repro runs show`` / ``repro watch`` /
``repro tail`` all resolve batches through :meth:`RunRegistry.find`,
which accepts an exact batch id, a unique prefix, or ``latest``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import typing

PathLike = typing.Union[str, pathlib.Path]

#: file name of the index inside the runs directory
REGISTRY_FILENAME = "registry.jsonl"


def spec_digest(keys: typing.Sequence[str]) -> str:
    """A short content digest over a batch's ordered cache keys."""
    joined = "\n".join(keys).encode()
    return hashlib.sha256(joined).hexdigest()[:16]


class RunRegistry:
    """The append-only batch index under a runs directory."""

    def __init__(self, runs_dir: PathLike) -> None:
        self.runs_dir = pathlib.Path(runs_dir)
        self.path = self.runs_dir / REGISTRY_FILENAME

    def record(self, entry: typing.Mapping[str, typing.Any]) -> None:
        """Append one batch record (must carry a ``batch`` id)."""
        if not entry.get("batch"):
            raise ValueError(f"registry entry needs a 'batch' id: {entry!r}")
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(dict(entry), sort_keys=True) + "\n"
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()

    def entries(self) -> typing.List[typing.Dict[str, typing.Any]]:
        """Latest record per batch id, in first-seen (start) order."""
        latest: typing.Dict[str, typing.Dict[str, typing.Any]] = {}
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail line of a live writer
                    if isinstance(record, dict) and record.get("batch"):
                        # dict preserves first-seen insertion order
                        latest[record["batch"]] = record
        except OSError:
            return []
        return list(latest.values())

    def find(self, token: str = "latest") -> typing.Dict[str, typing.Any]:
        """Resolve a batch by id, unique prefix/substring, or ``latest``.

        Raises :class:`LookupError` when nothing (or more than one
        batch) matches.
        """
        entries = self.entries()
        if not entries:
            raise LookupError(
                f"no batches registered under {self.runs_dir} "
                f"(missing {REGISTRY_FILENAME})"
            )
        if token in ("latest", "last", ""):
            return entries[-1]
        exact = [e for e in entries if e["batch"] == token]
        if exact:
            return exact[-1]
        matches = [
            e for e in entries
            if e["batch"].startswith(token) or token in e.get("label", "")
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            known = ", ".join(e["batch"] for e in entries[-5:])
            raise LookupError(
                f"no batch matches {token!r}; most recent: {known}"
            )
        ambiguous = ", ".join(e["batch"] for e in matches[:5])
        raise LookupError(
            f"batch {token!r} is ambiguous: {ambiguous}"
        )

    def batch_dir(self, batch_id: str) -> pathlib.Path:
        """Where a batch's telemetry artifacts live."""
        return self.runs_dir / batch_id

    def __len__(self) -> int:
        return len(self.entries())
