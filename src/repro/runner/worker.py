"""The function worker processes execute: one spec -> one result.

Kept in its own importable module so :mod:`multiprocessing` can pickle
it by reference under any start method (fork and spawn alike).

Traced specs (``spec.trace``) run with a :class:`MemoryRecorder` and
write their event stream to ``<traces_dir>/<cache_key>.trace.jsonl``
before returning; time-series specs (``spec.timeseries``) run with a
:class:`TimeSeriesSampler` and write the sampled trajectories to
``<series_dir>/<cache_key>.series.json``.  Both artifacts are
content-addressed by the spec's cache key, so re-running the same spec
overwrites the identical file and a batch manifest can reference it
without coordination.

:func:`execute_bench` is the perf-measurement variant used by ``repro
bench``: it runs the spec with the wall-clock self-profiler attached
and returns simulator speed (events/second, wall per simulated second)
plus the per-phase breakdown instead of a cached model result.

When the runner hands a job a :class:`~repro.obs.telemetry.WorkerTelemetry`
context, the worker emits ``run.start`` immediately (so the parent
learns its pid), heartbeats through the engine's progress hook while
simulating, and ``run.done`` / ``run.error`` (with traceback) on exit;
telemetry never changes the returned result.
"""

from __future__ import annotations

import os
import pathlib
import time
import typing

from repro.obs.export import write_jsonl
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import MemoryRecorder
from repro.obs.telemetry import WorkerTelemetry, max_rss_kb
from repro.obs.timeseries import TimeSeriesSampler, write_series_json
from repro.runner.spec import RunSpec
from repro.sim.metrics import SimulationResult
from repro.sim.simulation import Simulation

#: test hook (stall-detection tests only): ``"cell:seconds[,...]"`` makes
#: the named cells sleep -- heartbeat-free -- right after ``run.start``,
#: so the parent's stall detector fires deterministically
STALL_TEST_ENV = "REPRO_RUNNER_TEST_STALL"
#: test hook (broken-pool tests only): ``"cell[,...]"`` makes the named
#: cells kill their worker process abruptly after ``run.start``
EXIT_TEST_ENV = "REPRO_RUNNER_TEST_EXIT"


def _apply_test_hooks(cell: int) -> None:
    """Honour the stall/death test hooks (telemetry-context runs only)."""
    stall = os.environ.get(STALL_TEST_ENV, "")
    for part in stall.split(","):
        if ":" in part:
            target, seconds = part.split(":", 1)
            if target.strip() == str(cell):
                time.sleep(float(seconds))
    exits = os.environ.get(EXIT_TEST_ENV, "")
    if any(part.strip() == str(cell) for part in exits.split(",") if part):
        os._exit(66)  # simulate an abrupt worker death (OOM kill etc.)

#: sample interval of runner-produced series artifacts (simulated ms);
#: fixed so equal specs always produce identical artifacts
SERIES_INTERVAL_MS = 1_000.0


def trace_artifact_path(
    traces_dir: typing.Union[str, pathlib.Path], spec: RunSpec
) -> pathlib.Path:
    """Where a traced spec's JSONL artifact lives (content-addressed)."""
    return pathlib.Path(traces_dir) / f"{spec.cache_key()}.trace.jsonl"


def series_artifact_path(
    series_dir: typing.Union[str, pathlib.Path], spec: RunSpec
) -> pathlib.Path:
    """Where a sampled spec's series artifact lives (content-addressed)."""
    return pathlib.Path(series_dir) / f"{spec.cache_key()}.series.json"


def _spec_meta(spec: RunSpec) -> typing.Dict[str, typing.Any]:
    return {
        "scheduler": spec.scheduler,
        "workload": spec.workload.kind,
        "rate_tps": spec.workload.rate_tps,
        "seed": spec.seed,
        "duration_ms": spec.duration_ms,
    }


def execute_spec(
    spec: RunSpec,
    traces_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
    series_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
    telemetry: typing.Optional[WorkerTelemetry] = None,
) -> SimulationResult:
    """Run the simulation a spec describes; pure given the spec.

    Tracing, sampling and telemetry observe without perturbing, so the
    returned result is byte-identical whatever combination of
    ``spec.trace`` / ``spec.timeseries`` / ``telemetry`` is set; only
    the artifacts on disk differ.
    """
    if telemetry is not None:
        telemetry.start()
        _apply_test_hooks(telemetry.cell)
    started = time.perf_counter()
    try:
        recorder = MemoryRecorder() if spec.trace else None
        sampler = (
            TimeSeriesSampler(interval_ms=SERIES_INTERVAL_MS)
            if spec.timeseries
            else None
        )
        simulation = Simulation(
            spec.config,
            spec.workload.build(),
            scheduler=spec.scheduler,
            seed=spec.seed,
            duration_ms=spec.duration_ms,
            warmup_ms=spec.warmup_ms,
            recorder=recorder,
            sampler=sampler,
        )
        if telemetry is not None:
            telemetry.install(simulation.env)
        result = simulation.run()
        if recorder is not None and traces_dir is not None:
            write_jsonl(
                recorder.events, trace_artifact_path(traces_dir, spec),
                meta=_spec_meta(spec), dropped=recorder.dropped,
            )
        if sampler is not None and series_dir is not None:
            write_series_json(
                sampler, series_artifact_path(series_dir, spec),
                meta=_spec_meta(spec),
            )
    except BaseException as exc:
        if telemetry is not None:
            telemetry.error(exc)
        raise
    if telemetry is not None:
        telemetry.done(
            time.perf_counter() - started, simulation.env.events_processed
        )
    return result


def execute_indexed(
    job: typing.Tuple[
        int,
        RunSpec,
        typing.Optional[str],
        typing.Optional[str],
        typing.Optional[WorkerTelemetry],
    ],
) -> typing.Tuple[int, SimulationResult]:
    """Pool-friendly wrapper carrying the batch index through the pool."""
    index, spec, traces_dir, series_dir, telemetry = job
    return index, execute_spec(
        spec, traces_dir=traces_dir, series_dir=series_dir,
        telemetry=telemetry,
    )


def execute_bench(
    spec: RunSpec,
    repeats: int = 1,
    telemetry: typing.Optional[WorkerTelemetry] = None,
) -> typing.Dict[str, typing.Any]:
    """Run ``spec`` as a perf measurement: speed + phase breakdown.

    Never consults or populates the result cache -- a cached run takes
    ~0 wall seconds and would make every speed number meaningless.
    With ``repeats > 1`` the cell is simulated that many times and the
    *fastest* repetition reported (the standard noise filter: the
    minimum is the run least disturbed by the host).  The model-level
    outcome (commits, throughput) is included so a bench row can be
    sanity-checked against the equivalent sweep result.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if telemetry is not None:
        telemetry.start()
        _apply_test_hooks(telemetry.cell)
    bench_started = time.perf_counter()
    try:
        best = _bench_repeats(spec, repeats, telemetry)
    except BaseException as exc:
        if telemetry is not None:
            telemetry.error(exc)
        raise
    if telemetry is not None:
        telemetry.done(
            time.perf_counter() - bench_started, best["events"]
        )
    return best


def _bench_repeats(
    spec: RunSpec,
    repeats: int,
    telemetry: typing.Optional[WorkerTelemetry],
) -> typing.Dict[str, typing.Any]:
    """Best-of-``repeats`` measurement loop of :func:`execute_bench`."""
    best: typing.Optional[typing.Dict[str, typing.Any]] = None
    for _ in range(repeats):
        profiler = PhaseProfiler()
        simulation = Simulation(
            spec.config,
            spec.workload.build(),
            scheduler=spec.scheduler,
            seed=spec.seed,
            duration_ms=spec.duration_ms,
            warmup_ms=spec.warmup_ms,
            profiler=profiler,
        )
        if telemetry is not None:
            telemetry.install(simulation.env)
        started = time.perf_counter()
        result = simulation.run()
        wall_s = time.perf_counter() - started
        if best is not None and wall_s >= best["wall_s"]:
            continue
        events = simulation.env.events_processed
        sim_s = spec.duration_ms / 1_000.0
        best = {
            "scheduler": spec.scheduler,
            "workload": spec.workload.to_dict(),
            "dd": spec.config.dd,
            "seed": spec.seed,
            "duration_ms": spec.duration_ms,
            "warmup_ms": spec.warmup_ms,
            "repeats": repeats,
            "wall_s": round(wall_s, 6),
            "events": events,
            "events_per_s": (
                round(events / wall_s, 3) if wall_s > 0 else None
            ),
            "wall_per_sim_s": round(wall_s / sim_s, 9),
            "profile": profiler.report(total_s=wall_s),
            "completed": result.completed,
            "throughput_tps": result.throughput_tps,
            "maxrss_kb": max_rss_kb(),
        }
    assert best is not None
    return best


def execute_bench_indexed(
    job: typing.Tuple[
        int, RunSpec, int, typing.Optional[WorkerTelemetry]
    ],
) -> typing.Tuple[int, typing.Dict[str, typing.Any]]:
    """Pool-friendly wrapper for :func:`execute_bench`."""
    index, spec, repeats, telemetry = job
    return index, execute_bench(spec, repeats=repeats, telemetry=telemetry)
