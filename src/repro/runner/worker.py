"""The function worker processes execute: one spec -> one result.

Kept in its own importable module so :mod:`multiprocessing` can pickle
it by reference under any start method (fork and spawn alike).

Traced specs (``spec.trace``) run with a :class:`MemoryRecorder` and
write their event stream to ``<traces_dir>/<cache_key>.trace.jsonl``
before returning.  The artifact is content-addressed by the spec's
cache key, so re-running the same traced spec overwrites the identical
file and a batch manifest can reference it without coordination.
"""

from __future__ import annotations

import pathlib
import typing

from repro.obs.export import write_jsonl
from repro.obs.recorder import MemoryRecorder
from repro.runner.spec import RunSpec
from repro.sim.metrics import SimulationResult
from repro.sim.simulation import run_simulation


def trace_artifact_path(
    traces_dir: typing.Union[str, pathlib.Path], spec: RunSpec
) -> pathlib.Path:
    """Where a traced spec's JSONL artifact lives (content-addressed)."""
    return pathlib.Path(traces_dir) / f"{spec.cache_key()}.trace.jsonl"


def execute_spec(
    spec: RunSpec,
    traces_dir: typing.Optional[typing.Union[str, pathlib.Path]] = None,
) -> SimulationResult:
    """Run the simulation a spec describes; pure given the spec.

    Tracing observes without perturbing, so the returned result is
    byte-identical whether or not ``spec.trace`` is set; only the
    artifact on disk differs.
    """
    recorder = MemoryRecorder() if spec.trace else None
    result = run_simulation(
        spec.scheduler,
        spec.workload.build(),
        spec.config,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
        recorder=recorder,
    )
    if recorder is not None and traces_dir is not None:
        write_jsonl(
            recorder.events,
            trace_artifact_path(traces_dir, spec),
            meta={
                "scheduler": spec.scheduler,
                "workload": spec.workload.kind,
                "rate_tps": spec.workload.rate_tps,
                "seed": spec.seed,
                "duration_ms": spec.duration_ms,
                "events_dropped": recorder.dropped,
            },
        )
    return result


def execute_indexed(
    job: typing.Tuple[int, RunSpec, typing.Optional[str]],
) -> typing.Tuple[int, SimulationResult]:
    """Pool-friendly wrapper carrying the batch index through the pool."""
    index, spec, traces_dir = job
    return index, execute_spec(spec, traces_dir=traces_dir)
