"""The function worker processes execute: one spec -> one result.

Kept in its own importable module so :mod:`multiprocessing` can pickle
it by reference under any start method (fork and spawn alike).
"""

from __future__ import annotations

import typing

from repro.runner.spec import RunSpec
from repro.sim.metrics import SimulationResult
from repro.sim.simulation import run_simulation


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run the simulation a spec describes; pure given the spec."""
    return run_simulation(
        spec.scheduler,
        spec.workload.build(),
        spec.config,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
    )


def execute_indexed(
    job: typing.Tuple[int, RunSpec],
) -> typing.Tuple[int, SimulationResult]:
    """Pool-friendly wrapper carrying the batch index through the pool."""
    index, spec = job
    return index, execute_spec(spec)
