"""One asyncio-supervised subprocess per run: per-run kill, no pool.

The process-pool backend pays for its shared pool when a run stalls:
killing the hung worker breaks the pool and every in-flight sibling
must be triaged.  Here every run gets its own child process
(``python -m repro.runner.backends.subproc``): the task dict goes in on
stdin, the result comes back as one record-separator-framed JSON line
on stdout, and killing a stalled run is ``SIGKILL`` on exactly one pid
-- siblings never notice (``supports_kill`` *and* ``isolates_runs``).

Supervision runs on a private asyncio event loop in a daemon thread;
``workers`` concurrent children are admitted by a semaphore.  The
synchronous backend interface talks to the loop with
``run_coroutine_threadsafe`` and receives finished work through a
thread-safe queue, so the orchestrator's ``poll`` is an ordinary
blocking ``Queue.get``.
"""

from __future__ import annotations

import asyncio
import json
import os
import queue
import signal
import subprocess
import sys
import threading
import typing

from repro.runner.backends.base import (
    BackendCapabilities,
    ExecutorBackend,
    JobOutcome,
    child_environment,
)
from repro.runner.backends.subproc import RESULT_FRAME
from repro.runner.backends.task import decode_result


class AsyncioSubprocessBackend(ExecutorBackend):
    """Supervises one subprocess per run on a background event loop."""

    name = "asyncio"

    def __init__(self, workers: int = 1, **_: typing.Any) -> None:
        self.workers = max(1, workers)
        self._outcomes: "queue.Queue[JobOutcome]" = queue.Queue()
        self._loop: typing.Optional[asyncio.AbstractEventLoop] = None
        self._thread: typing.Optional[threading.Thread] = None
        self._semaphore: typing.Optional[asyncio.Semaphore] = None
        #: cell -> live child process, for per-run kill
        self._children: typing.Dict[int, typing.Any] = {}
        self._env = child_environment()

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            supports_kill=True,
            isolates_runs=True,
            max_workers=self.workers,
        )

    # -- loop plumbing ------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            loop = asyncio.new_event_loop()

            def drive() -> None:
                asyncio.set_event_loop(loop)
                loop.run_forever()

            thread = threading.Thread(
                target=drive,
                name="repro-asyncio-backend",
                daemon=True,
            )
            thread.start()
            # the semaphore must be created inside the loop (3.9 binds
            # primitives to the running loop)
            asyncio.run_coroutine_threadsafe(
                self._init_semaphore(), loop
            ).result()
            self._loop, self._thread = loop, thread
        return self._loop

    async def _init_semaphore(self) -> None:
        self._semaphore = asyncio.Semaphore(self.workers)

    # -- the backend interface ----------------------------------------------

    def submit(
        self, task: typing.Dict[str, typing.Any], isolated: bool = False
    ) -> None:
        del isolated  # every run is isolated by construction
        loop = self._ensure_loop()
        asyncio.run_coroutine_threadsafe(self._supervise(task), loop)

    async def _supervise(self, task: typing.Dict[str, typing.Any]) -> None:
        cell = int(task["cell"])
        assert self._semaphore is not None
        async with self._semaphore:
            try:
                child = await asyncio.create_subprocess_exec(
                    sys.executable,
                    "-m",
                    "repro.runner.backends.subproc",
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    env=self._env,
                )
            except OSError as exc:
                self._outcomes.put(JobOutcome(
                    cell=cell, error=f"could not spawn worker: {exc}"
                ))
                return
            self._children[cell] = child
            try:
                stdout, _ = await child.communicate(
                    json.dumps(task).encode("utf-8")
                )
            finally:
                self._children.pop(cell, None)
            self._outcomes.put(self._outcome(task, child, stdout))

    def _outcome(
        self,
        task: typing.Dict[str, typing.Any],
        child: typing.Any,
        stdout: bytes,
    ) -> JobOutcome:
        cell = int(task["cell"])
        frame: typing.Optional[bytes] = None
        marker = RESULT_FRAME.encode("ascii")
        for line in stdout.splitlines():
            if line.startswith(marker):
                frame = line[len(marker):]
        if frame is None:
            # no result frame: the child died before reporting (kill,
            # OOM, os._exit) -- retryable, exactly like a pool breakage
            return JobOutcome(
                cell=cell,
                crashed=True,
                error=f"worker exited {child.returncode} without result",
            )
        try:
            reply = json.loads(frame.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return JobOutcome(
                cell=cell, crashed=True,
                error=f"unreadable worker result frame: {exc}",
            )
        if reply.get("ok"):
            return JobOutcome(
                cell=cell, result=decode_result(task, reply["result"])
            )
        return JobOutcome(
            cell=cell,
            error=str(reply.get("error", "worker failed")),
            traceback=reply.get("traceback"),
        )

    def poll(
        self, timeout: typing.Optional[float]
    ) -> typing.List[JobOutcome]:
        outcomes: typing.List[JobOutcome] = []
        try:
            outcomes.append(self._outcomes.get(timeout=timeout))
        except queue.Empty:
            return []
        while True:
            try:
                outcomes.append(self._outcomes.get_nowait())
            except queue.Empty:
                return outcomes

    def kill(self, cell: int, pid: typing.Optional[int]) -> bool:
        child = self._children.get(cell)
        target = child.pid if child is not None else pid
        if target is None:
            return False
        try:
            os.kill(target, getattr(signal, "SIGKILL", signal.SIGTERM))
        except OSError:
            pass  # already exiting; communicate() resolves either way
        return True

    def shutdown(self) -> None:
        for child in list(self._children.values()):
            try:
                child.kill()
            except (OSError, ProcessLookupError):
                pass
        self._children.clear()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=2.0)
            self._loop, self._thread, self._semaphore = None, None, None
