"""The executor-backend protocol the orchestration core drives.

The runner decides *what* to run (dispatch order, dedup, cache
lookups, stall detection, retry and isolation policy, manifests); a
backend decides *where* it runs.  The contract is deliberately small:

- :meth:`ExecutorBackend.submit` takes one :mod:`task <.task>` dict --
  plain JSON-able data, so any backend can ship it across a process or
  host boundary;
- :meth:`ExecutorBackend.poll` returns completed work as
  :class:`JobOutcome`\\ s, with worker deaths reported as
  ``crashed=True`` outcomes rather than exceptions, so the runner can
  triage them (retry, requeue bystanders, fail repeat offenders);
- :meth:`ExecutorBackend.kill` terminates one stalled run when the
  backend's :class:`BackendCapabilities` advertise ``supports_kill``;
- :meth:`ExecutorBackend.shutdown` releases everything, including on
  Ctrl-C.

``capabilities.isolates_runs`` tells the runner whether killing (or
losing) one worker can take innocent in-flight runs down with it: a
shared process pool breaks wholesale, a per-run subprocess does not.
The triage logic uses that to decide who counts as a bystander.
"""

from __future__ import annotations

import abc
import dataclasses
import os
import pathlib
import typing


def child_environment() -> typing.Dict[str, str]:
    """The environment spawned workers get: parent env + importability.

    Subprocess backends launch ``python -m repro...`` children, so the
    directory holding the ``repro`` package is prepended to
    ``PYTHONPATH`` (a pip-installed package needs nothing, but a
    src-layout checkout run via ``PYTHONPATH=src`` must propagate it).
    Test hooks and everything else inherit as-is.
    """
    import repro

    env = dict(os.environ)
    package_root = str(
        pathlib.Path(repro.__file__).resolve().parent.parent
    )
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class WorkerTaskError(RuntimeError):
    """A deterministic in-run exception, re-raised across a boundary.

    Backends that receive results as JSON (asyncio subprocess,
    shared-dir spool) cannot reconstruct the original exception object;
    the orchestrator raises this carrier instead, with the worker's
    ``type: message`` string (and traceback, when available).
    """

    def __init__(
        self, message: str, traceback: typing.Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.traceback = traceback


@dataclasses.dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can and cannot do, as data the runner branches on."""

    #: :meth:`ExecutorBackend.kill` can terminate one stalled run
    supports_kill: bool = False
    #: killing/losing one worker cannot crash other in-flight runs
    isolates_runs: bool = False
    #: work may execute on other hosts (tasks/results travel as JSON)
    distributed: bool = False
    #: runs execute in the parent process itself (serial reference)
    inline: bool = False
    #: concurrent runs this instance will execute (None: unbounded)
    max_workers: typing.Optional[int] = None


@dataclasses.dataclass
class JobOutcome:
    """One finished (or dead) job as reported by :meth:`poll`.

    Exactly one of three shapes:

    - success: ``result`` set, ``error`` None, ``crashed`` False;
    - deterministic failure: ``error`` set (worker raised; retrying
      cannot help), ``exception`` carries the original object when the
      backend still has it (local pool);
    - crash: ``crashed`` True (worker process died abruptly -- OOM
      kill, segfault, stall kill); retryable.
    """

    cell: int
    result: typing.Any = None
    error: typing.Optional[str] = None
    traceback: typing.Optional[str] = None
    exception: typing.Optional[BaseException] = None
    crashed: bool = False


class ExecutorBackend(abc.ABC):
    """Where runs execute; see the module docstring for the contract."""

    #: registry name; subclasses override
    name: str = "?"

    @property
    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """The capability flags the orchestrator branches on."""

    def prepare(self, jobs: int) -> None:
        """Sizing hint: about to submit ``jobs`` tasks as one round."""

    @abc.abstractmethod
    def submit(
        self, task: typing.Dict[str, typing.Any], isolated: bool = False
    ) -> None:
        """Accept one task dict (see :mod:`.task`) for execution.

        ``isolated`` asks the backend to shield other runs from this
        one (it is a retry suspect): the local pool runs it in a fresh
        single-worker pool; backends whose runs are naturally isolated
        may ignore the flag.
        """

    @abc.abstractmethod
    def poll(
        self, timeout: typing.Optional[float]
    ) -> typing.List[JobOutcome]:
        """Block up to ``timeout`` seconds for completed jobs.

        Returns every outcome available once at least one is (possibly
        ``[]`` on timeout).  ``timeout=None`` blocks until something
        completes.
        """

    def cancel(self, cell: int) -> bool:
        """Stop tracking ``cell``; True when its work was withdrawn.

        Called when the orchestrator abandons a run the backend cannot
        kill (a stall on a ``supports_kill=False`` backend): the
        backend should withdraw the work if it has not started and must
        never report an outcome for the cell's current attempt again.
        The default cannot withdraw anything.
        """
        del cell
        return False

    def kill(self, cell: int, pid: typing.Optional[int]) -> bool:
        """Terminate the worker executing ``cell``; True when targeted.

        ``pid`` is the worker pid the telemetry stream reported (None
        when the run never emitted ``run.start``).  Only called when
        ``capabilities.supports_kill``; the default refuses.
        """
        del cell, pid
        return False

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Release all resources; must be safe after Ctrl-C."""
