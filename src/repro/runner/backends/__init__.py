"""Executor backends: where a batch's runs execute.

The :class:`~repro.runner.runner.ParallelRunner` decides *what* to run;
a backend registered here decides *where*.  ``repro backends`` lists
this registry, ``repro sweep --backend NAME`` selects from it, and the
conformance battery in ``tests/runner/test_backends.py`` drives every
entry through the same scenarios -- a new backend is a subclass of
:class:`ExecutorBackend`, one :func:`register_backend` call, and a
green conformance run.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.runner.backends.base import (
    BackendCapabilities,
    ExecutorBackend,
    JobOutcome,
    WorkerTaskError,
)
from repro.runner.backends.asyncio_subprocess import AsyncioSubprocessBackend
from repro.runner.backends.local import LocalPoolBackend, SerialBackend
from repro.runner.backends.shared_dir import (
    SharedDirBackend,
    janitor_sweep,
    worker_pool_loop,
)

__all__ = [
    "AsyncioSubprocessBackend",
    "BackendCapabilities",
    "BackendInfo",
    "ExecutorBackend",
    "JobOutcome",
    "LocalPoolBackend",
    "SerialBackend",
    "SharedDirBackend",
    "WorkerTaskError",
    "backend_names",
    "create_backend",
    "get_backend_info",
    "janitor_sweep",
    "register_backend",
    "worker_pool_loop",
]


@dataclasses.dataclass(frozen=True)
class BackendInfo:
    """One registry entry: class, one-line summary, static flags.

    ``flags`` describes the backend *kind* (instance capabilities add
    sizing): what ``repro backends`` prints without having to build an
    instance, which the shared-dir backend could not even do without a
    spool directory.
    """

    cls: typing.Type[ExecutorBackend]
    summary: str
    flags: BackendCapabilities


_REGISTRY: typing.Dict[str, BackendInfo] = {}


def register_backend(
    cls: typing.Type[ExecutorBackend],
    summary: str,
    flags: BackendCapabilities,
) -> None:
    """Add a backend class under its ``name`` (last write wins)."""
    _REGISTRY[cls.name] = BackendInfo(cls=cls, summary=summary, flags=flags)


def backend_names() -> typing.List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend_info(name: str) -> BackendInfo:
    """The registry entry for ``name`` (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(backend_names())}"
        ) from None


def create_backend(
    name: str, workers: int = 1, **options: typing.Any
) -> ExecutorBackend:
    """Instantiate a registered backend sized to ``workers``."""
    info = get_backend_info(name)
    return info.cls(workers=workers, **options)


register_backend(
    SerialBackend,
    "in-process, one run at a time (the conformance reference)",
    BackendCapabilities(inline=True, max_workers=1),
)
register_backend(
    LocalPoolBackend,
    "local process pool (the default); a stall kill breaks the pool",
    BackendCapabilities(supports_kill=True),
)
register_backend(
    AsyncioSubprocessBackend,
    "one supervised subprocess per run; per-run kill, no pool teardown",
    BackendCapabilities(supports_kill=True, isolates_runs=True),
)
register_backend(
    SharedDirBackend,
    "spool-directory fabric; any `repro worker-pool` host joins in",
    BackendCapabilities(isolates_runs=True, distributed=True),
)
