"""Child entrypoint of the asyncio backend: one task, stdin to stdout.

``python -m repro.runner.backends.subproc`` reads one task dict (JSON)
from stdin, executes it, and writes one reply line to stdout prefixed
with the ASCII record separator so the parent can find it among any
incidental output::

    \\x1e{"ok": true, "result": {...}}
    \\x1e{"ok": false, "error": "...", "traceback": "..."}

A deterministic exception still exits 0 -- the *reply* carries the
failure; only an abrupt death (kill, OOM) leaves no framed line, which
the parent reports as a crashed, retryable outcome.
"""

from __future__ import annotations

import json
import sys
import traceback
import typing

#: stdout line prefix framing the reply (ASCII record separator), so
#: incidental prints from the simulation can never be mistaken for it
RESULT_FRAME = "\x1e"


def main(
    stdin: typing.TextIO = sys.stdin, stdout: typing.TextIO = sys.stdout
) -> int:
    # heavy imports happen inside the try so even an import-time crash
    # produces a framed error reply instead of an unexplained exit
    try:
        from repro.runner.backends.task import encode_result, run_task

        task = json.loads(stdin.read())
        result = run_task(task)
        reply: typing.Dict[str, typing.Any] = {
            "ok": True,
            "result": encode_result(task, result),
        }
    except Exception as exc:
        reply = {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    stdout.write(RESULT_FRAME + json.dumps(reply) + "\n")
    stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
