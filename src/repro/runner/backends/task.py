"""The unit of work backends move around: one JSON-able task dict.

A task fully describes one run -- kind (``sweep`` or ``bench``), cell
index, spec, artifact directories, bench repeats and the optional
worker-telemetry context -- as plain data, so every backend shares one
contract: the local pool pickles the dict to a pool worker, the asyncio
backend writes it to a subprocess's stdin, the shared-dir backend
renames it through a spool directory to another host.

:func:`run_task` executes a task wherever it lands and returns the
*live* result object (a :class:`~repro.sim.metrics.SimulationResult`
or a bench row).  Backends that cross a host/stdio boundary encode that
with :func:`encode_result` and the parent restores it with
:func:`decode_result`; the round-trip is the same ``to_dict`` /
``from_dict`` pair the result cache uses, so results stay
byte-identical whichever backend carried them.
"""

from __future__ import annotations

import typing

from repro.obs.telemetry import WorkerTelemetry
from repro.runner.spec import RunSpec
from repro.runner.worker import execute_bench, execute_spec
from repro.sim.metrics import SimulationResult

Task = typing.Dict[str, typing.Any]


def sweep_task(
    cell: int,
    spec: RunSpec,
    traces_dir: typing.Optional[str] = None,
    series_dir: typing.Optional[str] = None,
    telemetry: typing.Optional[WorkerTelemetry] = None,
) -> Task:
    """One cache-missed sweep cell as a backend-portable task."""
    return {
        "kind": "sweep",
        "cell": cell,
        "spec": spec.to_dict(),
        "traces_dir": traces_dir,
        "series_dir": series_dir,
        "telemetry": telemetry.to_dict() if telemetry is not None else None,
    }


def bench_task(
    cell: int,
    spec: RunSpec,
    repeats: int,
    telemetry: typing.Optional[WorkerTelemetry] = None,
) -> Task:
    """One perf-measurement cell as a backend-portable task."""
    return {
        "kind": "bench",
        "cell": cell,
        "spec": spec.to_dict(),
        "repeats": repeats,
        "telemetry": telemetry.to_dict() if telemetry is not None else None,
    }


def run_task(task: Task) -> typing.Any:
    """Execute ``task`` in this process; returns the live result object."""
    spec = RunSpec.from_dict(task["spec"])
    context = task.get("telemetry")
    telemetry = (
        WorkerTelemetry.from_dict(context) if context is not None else None
    )
    if task["kind"] == "bench":
        return execute_bench(
            spec, repeats=int(task.get("repeats", 1)), telemetry=telemetry
        )
    if task["kind"] == "sweep":
        return execute_spec(
            spec,
            traces_dir=task.get("traces_dir"),
            series_dir=task.get("series_dir"),
            telemetry=telemetry,
        )
    raise ValueError(f"unknown task kind {task.get('kind')!r}")


def run_task_indexed(task: Task) -> typing.Tuple[int, typing.Any]:
    """Pool-friendly wrapper carrying the cell index through the pool."""
    return task["cell"], run_task(task)


def encode_result(task: Task, result: typing.Any) -> typing.Any:
    """The JSON form of a task's result, for transport."""
    if task["kind"] == "sweep":
        return typing.cast(SimulationResult, result).to_dict()
    return result  # bench rows are already plain dicts


def decode_result(task: Task, payload: typing.Any) -> typing.Any:
    """Restore a transported result to what :func:`run_task` returns."""
    if task["kind"] == "sweep":
        return SimulationResult.from_dict(payload)
    return payload
