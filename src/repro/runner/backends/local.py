"""The in-host backends: serial reference and the classic process pool.

:class:`LocalPoolBackend` is the historical ``ParallelRunner`` engine
(one ``concurrent.futures.ProcessPoolExecutor``) moved behind the
backend protocol, byte-identical in behaviour: the pool is recycled
per dispatch round (so an isolation round gets its own single-worker
pool), a worker death surfaces as ``BrokenProcessPool`` and converts
*every* in-flight job into a crashed :class:`JobOutcome` in one poll
batch (``isolates_runs=False`` -- the orchestrator triages bystanders),
and a stall kill signals the worker pid directly, deliberately breaking
the pool.

:class:`SerialBackend` runs tasks in the parent process at submit time.
It is the conformance *reference*: every other backend must reproduce
its result bytes.  The runner short-circuits ``serial`` (and a
single-worker local pool) to its historical in-process path, but the
class is a fully working backend in its own right so the conformance
battery can drive all backends through one interface.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import os
import signal
import typing

from repro.runner.backends.base import (
    BackendCapabilities,
    ExecutorBackend,
    JobOutcome,
)
from repro.runner.backends.task import run_task, run_task_indexed


class SerialBackend(ExecutorBackend):
    """Runs every task inline, in submission order (the reference)."""

    name = "serial"

    def __init__(self, workers: int = 1, **_: typing.Any) -> None:
        del workers  # serial by definition
        self._ready: typing.List[JobOutcome] = []

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(inline=True, max_workers=1)

    def submit(
        self, task: typing.Dict[str, typing.Any], isolated: bool = False
    ) -> None:
        del isolated
        try:
            result = run_task(task)
        except Exception as exc:
            self._ready.append(JobOutcome(
                cell=task["cell"],
                error=f"{type(exc).__name__}: {exc}",
                exception=exc,
            ))
        else:
            self._ready.append(JobOutcome(cell=task["cell"], result=result))

    def poll(
        self, timeout: typing.Optional[float]
    ) -> typing.List[JobOutcome]:
        del timeout  # everything completed at submit time
        ready, self._ready = self._ready, []
        return ready

    def shutdown(self) -> None:
        self._ready.clear()


class LocalPoolBackend(ExecutorBackend):
    """Today's process pool behind the protocol (default backend)."""

    name = "local"

    def __init__(self, workers: int = 1, **_: typing.Any) -> None:
        self.workers = max(1, workers)
        self._width = self.workers
        self._pool: typing.Optional[
            concurrent.futures.ProcessPoolExecutor
        ] = None
        self._inflight: typing.Dict[concurrent.futures.Future, int] = {}

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            supports_kill=True, max_workers=self.workers
        )

    def prepare(self, jobs: int) -> None:
        """Recycle the pool per round (the historical pool lifecycle).

        Sizing the fresh pool to the round keeps the old semantics: an
        isolation round of one retried cell gets a single-worker pool,
        so a deterministic crasher can only take itself down.
        """
        self._discard_pool()
        self._width = min(self.workers, max(1, jobs))

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._width
            )
        return self._pool

    def submit(
        self, task: typing.Dict[str, typing.Any], isolated: bool = False
    ) -> None:
        del isolated  # prepare() already sized the round's pool
        future = self._ensure_pool().submit(run_task_indexed, task)
        self._inflight[future] = task["cell"]

    def poll(
        self, timeout: typing.Optional[float]
    ) -> typing.List[JobOutcome]:
        if not self._inflight:
            return []
        ready, _ = concurrent.futures.wait(
            list(self._inflight),
            timeout=timeout,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        outcomes: typing.List[JobOutcome] = []
        breakage: typing.Optional[BaseException] = None
        for future in ready:
            cell = self._inflight.pop(future)
            try:
                _cell, result = future.result()
            except concurrent.futures.process.BrokenProcessPool as exc:
                breakage = exc
                outcomes.append(JobOutcome(
                    cell=cell, crashed=True, error=str(exc)
                ))
            except Exception as exc:
                outcomes.append(JobOutcome(
                    cell=cell,
                    error=f"{type(exc).__name__}: {exc}",
                    exception=exc,
                ))
            else:
                outcomes.append(JobOutcome(cell=cell, result=result))
        if breakage is not None:
            # the shared pool is gone: every remaining in-flight job is
            # a casualty of the same breakage, reported in this batch
            for cell in self._inflight.values():
                outcomes.append(JobOutcome(
                    cell=cell, crashed=True, error=str(breakage)
                ))
            self._inflight.clear()
            self._discard_pool()
        return outcomes

    def kill(self, cell: int, pid: typing.Optional[int]) -> bool:
        del cell
        if pid is not None:
            try:
                os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
                return True
            except OSError:
                pass  # already gone; the pool will notice either way
        # pid unknown (no run.start yet): take the pool down so the
        # batch can triage and continue rather than hang forever
        if self._pool is not None:
            for process in list(
                getattr(self._pool, "_processes", {}).values()
            ):
                process.terminate()
        return True

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._inflight.clear()

    def shutdown(self) -> None:
        self._discard_pool()
