"""Multi-host execution over a shared spool directory.

No server, no sockets: hosts cooperate through three directories on a
filesystem they all mount (NFS or just a local tmpdir for single-host
use)::

    <spool>/pending/   tickets waiting for a worker
    <spool>/claimed/   tickets a worker owns (plus .owner sidecars)
    <spool>/done/      framed result files the submitter collects

A *ticket* is one task dict (see :mod:`.task`) written as JSON.
Claiming is one atomic ``os.rename`` from ``pending/`` to ``claimed/``
-- POSIX guarantees exactly one claimer wins, so no locking protocol is
needed.  The winner records its identity in a ``.owner.json`` sidecar,
keeps the claim file's mtime fresh from a toucher thread (the *lease*),
runs the task, writes the result into ``done/`` (unique temp +
``os.rename``, so readers never see a torn file) and only then releases
the claim.  A ticket is therefore always visible in at least one of the
three directories; the submitter declares a claimed ticket crashed when
its owner process is known dead or its lease mtime went stale.

:class:`SharedDirBackend` is the submitter side: it spools tickets,
optionally spawns ``local_workers`` worker-pool processes of its own
(so the backend works out of the box on one host), and reports
outcomes.  :func:`worker_pool_loop` is the worker side -- ``repro
worker-pool --spool DIR`` runs it so any idle host pointed at the
directory joins the sweep.  Results and telemetry flow back through
the shared filesystem: tickets carry the telemetry path, and the
``O_APPEND`` sink plus content-addressed caches already tolerate many
hosts appending at once.

Stalls cannot be killed across hosts (``supports_kill=False``): the
orchestrator abandons the stalled attempt instead (see
:meth:`SharedDirBackend.cancel`); an abandoned worker's late result
file is ignored and only litters the spool.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys
import tempfile
import threading
import time
import typing
import uuid

from repro.runner.backends.base import (
    BackendCapabilities,
    ExecutorBackend,
    JobOutcome,
    child_environment,
)
from repro.runner.backends.task import decode_result, encode_result, run_task

#: default seconds of mtime silence after which a claim is presumed dead
DEFAULT_LEASE_S = 15.0
#: how often a worker refreshes its claim's mtime (fraction of lease)
TOUCH_FRACTION = 0.25
#: how often an idle worker re-lists ``pending/``
CLAIM_POLL_S = 0.2

_TICKET_SUFFIX = ".task.json"
_OWNER_SUFFIX = ".owner.json"
_RESULT_SUFFIX = ".result.json"


def spool_dirs(
    spool: typing.Union[str, pathlib.Path],
) -> typing.Tuple[pathlib.Path, pathlib.Path, pathlib.Path]:
    """Ensure and return ``(pending, claimed, done)`` under ``spool``."""
    root = pathlib.Path(spool)
    pending = root / "pending"
    claimed = root / "claimed"
    done = root / "done"
    for directory in (pending, claimed, done):
        directory.mkdir(parents=True, exist_ok=True)
    return pending, claimed, done


def _write_json(
    directory: pathlib.Path, name: str, payload: typing.Any
) -> pathlib.Path:
    """Write ``<directory>/<name>`` so readers never see it torn."""
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(directory), prefix=".spool.")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    path = directory / name
    os.rename(tmp, path)
    return path


def _read_json(path: pathlib.Path) -> typing.Optional[typing.Any]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


class SharedDirBackend(ExecutorBackend):
    """The submitter side of the spool protocol."""

    name = "shared-dir"

    def __init__(
        self,
        workers: int = 1,
        spool: typing.Optional[typing.Union[str, pathlib.Path]] = None,
        local_workers: typing.Optional[int] = None,
        lease_s: float = DEFAULT_LEASE_S,
        **_: typing.Any,
    ) -> None:
        if spool is None:
            raise ValueError(
                "the shared-dir backend needs a spool directory "
                "(repro --spool / backend_options={'spool': ...})"
            )
        self.workers = max(1, workers)
        self.spool = pathlib.Path(spool)
        #: worker-pool processes this backend runs itself; 0 relies
        #: entirely on external `repro worker-pool` hosts
        self.local_workers = (
            self.workers if local_workers is None else max(0, local_workers)
        )
        self.lease_s = lease_s
        self.pending, self.claimed, self.done = spool_dirs(self.spool)
        #: ticket name -> task, for every outstanding submission
        self._inflight: typing.Dict[str, typing.Dict[str, typing.Any]] = {}
        self._attempts: typing.Dict[int, int] = {}
        self._nonce = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._procs: typing.List[subprocess.Popen] = []
        #: pids of every local worker that ever died (claims by these
        #: are crashes however many scans later the claim turns up)
        self._dead_pids: typing.Set[int] = set()
        self._env = child_environment()

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            isolates_runs=True,
            distributed=True,
            max_workers=None if self.local_workers == 0 else self.workers,
        )

    # -- local worker fleet -------------------------------------------------

    def _spawn_worker(self) -> None:
        self._procs.append(subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runner.backends.shared_dir",
                str(self.spool),
                "--lease",
                str(self.lease_s),
            ],
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=self._env,
        ))

    def _tend_workers(self) -> typing.Set[int]:
        """Reap dead local workers, respawn capacity; returns dead pids."""
        dead = [proc for proc in self._procs if proc.poll() is not None]
        if dead:
            self._dead_pids.update(proc.pid for proc in dead)
            self._procs = [p for p in self._procs if p.poll() is None]
        while self._inflight and len(self._procs) < self.local_workers:
            self._spawn_worker()
        return self._dead_pids

    # -- the backend interface ----------------------------------------------

    def submit(
        self, task: typing.Dict[str, typing.Any], isolated: bool = False
    ) -> None:
        del isolated  # a run owns its worker process by construction
        cell = int(task["cell"])
        attempt = self._attempts.get(cell, 0) + 1
        self._attempts[cell] = attempt
        name = f"{self._nonce}-c{cell}-a{attempt}{_TICKET_SUFFIX}"
        _write_json(self.pending, name, task)
        self._inflight[name] = task
        self._tend_workers()

    def poll(
        self, timeout: typing.Optional[float]
    ) -> typing.List[JobOutcome]:
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            outcomes = self._scan()
            if outcomes:
                return outcomes
            if not self._inflight:
                return []
            if deadline is not None and time.monotonic() >= deadline:
                return []
            time.sleep(CLAIM_POLL_S / 2)

    def _scan(self) -> typing.List[JobOutcome]:
        dead_pids = self._tend_workers()
        outcomes: typing.List[JobOutcome] = []
        for name, task in list(self._inflight.items()):
            outcome = self._inspect(name, task, dead_pids)
            if outcome is not None:
                del self._inflight[name]
                outcomes.append(outcome)
        return outcomes

    def _inspect(
        self,
        name: str,
        task: typing.Dict[str, typing.Any],
        dead_pids: typing.Set[int],
    ) -> typing.Optional[JobOutcome]:
        cell = int(task["cell"])
        result_path = self.done / f"{name}{_RESULT_SUFFIX}"
        reply = _read_json(result_path)
        if reply is not None:
            try:
                result_path.unlink()
            except OSError:
                pass
            if reply.get("ok"):
                return JobOutcome(
                    cell=cell, result=decode_result(task, reply["result"])
                )
            return JobOutcome(
                cell=cell,
                error=str(reply.get("error", "worker failed")),
                traceback=reply.get("traceback"),
            )
        claim = self.claimed / name
        try:
            claim_age = time.time() - claim.stat().st_mtime
        except OSError:
            return None  # still pending, or mid-transition to done/
        owner = _read_json(self.claimed / f"{name}{_OWNER_SUFFIX}")
        owner_pid = owner.get("pid") if isinstance(owner, dict) else None
        if owner_pid in dead_pids or claim_age > self.lease_s:
            self._release_claim(name)
            return JobOutcome(
                cell=cell,
                crashed=True,
                error=(
                    f"spool worker died (pid {owner_pid})"
                    if owner_pid in dead_pids
                    else f"claim lease expired after {claim_age:.1f}s"
                ),
            )
        return None

    def _release_claim(self, name: str) -> None:
        for path in (
            self.claimed / name,
            self.claimed / f"{name}{_OWNER_SUFFIX}",
        ):
            try:
                path.unlink()
            except OSError:
                pass

    def cancel(self, cell: int) -> bool:
        """Abandon ``cell``'s outstanding attempt (stall on a remote).

        An unclaimed ticket is withdrawn outright.  A claimed one stays
        with its worker -- there is no cross-host kill -- but is dropped
        from tracking, so a late result only litters ``done/``.
        """
        withdrew = False
        for name, task in list(self._inflight.items()):
            if int(task["cell"]) != cell:
                continue
            del self._inflight[name]
            try:
                (self.pending / name).unlink()
                withdrew = True
            except OSError:
                pass  # already claimed; its worker keeps running
        return withdrew

    def shutdown(self) -> None:
        for name in list(self._inflight):
            try:
                (self.pending / name).unlink()
            except OSError:
                pass
        self._inflight.clear()
        for proc in self._procs:
            try:
                proc.kill()
            except OSError:
                pass
        for proc in self._procs:
            try:
                proc.wait(timeout=2.0)
            except (OSError, subprocess.TimeoutExpired):
                pass
        self._procs.clear()


# -- janitoring ---------------------------------------------------------------

#: default seconds after which a done/ result counts as abandoned litter
DEFAULT_DONE_MAX_AGE_S = 3600.0


def janitor_sweep(
    spool: typing.Union[str, pathlib.Path],
    lease_s: float = DEFAULT_LEASE_S,
    done_max_age_s: float = DEFAULT_DONE_MAX_AGE_S,
) -> typing.Dict[str, int]:
    """Remove abandoned spool litter; returns per-category counts.

    A healthy spool cleans itself: workers release claims after writing
    results, submitters consume result frames.  What accumulates is the
    debris of departed processes -- result frames nobody will ever
    collect (the submitter abandoned the attempt or was killed), claims
    whose lease went stale with no submitter left to notice, owner
    sidecars orphaned by a crashed worker, and torn ``.spool.*`` temp
    files.  The sweep removes exactly those four classes and never
    touches ``pending/`` tickets or fresh claims, so running it beside
    a live sweep is safe: live claims stay within their lease and live
    results are consumed faster than ``done_max_age_s``.
    """
    pending, claimed, done = spool_dirs(spool)
    now = time.time()
    counts = {
        "done_removed": 0,
        "claims_removed": 0,
        "owners_removed": 0,
        "temps_removed": 0,
    }

    def age_of(path: pathlib.Path) -> typing.Optional[float]:
        try:
            return now - path.stat().st_mtime
        except OSError:
            return None  # vanished mid-sweep: someone else handled it

    def remove(path: pathlib.Path, category: str) -> None:
        try:
            path.unlink()
        except OSError:
            return
        counts[category] += 1

    for entry in sorted(done.iterdir()):
        if entry.name.endswith(_RESULT_SUFFIX):
            age = age_of(entry)
            if age is not None and age > done_max_age_s:
                remove(entry, "done_removed")
    for entry in sorted(claimed.iterdir()):
        if entry.name.endswith(_OWNER_SUFFIX):
            ticket = claimed / entry.name[: -len(_OWNER_SUFFIX)]
            if not ticket.exists():
                remove(entry, "owners_removed")
            continue
        if entry.name.endswith(_TICKET_SUFFIX):
            age = age_of(entry)
            if age is not None and age > lease_s:
                remove(claimed / f"{entry.name}{_OWNER_SUFFIX}",
                       "owners_removed")
                remove(entry, "claims_removed")
    for directory in (pending, claimed, done):
        for entry in sorted(directory.glob(".spool.*")):
            age = age_of(entry)
            if age is not None and age > max(lease_s, done_max_age_s):
                remove(entry, "temps_removed")
    return counts


# -- the worker side ----------------------------------------------------------


def _claim_one(
    pending: pathlib.Path, claimed: pathlib.Path
) -> typing.Optional[str]:
    """Atomically claim the oldest pending ticket; None when idle."""
    try:
        names = sorted(
            entry.name
            for entry in pending.iterdir()
            if entry.name.endswith(_TICKET_SUFFIX)
        )
    except OSError:
        return None
    for name in names:
        try:
            os.rename(pending / name, claimed / name)
        except OSError:
            continue  # another worker won this ticket; try the next
        # rename keeps the file's mtime, so refresh it: the lease
        # clock starts at claim time, not at ticket-write time
        try:
            os.utime(claimed / name)
        except OSError:
            pass
        return name
    return None


def _process_ticket(
    name: str,
    claimed: pathlib.Path,
    done: pathlib.Path,
    lease_s: float,
) -> None:
    """Run one claimed ticket and publish its result frame."""
    task = _read_json(claimed / name)
    _write_json(
        claimed,
        f"{name}{_OWNER_SUFFIX}",
        {"pid": os.getpid(), "host": socket.gethostname()},
    )
    stop = threading.Event()

    def touch() -> None:
        while not stop.wait(max(0.05, lease_s * TOUCH_FRACTION)):
            try:
                os.utime(claimed / name)
            except OSError:
                return  # claim released under us (submitter gave up)

    toucher = threading.Thread(target=touch, daemon=True)
    toucher.start()
    try:
        if task is None:
            reply: typing.Dict[str, typing.Any] = {
                "ok": False, "error": "unreadable ticket",
            }
        else:
            try:
                reply = {
                    "ok": True,
                    "result": encode_result(task, run_task(task)),
                }
            except Exception as exc:
                import traceback

                reply = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
        # result first, then release: the ticket is never in limbo
        _write_json(done, f"{name}{_RESULT_SUFFIX}", reply)
    finally:
        stop.set()
        for path in (claimed / name, claimed / f"{name}{_OWNER_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass


def worker_pool_loop(
    spool: typing.Union[str, pathlib.Path],
    poll_s: float = CLAIM_POLL_S,
    lease_s: float = DEFAULT_LEASE_S,
    idle_exit_s: typing.Optional[float] = None,
    max_tasks: typing.Optional[int] = None,
    janitor_every_s: typing.Optional[float] = None,
    done_max_age_s: float = DEFAULT_DONE_MAX_AGE_S,
) -> int:
    """Claim and execute tickets until told (or idled) out.

    The body of ``repro worker-pool``: point any host at a spool
    directory and it serves whatever sweeps spool tickets there.
    Returns the number of tickets processed (``idle_exit_s`` and
    ``max_tasks`` bound the loop; both default to running forever).
    ``janitor_every_s`` additionally runs :func:`janitor_sweep` at that
    cadence, so long-lived workers keep their spool free of litter.
    """
    pending, claimed, done = spool_dirs(spool)
    processed = 0
    idle_since = time.monotonic()
    last_sweep = time.monotonic()
    while True:
        if (
            janitor_every_s is not None
            and time.monotonic() - last_sweep >= janitor_every_s
        ):
            janitor_sweep(
                spool, lease_s=lease_s, done_max_age_s=done_max_age_s
            )
            last_sweep = time.monotonic()
        name = _claim_one(pending, claimed)
        if name is None:
            if (
                idle_exit_s is not None
                and time.monotonic() - idle_since >= idle_exit_s
            ):
                return processed
            time.sleep(poll_s)
            continue
        _process_ticket(name, claimed, done, lease_s)
        processed += 1
        idle_since = time.monotonic()
        if max_tasks is not None and processed >= max_tasks:
            return processed


def _main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """``python -m repro.runner.backends.shared_dir <spool> [...]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="serve a shared-dir spool as a worker"
    )
    parser.add_argument("spool", help="spool directory to serve")
    parser.add_argument("--poll", type=float, default=CLAIM_POLL_S)
    parser.add_argument("--lease", type=float, default=DEFAULT_LEASE_S)
    parser.add_argument("--idle-exit", type=float, default=None)
    parser.add_argument("--max-tasks", type=int, default=None)
    args = parser.parse_args(argv)
    worker_pool_loop(
        args.spool,
        poll_s=args.poll,
        lease_s=args.lease,
        idle_exit_s=args.idle_exit,
        max_tasks=args.max_tasks,
    )
    return 0


if __name__ == "__main__":
    sys.exit(_main())
