"""Declarative run specifications with content-addressed cache keys.

A :class:`RunSpec` pins down *everything* a simulation run depends on --
scheduler, workload, machine configuration, seed and window -- as plain
data.  Because the simulator is deterministic given those inputs, the
spec's content hash is a sound cache key: two specs with equal hashes
produce byte-identical :class:`~repro.sim.metrics.SimulationResult`s.

Workloads are described by :class:`WorkloadSpec` (kind + rate + params)
rather than by the factory callables the single-run API takes, so specs
can be pickled to worker processes and hashed for the cache.  The
built-in kinds cover the paper's experiments; :func:`register_workload`
adds new ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

from repro.machine.config import MachineConfig
from repro.txn.workload import (
    Workload,
    experiment1_workload,
    experiment2_workload,
    experiment3_workload,
    mixed_workload,
)

#: bump when run semantics change so stale cache entries never resurface
#: (v2: specs carry the ``trace`` flag, so traced and untraced runs hash
#: to different keys and never collide in the cache; v3: specs carry the
#: ``timeseries`` flag and results the ``p95_exact`` field; v4: results
#: carry the ``restart_wasted_ms`` field)
CACHE_FORMAT_VERSION = 4

WorkloadBuilder = typing.Callable[..., Workload]

_WORKLOAD_BUILDERS: typing.Dict[str, WorkloadBuilder] = {
    "exp1": experiment1_workload,
    "exp2": experiment2_workload,
    "exp3": experiment3_workload,
    "mixed": mixed_workload,
}


def register_workload(kind: str, builder: WorkloadBuilder) -> None:
    """Register ``builder(rate_tps, **params)`` under ``kind``.

    Re-registering a built-in kind is rejected: cache keys embed the
    kind name, so silently changing its meaning would poison the cache.
    """
    if kind in _WORKLOAD_BUILDERS:
        raise ValueError(f"workload kind {kind!r} is already registered")
    _WORKLOAD_BUILDERS[kind] = builder


def workload_kinds() -> typing.Tuple[str, ...]:
    """The registered workload kind names."""
    return tuple(sorted(_WORKLOAD_BUILDERS))


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A workload as data: registry kind, arrival rate and parameters.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so the spec
    is hashable and its JSON form is canonical.
    """

    kind: str
    rate_tps: float
    params: typing.Tuple[typing.Tuple[str, typing.Any], ...] = ()

    @classmethod
    def make(
        cls, kind: str, rate_tps: float, **params: typing.Any
    ) -> "WorkloadSpec":
        if kind not in _WORKLOAD_BUILDERS:
            raise ValueError(
                f"unknown workload kind {kind!r}; "
                f"registered: {workload_kinds()}"
            )
        return cls(kind, float(rate_tps), tuple(sorted(params.items())))

    def at_rate(self, rate_tps: float) -> "WorkloadSpec":
        """The same workload at a different arrival rate."""
        return dataclasses.replace(self, rate_tps=float(rate_tps))

    def build(self) -> Workload:
        """Materialise the workload (in whichever process runs it)."""
        builder = _WORKLOAD_BUILDERS.get(self.kind)
        if builder is None:
            raise ValueError(f"unknown workload kind {self.kind!r}")
        return builder(self.rate_tps, **dict(self.params))

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return {
            "kind": self.kind,
            "rate_tps": self.rate_tps,
            "params": {name: value for name, value in self.params},
        }

    @classmethod
    def from_dict(
        cls, payload: typing.Mapping[str, typing.Any]
    ) -> "WorkloadSpec":
        return cls.make(
            payload["kind"], payload["rate_tps"], **payload.get("params", {})
        )


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Everything one simulation run depends on, as hashable plain data."""

    scheduler: str
    workload: WorkloadSpec
    config: MachineConfig = MachineConfig()
    seed: int = 0
    duration_ms: float = 2_000_000.0
    warmup_ms: float = 0.0
    #: capture a per-run trace artifact (JSONL via MemoryRecorder);
    #: part of the cache key -- tracing never changes results, but the
    #: artifact's existence is itself an output of the run
    trace: bool = False
    #: capture a per-run time-series artifact (sampled trajectories via
    #: :class:`~repro.obs.timeseries.TimeSeriesSampler`); same contract
    #: as ``trace`` -- observation only, but part of the cache key
    timeseries: bool = False

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return {
            "scheduler": self.scheduler,
            "workload": self.workload.to_dict(),
            "config": dataclasses.asdict(self.config),
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "warmup_ms": self.warmup_ms,
            "trace": self.trace,
            "timeseries": self.timeseries,
        }

    @classmethod
    def from_dict(cls, payload: typing.Mapping[str, typing.Any]) -> "RunSpec":
        return cls(
            scheduler=payload["scheduler"],
            workload=WorkloadSpec.from_dict(payload["workload"]),
            config=MachineConfig(**payload["config"]),
            seed=int(payload["seed"]),
            duration_ms=float(payload["duration_ms"]),
            warmup_ms=float(payload["warmup_ms"]),
            trace=bool(payload.get("trace", False)),
            timeseries=bool(payload.get("timeseries", False)),
        )

    def cache_key(self) -> str:
        """Content hash over the canonical JSON form of this spec."""
        payload = {"version": CACHE_FORMAT_VERSION, "spec": self.to_dict()}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        """A one-line human label for progress output."""
        extras = []
        if self.config.dd != 1:
            extras.append(f"dd={self.config.dd}")
        if self.config.mpl is not None:
            extras.append(f"mpl={self.config.mpl}")
        if self.trace:
            extras.append("trace")
        if self.timeseries:
            extras.append("ts")
        suffix = f" [{' '.join(extras)}]" if extras else ""
        return (
            f"{self.scheduler} on {self.workload.kind}"
            f"@{self.workload.rate_tps:g}tps{suffix}"
        )
