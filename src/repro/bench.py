"""Simulator performance benchmarking and regression detection.

``repro bench`` runs a *pinned* scheduler x rate x declustering matrix
(:data:`BENCH_MATRIX`) through the parallel runner's bench path -- no
result cache, self-profiler attached -- and writes one
``BENCH_<ISO-date>.json`` artifact per invocation recording, per cell:

- ``events_per_s``   -- DES events processed per wall second (the
  primary speed metric; model-independent and horizon-independent);
- ``wall_per_sim_s`` -- wall seconds per simulated second;
- the per-phase wall-time breakdown from
  :class:`~repro.obs.profile.PhaseProfiler`.

``repro bench --compare A B`` diffs two artifacts cell-by-cell (keyed
by scheduler/workload/rate/dd/seed/duration) and flags any cell whose
``events_per_s`` dropped by more than the tolerance, or whose peak RSS
(``maxrss_kb``, recorded per row since the telemetry layer grew
:func:`~repro.obs.telemetry.max_rss_kb`) grew beyond the separate
memory tolerance -- the CI bench job runs exactly this against the
committed baseline.
"""

from __future__ import annotations

import json
import math
import pathlib
import platform
import time
import typing

from repro.machine.config import MachineConfig
from repro.runner.spec import RunSpec, WorkloadSpec

PathLike = typing.Union[str, pathlib.Path]

#: bump when the BENCH_*.json payload changes incompatibly.  Stamped
#: into every payload both as the uniform top-level ``schema_version``
#: (the key every artifact family now shares) and as the historical
#: ``bench_schema_version`` alias.
BENCH_SCHEMA_VERSION = 1

#: default regression tolerance: fail when events/s drops > 25%
DEFAULT_TOLERANCE = 0.25

#: default memory-regression tolerance: fail when a cell's peak RSS
#: grows > 30%.  Looser than the speed tolerance because ``maxrss_kb``
#: is a process-lifetime high-water mark: allocator and import-order
#: noise moves it in coarse steps, while a real leak blows well past it.
DEFAULT_MEM_TOLERANCE = 0.30

#: the pinned measurement matrix: (scheduler, rate_tps, dd) cells.
#: Chosen to cover the cost spectrum -- C2PL (predeclared locking),
#: GOW/LOW (WTPG maintenance), OPT (validation), 2PL (deadlock tests),
#: and the modern arena line-up DGCC/CAR/PRED (admission-order grant
#: rule plus batch/queue/prediction bookkeeping) -- at a light and a
#: heavy arrival rate, partitioned and declustered.
BENCH_MATRIX: typing.Tuple[typing.Tuple[str, float, int], ...] = tuple(
    (scheduler, rate, dd)
    for scheduler in ("C2PL", "GOW", "LOW", "OPT", "2PL", "DGCC", "CAR", "PRED")
    for rate in (0.8, 1.2)
    for dd in (1, 4)
)

#: the per-PR subset (``--quick``): one cell per scheduler at the heavy
#: rate -- where each scheduler's hot path dominates -- plus LOW's
#: declustered cell (the WTPG-heaviest configuration).  Every cell is a
#: member of :data:`BENCH_MATRIX`, so quick artifacts compare cleanly
#: against full-matrix baselines.
BENCH_QUICK_MATRIX: typing.Tuple[typing.Tuple[str, float, int], ...] = (
    ("2PL", 1.2, 1),
    ("C2PL", 1.2, 4),
    ("GOW", 1.2, 1),
    ("LOW", 1.2, 1),
    ("LOW", 1.2, 4),
    ("OPT", 1.2, 4),
    ("DGCC", 1.2, 1),
    ("CAR", 1.2, 4),
    ("PRED", 1.2, 1),
)

#: default simulated horizon of one bench cell (ms); CI uses a shorter
#: one via ``--duration``
DEFAULT_DURATION_MS = 200_000.0


def bench_specs(
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    matrix: typing.Sequence[typing.Tuple[str, float, int]] = BENCH_MATRIX,
) -> typing.List[RunSpec]:
    """Materialise the pinned matrix as cache-bypassing run specs."""
    return [
        RunSpec(
            scheduler=scheduler,
            workload=WorkloadSpec.make("exp1", rate),
            config=MachineConfig(dd=dd),
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=0.0,
        )
        for scheduler, rate, dd in matrix
    ]


def host_info() -> typing.Dict[str, typing.Any]:
    """The machine identity attached to every artifact.

    Speed numbers are only comparable on like hardware; ``--compare``
    warns when the two artifacts disagree on any of these fields.
    """
    import os

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def bench_payload(
    rows: typing.Sequence[typing.Mapping[str, typing.Any]],
    git_sha: typing.Optional[str] = None,
    batch: typing.Optional[str] = None,
    backend: typing.Optional[str] = None,
) -> typing.Dict[str, typing.Any]:
    """Assemble the stable-schema BENCH artifact from bench rows.

    ``batch`` links the artifact back to the runner's registry entry
    (set when the bench ran with live telemetry on); ``backend``
    records which executor backend measured the rows -- timings from
    different backends are not comparable (subprocess spawn overhead,
    cross-host hardware), so comparisons should check it matches.
    """
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha,
        "host": host_info(),
        "runs": [dict(row) for row in rows],
    }
    if batch is not None:
        payload["batch"] = batch
    if backend is not None:
        payload["backend"] = backend
    return payload


def default_bench_path(
    out_dir: PathLike, created: typing.Optional[str] = None
) -> pathlib.Path:
    """``<out_dir>/BENCH_<ISO-date>.json`` (date = today by default)."""
    date = (created or time.strftime("%Y-%m-%d"))[:10]
    return pathlib.Path(out_dir) / f"BENCH_{date}.json"


def write_bench_json(
    payload: typing.Mapping[str, typing.Any], path: PathLike
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_bench_json(path: PathLike) -> typing.Dict[str, typing.Any]:
    """Load and schema-check a BENCH artifact."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    validate_bench(payload)
    return payload


def validate_bench(payload: typing.Mapping[str, typing.Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid BENCH artifact.

    The schema stamp is read from the uniform ``schema_version`` key,
    falling back to the historical ``bench_schema_version`` alias for
    artifacts written before the stamp was unified; an unknown version
    under either key is rejected outright.
    """
    if not isinstance(payload, dict):
        raise ValueError("bench artifact must be a JSON object")
    version = payload.get("schema_version", payload.get("bench_schema_version"))
    if version is None:
        raise ValueError(
            "bench artifact carries no schema_version (nor the legacy "
            "bench_schema_version) stamp"
        )
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unknown bench schema_version {version!r}; this build "
            f"supports {BENCH_SCHEMA_VERSION}"
        )
    legacy = payload.get("bench_schema_version")
    if "schema_version" in payload and legacy not in (None, version):
        raise ValueError(
            f"schema_version {version!r} contradicts "
            f"bench_schema_version {legacy!r}"
        )
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("bench artifact needs a non-empty 'runs' list")
    required = (
        "scheduler", "workload", "dd", "seed", "duration_ms",
        "wall_s", "events", "events_per_s", "wall_per_sim_s", "profile",
    )
    for row in runs:
        missing = [field for field in required if field not in row]
        if missing:
            raise ValueError(f"bench run lacks field(s) {missing}: {row!r}")


# -- comparison ---------------------------------------------------------------

RunKey = typing.Tuple[str, str, float, int, int, float]


def _run_key(row: typing.Mapping[str, typing.Any]) -> RunKey:
    workload = row["workload"]
    return (
        row["scheduler"],
        workload["kind"],
        float(workload["rate_tps"]),
        int(row["dd"]),
        int(row["seed"]),
        float(row["duration_ms"]),
    )


#: a comparison fails on cell count alone only when at least this
#: fraction of matched cells regressed -- single-cell wall-clock noise
#: routinely exceeds any usable per-cell tolerance on shared hardware,
#: while a real slowdown hits the aggregate or a whole scheduler's
#: cells (4/32 of the pinned matrix)
REGRESSION_QUORUM = 0.125


def compare_bench(
    baseline: typing.Mapping[str, typing.Any],
    current: typing.Mapping[str, typing.Any],
    tolerance: float = DEFAULT_TOLERANCE,
    mem_tolerance: float = DEFAULT_MEM_TOLERANCE,
) -> typing.Dict[str, typing.Any]:
    """Diff two BENCH artifacts on ``events_per_s`` *and* ``maxrss_kb``,
    cell by cell.

    A cell *regresses* when its current speed falls below
    ``baseline * (1 - tolerance)``; it *memory-regresses* when its peak
    RSS grows above ``baseline * (1 + mem_tolerance)`` (cells lacking
    ``maxrss_kb`` on either side -- pre-PR-9 artifacts, non-POSIX hosts
    -- are skipped for the memory check only).  Cells present in only
    one artifact are reported but never fail the comparison (the matrix
    may grow).

    The overall verdict (``failed``) is noise-hardened and trips when
    any of the following holds:

    - the *aggregate* speed over all matched cells (total events /
      total wall) regressed beyond the tolerance;
    - at least :data:`REGRESSION_QUORUM` of the matched cells regressed
      individually (minimum one);
    - the peak RSS over all memory-matched cells grew beyond the memory
      tolerance, or a quorum of those cells memory-regressed.

    A single noisy cell on an otherwise healthy run reports as a
    regression but does not fail the gate.
    """
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if mem_tolerance <= 0:
        raise ValueError(
            f"mem_tolerance must be > 0, got {mem_tolerance}"
        )
    base_rows = {_run_key(row): row for row in baseline["runs"]}
    curr_rows = {_run_key(row): row for row in current["runs"]}
    cells = []
    regressions = 0
    mem_regressions = 0
    mem_matched = 0
    for key in sorted(set(base_rows) | set(curr_rows)):
        base, curr = base_rows.get(key), curr_rows.get(key)
        cell: typing.Dict[str, typing.Any] = {
            "scheduler": key[0],
            "workload": key[1],
            "rate_tps": key[2],
            "dd": key[3],
            "seed": key[4],
            "duration_ms": key[5],
            "baseline_events_per_s": base and base["events_per_s"],
            "current_events_per_s": curr and curr["events_per_s"],
        }
        if base is None or curr is None:
            cell["status"] = "baseline-only" if curr is None else "new"
        else:
            ratio = curr["events_per_s"] / base["events_per_s"]
            cell["ratio"] = round(ratio, 4)
            if ratio < 1.0 - tolerance:
                cell["status"] = "regression"
                regressions += 1
            else:
                cell["status"] = "ok"
            base_rss = base.get("maxrss_kb")
            curr_rss = curr.get("maxrss_kb")
            if base_rss and curr_rss:
                mem_matched += 1
                mem_ratio = curr_rss / base_rss
                cell["baseline_maxrss_kb"] = base_rss
                cell["current_maxrss_kb"] = curr_rss
                cell["mem_ratio"] = round(mem_ratio, 4)
                if mem_ratio > 1.0 + mem_tolerance:
                    cell["mem_status"] = "regression"
                    mem_regressions += 1
                else:
                    cell["mem_status"] = "ok"
        cells.append(cell)
    host_mismatch = [
        field
        for field in ("platform", "machine", "python", "implementation")
        if baseline.get("host", {}).get(field)
        != current.get("host", {}).get(field)
    ]
    matched = sorted(set(base_rows) & set(curr_rows))
    aggregate: typing.Optional[typing.Dict[str, typing.Any]] = None
    if matched:
        base_wall = sum(base_rows[k]["wall_s"] for k in matched)
        curr_wall = sum(curr_rows[k]["wall_s"] for k in matched)
        if base_wall > 0 and curr_wall > 0:
            base_speed = sum(
                base_rows[k]["events"] for k in matched
            ) / base_wall
            curr_speed = sum(
                curr_rows[k]["events"] for k in matched
            ) / curr_wall
            aggregate = {
                "baseline_events_per_s": round(base_speed, 3),
                "current_events_per_s": round(curr_speed, 3),
                "ratio": round(curr_speed / base_speed, 4),
            }
    mem_aggregate: typing.Optional[typing.Dict[str, typing.Any]] = None
    mem_keys = [
        k for k in matched
        if base_rows[k].get("maxrss_kb") and curr_rows[k].get("maxrss_kb")
    ]
    if mem_keys:
        base_peak = max(base_rows[k]["maxrss_kb"] for k in mem_keys)
        curr_peak = max(curr_rows[k]["maxrss_kb"] for k in mem_keys)
        mem_aggregate = {
            "baseline_peak_kb": base_peak,
            "current_peak_kb": curr_peak,
            "ratio": round(curr_peak / base_peak, 4),
        }
    quorum = max(1, math.ceil(REGRESSION_QUORUM * len(matched)))
    mem_quorum = max(1, math.ceil(REGRESSION_QUORUM * mem_matched))
    fail_reasons = []
    if aggregate is not None and aggregate["ratio"] < 1.0 - tolerance:
        fail_reasons.append(
            f"aggregate speed ratio {aggregate['ratio']:.3f} below "
            f"{1.0 - tolerance:.2f}"
        )
    if regressions >= quorum:
        fail_reasons.append(
            f"{regressions} of {len(matched)} matched cell(s) regressed "
            f"(quorum {quorum})"
        )
    if (
        mem_aggregate is not None
        and mem_aggregate["ratio"] > 1.0 + mem_tolerance
    ):
        fail_reasons.append(
            f"peak RSS ratio {mem_aggregate['ratio']:.3f} above "
            f"{1.0 + mem_tolerance:.2f}"
        )
    if mem_matched and mem_regressions >= mem_quorum:
        fail_reasons.append(
            f"{mem_regressions} of {mem_matched} memory-matched cell(s) "
            f"grew beyond the memory tolerance (quorum {mem_quorum})"
        )
    return {
        "tolerance": tolerance,
        "mem_tolerance": mem_tolerance,
        "cells": cells,
        "regressions": regressions,
        "mem_regressions": mem_regressions,
        "mem_matched": mem_matched,
        "aggregate": aggregate,
        "mem_aggregate": mem_aggregate,
        "quorum": quorum,
        "mem_quorum": mem_quorum,
        "failed": bool(fail_reasons),
        "fail_reasons": fail_reasons,
        "host_mismatch": host_mismatch,
        "baseline_sha": baseline.get("git_sha"),
        "current_sha": current.get("git_sha"),
    }


# -- terminal rendering -------------------------------------------------------


def render_bench_report(payload: typing.Mapping[str, typing.Any]) -> str:
    """One line per bench cell, plus an aggregate phase breakdown."""
    lines = [
        f"bench: {len(payload['runs'])} cell(s), "
        f"git={payload.get('git_sha') or '?'}, "
        f"python={payload.get('host', {}).get('python', '?')}",
        "",
        f"  {'scheduler':<8} {'rate':>5} {'dd':>3} {'wall_s':>8} "
        f"{'events':>9} {'events/s':>10} {'wall/sim_s':>11}",
    ]
    phase_totals: typing.Dict[str, float] = {}
    wall_total = 0.0
    for row in payload["runs"]:
        workload = row["workload"]
        lines.append(
            f"  {row['scheduler']:<8} {workload['rate_tps']:>5g} "
            f"{row['dd']:>3} {row['wall_s']:>8.3f} {row['events']:>9} "
            f"{row['events_per_s']:>10.0f} {row['wall_per_sim_s']:>11.3g}"
        )
        wall_total += row["wall_s"]
        for phase, body in row["profile"]["phases"].items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + (
                body["seconds"]
            )
    lines.append("")
    lines.append(f"  total wall: {wall_total:.2f} s; phase breakdown:")
    covered = sum(phase_totals.values())
    phase_totals["other"] = max(0.0, wall_total - covered)
    for phase in sorted(phase_totals, key=phase_totals.get, reverse=True):
        seconds = phase_totals[phase]
        share = seconds / wall_total * 100.0 if wall_total > 0 else 0.0
        lines.append(f"    {phase:<16} {seconds:>8.3f} s  {share:>5.1f}%")
    return "\n".join(lines)


def render_compare_report(report: typing.Mapping[str, typing.Any]) -> str:
    """Terminal diff of :func:`compare_bench` output."""
    lines = [
        f"bench compare: tolerance {report['tolerance'] * 100:.0f}% "
        f"(memory {report.get('mem_tolerance', 0) * 100:.0f}%), "
        f"baseline git={report.get('baseline_sha') or '?'} -> "
        f"current git={report.get('current_sha') or '?'}",
    ]
    if report["host_mismatch"]:
        lines.append(
            "  WARNING: hosts differ on "
            f"{', '.join(report['host_mismatch'])}; speed deltas may "
            "reflect hardware, not code"
        )
    lines.append("")
    lines.append(
        f"  {'scheduler':<8} {'rate':>5} {'dd':>3} {'base ev/s':>10} "
        f"{'curr ev/s':>10} {'ratio':>7}  status"
    )
    for cell in report["cells"]:
        base = cell["baseline_events_per_s"]
        curr = cell["current_events_per_s"]
        ratio = cell.get("ratio")
        status = cell["status"]
        if cell.get("mem_status") == "regression":
            status += f" +mem x{cell['mem_ratio']:.2f}"
        lines.append(
            f"  {cell['scheduler']:<8} {cell['rate_tps']:>5g} "
            f"{cell['dd']:>3} "
            f"{base if base is not None else '-':>10} "
            f"{curr if curr is not None else '-':>10} "
            f"{f'{ratio:.3f}' if ratio is not None else '-':>7}  "
            f"{status}"
        )
    lines.append("")
    aggregate = report.get("aggregate")
    if aggregate is not None:
        lines.append(
            f"  aggregate: {aggregate['baseline_events_per_s']:.0f} -> "
            f"{aggregate['current_events_per_s']:.0f} events/s "
            f"(ratio {aggregate['ratio']:.3f})"
        )
    mem_aggregate = report.get("mem_aggregate")
    if mem_aggregate is not None:
        lines.append(
            f"  peak RSS: {mem_aggregate['baseline_peak_kb']} -> "
            f"{mem_aggregate['current_peak_kb']} KiB "
            f"(ratio {mem_aggregate['ratio']:.3f}; "
            f"{report.get('mem_matched', 0)} cell(s) matched)"
        )
    if report["failed"]:
        for reason in report["fail_reasons"]:
            lines.append(f"  FAIL: {reason}")
    elif report["regressions"] or report.get("mem_regressions"):
        lines.append(
            f"  OK (noisy): {report['regressions']} speed / "
            f"{report.get('mem_regressions', 0)} memory cell(s) regressed "
            f"but neither an aggregate nor a quorum "
            f"({report['quorum']} speed / {report.get('mem_quorum', 1)} "
            "memory) tripped"
        )
    else:
        lines.append("  OK: no cell regressed beyond tolerance")
    return "\n".join(lines)
