"""repro: reproduction of Ohmori, Kitsuregawa & Tanaka (ICDE 1991),
"Scheduling Batch Transactions on Shared-Nothing Parallel Database
Machines: Effects of Concurrency and Parallelism".

A discrete-event simulation study of concurrency-control schedulers for
bulk-update batch transactions.  Quickstart::

    from repro import MachineConfig, run_simulation, experiment1_workload

    result = run_simulation(
        "LOW", experiment1_workload(arrival_rate_tps=1.0),
        MachineConfig(dd=4), duration_ms=400_000,
    )
    print(result.scheduler, result.throughput_tps, result.mean_response_s)

Packages:

- :mod:`repro.des` -- the discrete-event kernel.
- :mod:`repro.machine` -- the shared-nothing machine model.
- :mod:`repro.txn` -- batch transactions, patterns, workloads.
- :mod:`repro.core` -- the WTPG and the six schedulers (the paper's
  contribution).
- :mod:`repro.schedulers` -- scheduler families beyond the paper's six
  (the modern arena line-up: DGCC, CAR, PRED).
- :mod:`repro.obs` -- always-available tracing (recorders, exporters).
- :mod:`repro.sim` -- simulation runs, metrics, operating-point search.
- :mod:`repro.runner` -- parallel batch execution with result caching.
- :mod:`repro.experiments` -- one function per paper table/figure.
- :mod:`repro.analysis` -- text-table / CSV reporting.
"""

from repro.core import (
    PAPER_SCHEDULERS,
    SerializabilityAuditor,
    WTPG,
    available,
    create,
)
from repro.machine import DataPlacement, MachineConfig, SharedNothingMachine
from repro.obs import (
    MemoryRecorder,
    NullRecorder,
    TraceRecorder,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.runner import ParallelRunner, ResultCache, RunSpec, WorkloadSpec
from repro.sim import (
    Simulation,
    SimulationResult,
    find_throughput_at_response_time,
    run_at_rate,
    run_simulation,
)
from repro.txn import (
    PATTERN_1,
    PATTERN_2,
    BatchTransaction,
    Pattern,
    Workload,
    experiment1_workload,
    experiment2_workload,
    experiment3_workload,
)

# Imported last (it needs repro.core fully initialised): registers the
# modern scheduler families so any `import repro` sees the full roster.
import repro.schedulers.modern  # noqa: E402,F401

__version__ = "1.0.0"

__all__ = [
    "BatchTransaction",
    "DataPlacement",
    "MachineConfig",
    "MemoryRecorder",
    "NullRecorder",
    "PAPER_SCHEDULERS",
    "PATTERN_1",
    "PATTERN_2",
    "ParallelRunner",
    "Pattern",
    "ResultCache",
    "RunSpec",
    "SerializabilityAuditor",
    "SharedNothingMachine",
    "Simulation",
    "SimulationResult",
    "TraceRecorder",
    "WTPG",
    "Workload",
    "WorkloadSpec",
    "__version__",
    "available",
    "create",
    "experiment1_workload",
    "experiment2_workload",
    "experiment3_workload",
    "find_throughput_at_response_time",
    "render_summary",
    "run_at_rate",
    "run_simulation",
    "write_chrome_trace",
    "write_jsonl",
]
