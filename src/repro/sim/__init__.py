"""Simulation orchestration: runs, metrics and operating-point search."""

from repro.sim.experiment import (
    TARGET_RT_MS,
    ThroughputRequest,
    best_mpl_result,
    find_throughput_at_response_time,
    find_throughput_batch,
    run_at_rate,
    run_specs,
    sweep,
)
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.replication import MetricEstimate, ReplicatedResult, estimate, replicate
from repro.sim.simulation import Simulation, run_simulation

__all__ = [
    "MetricEstimate",
    "MetricsCollector",
    "ReplicatedResult",
    "Simulation",
    "SimulationResult",
    "TARGET_RT_MS",
    "ThroughputRequest",
    "best_mpl_result",
    "find_throughput_at_response_time",
    "find_throughput_batch",
    "run_at_rate",
    "run_specs",
    "estimate",
    "replicate",
    "run_simulation",
    "sweep",
]
