"""Multi-seed replication: means and confidence intervals.

The paper reports single 2,000,000-clock runs.  For sounder comparisons
this helper replays a run under several seeds and reports the mean and a
t-based confidence half-width for each metric, so "LOW beats GOW by 8%"
can be separated from simulation noise.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
import typing

from repro.sim.metrics import SimulationResult

#: two-sided 95% Student-t critical values by degrees of freedom
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    15: 2.131, 20: 2.086, 30: 2.042,
}


def _t_critical(dof: int) -> float:
    if dof <= 0:
        return math.nan
    if dof in _T95:
        return _T95[dof]
    for bound in (30, 20, 15, 10):
        if dof >= bound:
            return _T95[bound]
    return _T95[max(k for k in _T95 if k <= dof)]


@dataclasses.dataclass(frozen=True)
class MetricEstimate:
    """Mean and 95% confidence half-width over replications."""

    mean: float
    half_width: float
    samples: typing.Tuple[float, ...]

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "MetricEstimate") -> bool:
        """True when the two 95% intervals overlap (difference not
        resolvable at this replication count)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


@dataclasses.dataclass(frozen=True)
class ReplicatedResult:
    """Aggregated metrics of one scheduler over several seeds."""

    scheduler: str
    seeds: typing.Tuple[int, ...]
    throughput_tps: MetricEstimate
    mean_response_ms: MetricEstimate

    @property
    def mean_response_s(self) -> MetricEstimate:
        return MetricEstimate(
            self.mean_response_ms.mean / 1000.0,
            self.mean_response_ms.half_width / 1000.0,
            tuple(v / 1000.0 for v in self.mean_response_ms.samples),
        )


def estimate(values: typing.Sequence[float]) -> MetricEstimate:
    """Mean and 95% t-interval half-width of ``values``.

    A single sample gets a NaN half-width (no dispersion information);
    NaN samples are excluded first.
    """
    clean = [v for v in values if not math.isnan(v)]
    if not clean:
        return MetricEstimate(math.nan, math.nan, tuple(values))
    mean = statistics.fmean(clean)
    if len(clean) < 2:
        return MetricEstimate(mean, math.nan, tuple(values))
    stdev = statistics.stdev(clean)
    half = _t_critical(len(clean) - 1) * stdev / math.sqrt(len(clean))
    return MetricEstimate(mean, half, tuple(values))


def replicate(
    runner: typing.Callable[[int], SimulationResult],
    seeds: typing.Iterable[int] = range(5),
) -> ReplicatedResult:
    """Run ``runner(seed)`` per seed and aggregate the headline metrics."""
    seed_list = tuple(seeds)
    if not seed_list:
        raise ValueError("need at least one seed")
    results = [runner(seed) for seed in seed_list]
    return ReplicatedResult(
        scheduler=results[0].scheduler,
        seeds=seed_list,
        throughput_tps=estimate([r.throughput_tps for r in results]),
        mean_response_ms=estimate([r.mean_response_ms for r in results]),
    )
