"""Wiring of machine + workload + scheduler into one simulation run.

Implements the paper's execution model (Section 4.1, item 4) per
transaction:

1. arrival at the CN (Poisson);
2. scheduler admission (MPL gate + policy) and ``sot_time`` CPU startup;
3. per step: lock acquisition through the scheduler at the step that
   first needs the file, then the scan (CN message out, DD cohorts served
   round-robin on the DPNs, CN message in);
4. ``cot_time`` CPU commitment, optimistic validation if the policy has
   one, lock release; failed validation aborts and restarts the
   transaction from scratch.

The paper's measurements run 2,000,000 clocks (= ms) with mpl = infinity;
``duration_ms`` and ``warmup_ms`` control the window here.
"""

from __future__ import annotations

import typing

from repro.core.audit import SerializabilityAuditor
from repro.core.base import Scheduler, TransactionAborted
from repro.core.registry import create as create_scheduler
from repro.des import Environment, RandomStreams
from repro.des.monitor import TimeWeighted
from repro.machine.config import MachineConfig
from repro.machine.machine import SharedNothingMachine
from repro.obs.profile import SimProfiler, profiled
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.obs.timeseries import TimeSeriesSampler, gauge, windowed_rate
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.txn.transaction import BatchTransaction
from repro.txn.workload import Workload

SchedulerFactory = typing.Callable[
    [Environment, MachineConfig, typing.Any], Scheduler
]


class Simulation:
    """One complete simulation run."""

    def __init__(
        self,
        config: MachineConfig,
        workload: Workload,
        scheduler: str = "C2PL",
        seed: int = 0,
        duration_ms: float = 2_000_000.0,
        warmup_ms: float = 0.0,
        auditor: typing.Optional[SerializabilityAuditor] = None,
        scheduler_factory: typing.Optional[SchedulerFactory] = None,
        max_arrivals: typing.Optional[int] = None,
        recorder: typing.Optional[TraceRecorder] = None,
        sampler: typing.Optional[TimeSeriesSampler] = None,
        profiler: typing.Optional[SimProfiler] = None,
    ) -> None:
        if duration_ms <= 0:
            raise ValueError(f"duration must be > 0, got {duration_ms}")
        if not 0 <= warmup_ms < duration_ms:
            raise ValueError(
                f"warmup {warmup_ms} must lie inside the run {duration_ms}"
            )
        self.config = config
        self.workload = workload
        self.scheduler_name = scheduler
        self.seed = seed
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        self.auditor = auditor
        self.max_arrivals = max_arrivals

        self.env = Environment()
        #: trace sink; installed on the environment *before* the machine
        #: and scheduler are built so every component caches the real one
        self.trace = recorder if recorder is not None else NULL_RECORDER
        self.env.trace = self.trace
        #: wall-clock self-profiler, same install-before-build contract
        self.profiler = profiler
        if profiler is not None:
            self.env.profile = profiler
        self.sampler = sampler
        self.streams = RandomStreams(seed)
        self.machine = SharedNothingMachine(self.env, config)
        if scheduler_factory is not None:
            self.scheduler: Scheduler = scheduler_factory(
                self.env, config, self.machine.control_node
            )
        else:
            self.scheduler = create_scheduler(
                scheduler, self.env, config, self.machine.control_node
            )
        self.scheduler.bind_machine(self.machine)
        self.metrics = MetricsCollector()
        self.in_flight = TimeWeighted(self.env.now, 0.0, "in-flight")
        self._next_restart_id = 10_000_000  # ids for restarted attempts
        if sampler is not None:
            self._register_probes(sampler)
            self.env.sampler = sampler

    def _register_probes(self, sampler: TimeSeriesSampler) -> None:
        """Wire the machine/scheduler/run-level series catalogue.

        Probes read state only: attaching a sampler never changes what a
        run computes (the determinism tests assert byte-identical
        results for every scheduler).
        """
        sampler.add_probes(self.machine.timeseries_probes())
        sampler.add_probes(self.scheduler.timeseries_probes())
        sampler.add_probes({
            "txn.in_flight": {
                "probe": gauge(lambda: self.in_flight.value),
                "unit": "txn",
            },
            "txn.commits.cum": {
                "probe": gauge(lambda: self.metrics.commits),
                "unit": "txn",
            },
            "txn.restarts.cum": {
                "probe": gauge(lambda: self.metrics.restarts),
                "unit": "txn",
            },
            "txn.commit_rate": {
                # commits per simulated second within each window
                "probe": windowed_rate(
                    lambda _t: float(self.metrics.commits), scale=1_000.0
                ),
                "unit": "tps",
            },
        })

    # -- public API --------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the run and return its steady-state metrics."""
        self.env.process(self._arrivals(), name="arrivals")
        if self.warmup_ms > 0:
            self.env.process(self._warmup_reset(), name="warmup")
        self.env.run(until=self.duration_ms)
        return self._result()

    # -- processes ------------------------------------------------------------------

    def _arrivals(self) -> typing.Generator:
        count = 0
        while self.max_arrivals is None or count < self.max_arrivals:
            delay = self.workload.next_interarrival_ms(self.streams)
            yield self.env.timeout(delay)
            txn = self.workload.make_transaction(self.env.now, self.streams)
            self.in_flight.increment(self.env.now, +1)
            if self.trace.enabled:
                self.trace.emit(
                    self.env.now, "txn.arrive", txn=txn.txn_id, label=txn.label
                )
            self.env.process(self._execute(txn), name=f"txn-{txn.txn_id}")
            count += 1

    def _warmup_reset(self) -> typing.Generator:
        yield self.env.timeout(self.warmup_ms)
        self.metrics.reset(self.env.now)
        self.machine.reset_statistics()
        self.scheduler.stats.reset()

    def _execute(self, txn: BatchTransaction) -> typing.Generator:
        """Drive one transaction to commit, restarting on OPT aborts."""
        scheduler = self.scheduler
        cn = self.machine.control_node
        attempt = txn
        while True:
            attempt_started = self.env.now
            yield from scheduler.admit(attempt)
            yield from self._cn_slice(self.config.sot_time_ms, "startup")

            try:
                while not attempt.finished_all_steps:
                    step = attempt.current_step
                    first_need = attempt.first_step_needing(step.file_id)
                    if first_need == attempt.current_step_index:
                        yield from scheduler.acquire(attempt, step.file_id)
                    if self.auditor is not None:
                        self.auditor.record_access(
                            attempt.txn_id, step.file_id, step.mode, self.env.now
                        )
                    yield from self._run_step(attempt)
                    attempt.advance()
            except TransactionAborted:
                # deadlock victim (plain 2PL): roll back and restart
                yield from scheduler.abort(attempt)
                if self.auditor is not None:
                    self.auditor.record_abort(attempt.txn_id)
                if self.env.now >= self.warmup_ms:
                    self.metrics.record_restart(self.env.now - attempt_started)
                restarted = attempt.restart_copy(self._allocate_restart_id())
                if self.trace.enabled:
                    self.trace.emit(
                        self.env.now, "txn.restart", txn=attempt.txn_id,
                        new_txn=restarted.txn_id, reason="deadlock",
                    )
                attempt = restarted
                continue

            yield from self._cn_slice(self.config.cot_time_ms, "commit")
            if scheduler.validate_at_commit(attempt):
                yield from scheduler.commit(attempt)
                if self.auditor is not None:
                    self.auditor.record_commit(attempt.txn_id, self.env.now)
                if self.env.now >= self.warmup_ms:
                    self.metrics.record_commit(attempt.response_time(), attempt.label)
                self.in_flight.increment(self.env.now, -1)
                return
            yield from scheduler.abort(attempt)
            if self.auditor is not None:
                self.auditor.record_abort(attempt.txn_id)
            if self.env.now >= self.warmup_ms:
                self.metrics.record_restart(self.env.now - attempt_started)
            restarted = attempt.restart_copy(self._allocate_restart_id())
            if self.trace.enabled:
                self.trace.emit(
                    self.env.now, "txn.restart", txn=attempt.txn_id,
                    new_txn=restarted.txn_id, reason="validation",
                )
            attempt = restarted

    def _cn_slice(self, cost_ms: float, category: str) -> typing.Generator:
        """One CN CPU slice, self-profiled as machine.cn when enabled."""
        work = self.machine.control_node.consume(cost_ms, category)
        if self.env.profile.enabled:
            yield from profiled(work, self.env.profile, "machine.cn")
        else:
            yield from work

    def _message(self, work: typing.Generator) -> typing.Generator:
        """A CN message send/receive, profiled as machine.msg."""
        if self.env.profile.enabled:
            yield from profiled(work, self.env.profile, "machine.msg")
        else:
            yield from work

    def _run_step(self, txn: BatchTransaction) -> typing.Generator:
        """The machine-level scan of the current step (Section 4.1)."""
        step = txn.current_step
        if self.trace.enabled:
            self.trace.emit(
                self.env.now, "txn.step_start", txn=txn.txn_id,
                file=step.file_id, step=txn.current_step_index,
                cost=step.cost,
            )
        execution = self.machine.begin_step(
            txn.txn_id, step.file_id, step.cost
        )
        txn.current_execution = execution
        cn = self.machine.control_node
        yield from self._message(cn.send_message())
        done = [
            self.machine.data_nodes[c.node_id].submit(c)
            for c in execution.cohorts
        ]
        yield self.env.all_of(done)
        yield from self._message(cn.receive_message())
        if self.trace.enabled:
            self.trace.emit(
                self.env.now, "txn.step_end", txn=txn.txn_id,
                file=step.file_id, step=txn.current_step_index,
            )

    def _allocate_restart_id(self) -> int:
        self._next_restart_id += 1
        return self._next_restart_id

    # -- results ----------------------------------------------------------------------

    def _result(self) -> SimulationResult:
        tally = self.metrics.response_times
        return SimulationResult(
            scheduler=self.scheduler.name,
            arrival_rate_tps=self.workload.arrival_rate_tps,
            duration_ms=self.duration_ms,
            warmup_ms=self.warmup_ms,
            completed=self.metrics.commits,
            mean_response_ms=tally.mean,
            p95_response_ms=tally.percentile(95),
            max_response_ms=tally.maximum if tally.count else float("nan"),
            throughput_tps=self.metrics.throughput_tps(self.env.now),
            cn_utilisation=self.machine.control_node.utilisation(),
            dpn_utilisation=self.machine.mean_dpn_utilisation(),
            restarts=self.metrics.restarts,
            restart_wasted_ms=self.metrics.restart_wasted_ms,
            admission_rejections=self.scheduler.stats.admission_rejections.total,
            blocks=self.scheduler.stats.blocks.total,
            delays=self.scheduler.stats.delays.total,
            in_flight_at_end=int(self.in_flight.value),
            seed=self.seed,
            p95_exact=tally.is_exact,
            label_metrics=self.metrics.label_summary(),
        )


def run_simulation(
    scheduler: str,
    workload: Workload,
    config: typing.Optional[MachineConfig] = None,
    seed: int = 0,
    duration_ms: float = 2_000_000.0,
    warmup_ms: float = 0.0,
    **kwargs: typing.Any,
) -> SimulationResult:
    """Convenience one-call run (see :class:`Simulation`)."""
    return Simulation(
        config or MachineConfig(),
        workload,
        scheduler=scheduler,
        seed=seed,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
        **kwargs,
    ).run()
