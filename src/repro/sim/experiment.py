"""Operating-point search and parameter sweeps.

The paper reports two kinds of operating points:

- metrics at a *fixed arrival rate* (e.g. response time at 1.2 TPS);
- *throughput at a fixed response time* of 70 s: the arrival rate is
  tuned until the scheduler's mean response time hits the target, and
  the measured throughput there is reported (Tables 2 and 4, Figs. 9
  and 13).  :func:`find_throughput_at_response_time` performs that
  tuning by bisection on the arrival rate, treating an unstable run
  (response time exploding past the target) as "too fast".
"""

from __future__ import annotations

import math
import typing

from repro.machine.config import MachineConfig
from repro.sim.metrics import SimulationResult
from repro.sim.simulation import Simulation
from repro.txn.workload import Workload

WorkloadFactory = typing.Callable[[float], Workload]

#: the paper's operating-point target: mean response time of 70 seconds
TARGET_RT_MS = 70_000.0


def run_at_rate(
    scheduler: str,
    workload_factory: WorkloadFactory,
    rate_tps: float,
    config: typing.Optional[MachineConfig] = None,
    seed: int = 0,
    duration_ms: float = 2_000_000.0,
    warmup_ms: float = 0.0,
    **kwargs: typing.Any,
) -> SimulationResult:
    """One run of ``scheduler`` at a fixed arrival rate."""
    return Simulation(
        config or MachineConfig(),
        workload_factory(rate_tps),
        scheduler=scheduler,
        seed=seed,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
        **kwargs,
    ).run()


def find_throughput_at_response_time(
    scheduler: str,
    workload_factory: WorkloadFactory,
    config: typing.Optional[MachineConfig] = None,
    target_rt_ms: float = TARGET_RT_MS,
    rate_lo: float = 0.02,
    rate_hi: float = 1.5,
    iterations: int = 9,
    seed: int = 0,
    duration_ms: float = 2_000_000.0,
    warmup_ms: float = 0.0,
    **kwargs: typing.Any,
) -> SimulationResult:
    """Bisect the arrival rate until mean RT hits ``target_rt_ms``.

    Returns the result of the final (matched) run; its
    ``throughput_tps`` is the paper's "throughput at RT = 70 s".  Mean
    response time is monotone in the arrival rate, and NaN response
    times (no commits: hopeless overload) count as above target.
    """

    def response_at(rate: float) -> SimulationResult:
        return run_at_rate(
            scheduler,
            workload_factory,
            rate,
            config=config,
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            **kwargs,
        )

    def above_target(result: SimulationResult) -> bool:
        rt = result.mean_response_ms
        return math.isnan(rt) or rt > target_rt_ms

    lo, hi = rate_lo, rate_hi
    best: typing.Optional[SimulationResult] = None

    hi_result = response_at(hi)
    if not above_target(hi_result):
        return hi_result  # even the fastest probed rate meets the target

    lo_result = response_at(lo)
    if above_target(lo_result):
        return lo_result  # target unreachable; report the floor probe

    best = lo_result
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        result = response_at(mid)
        if above_target(result):
            hi = mid
        else:
            lo = mid
            best = result
    return best


def sweep(
    schedulers: typing.Iterable[str],
    runner: typing.Callable[[str], SimulationResult],
) -> typing.Dict[str, SimulationResult]:
    """Run ``runner`` for each scheduler name, keyed by name."""
    return {name: runner(name) for name in schedulers}


def best_mpl_result(
    workload_factory: WorkloadFactory,
    base_config: MachineConfig,
    rate_tps: float,
    mpl_candidates: typing.Sequence[int] = (2, 4, 6, 8, 12, 16),
    scheduler: str = "C2PL",
    **kwargs: typing.Any,
) -> SimulationResult:
    """C2PL+M: the best C2PL over a small MPL sweep (lowest mean RT).

    The paper defines C2PL+M as "the best C2PL to control
    multi-programming level"; runs that complete no transactions are
    skipped.
    """
    best: typing.Optional[SimulationResult] = None
    for mpl in mpl_candidates:
        result = run_at_rate(
            scheduler,
            workload_factory,
            rate_tps,
            config=base_config.replace(mpl=mpl),
            **kwargs,
        )
        if math.isnan(result.mean_response_ms):
            continue
        if best is None or result.mean_response_ms < best.mean_response_ms:
            best = result
    if best is None:
        # degenerate: nothing committed under any MPL; fall back to raw C2PL
        best = run_at_rate(
            scheduler, workload_factory, rate_tps, config=base_config, **kwargs
        )
    best.scheduler = "C2PL+M"
    return best
