"""Operating-point search and parameter sweeps.

The paper reports two kinds of operating points:

- metrics at a *fixed arrival rate* (e.g. response time at 1.2 TPS);
- *throughput at a fixed response time* of 70 s: the arrival rate is
  tuned until the scheduler's mean response time hits the target, and
  the measured throughput there is reported (Tables 2 and 4, Figs. 9
  and 13).  :func:`find_throughput_at_response_time` performs that
  tuning by bisection on the arrival rate, treating an unstable run
  (response time exploding past the target) as "too fast".

Every search here can execute through a
:class:`~repro.runner.ParallelRunner`: pass ``runner`` (and, where a
factory callable is otherwise used, a declarative ``workload_spec``) and
independent probes fan out across worker processes and are memoised in
the runner's disk cache.  :func:`find_throughput_batch` runs many
bisections in lockstep -- each round batches the next probe of every
unfinished search -- which is how the table/figure sweeps parallelise
work that is sequential within a single search.  Results are identical
to the sequential code path because each probe is a pure function of its
spec.
"""

from __future__ import annotations

import dataclasses
import math
import typing
import warnings

from repro.machine.config import MachineConfig
from repro.runner.spec import RunSpec, WorkloadSpec
from repro.sim.metrics import SimulationResult
from repro.sim.simulation import Simulation
from repro.txn.workload import Workload

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.runner.runner import ParallelRunner

WorkloadFactory = typing.Callable[[float], Workload]

#: the paper's operating-point target: mean response time of 70 seconds
TARGET_RT_MS = 70_000.0


def run_at_rate(
    scheduler: str,
    workload_factory: WorkloadFactory,
    rate_tps: float,
    config: typing.Optional[MachineConfig] = None,
    seed: int = 0,
    duration_ms: float = 2_000_000.0,
    warmup_ms: float = 0.0,
    **kwargs: typing.Any,
) -> SimulationResult:
    """One run of ``scheduler`` at a fixed arrival rate."""
    return Simulation(
        config or MachineConfig(),
        workload_factory(rate_tps),
        scheduler=scheduler,
        seed=seed,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
        **kwargs,
    ).run()


def run_specs(
    specs: typing.Sequence[RunSpec],
    runner: typing.Optional["ParallelRunner"] = None,
    label: str = "batch",
) -> typing.List[SimulationResult]:
    """Execute ``specs`` through ``runner``, or inline when no runner.

    The inline path performs the exact same simulations sequentially, so
    callers can be written once against specs and gain parallelism and
    caching only when a runner is supplied.
    """
    if runner is not None:
        return runner.run_batch(specs, label=label)
    # imported here, not at module level: the worker module sits on the
    # runner side of the runner <-> sim package cycle
    from repro.runner.worker import execute_spec

    return [execute_spec(spec) for spec in specs]


def _above_target(result: SimulationResult, target_rt_ms: float) -> bool:
    rt = result.mean_response_ms
    return math.isnan(rt) or rt > target_rt_ms


@dataclasses.dataclass(frozen=True)
class ThroughputRequest:
    """One bisection search, declaratively (see
    :func:`find_throughput_at_response_time` for the semantics)."""

    scheduler: str
    workload: WorkloadSpec
    config: MachineConfig = MachineConfig()
    target_rt_ms: float = TARGET_RT_MS
    rate_lo: float = 0.02
    rate_hi: float = 1.5
    iterations: int = 9
    seed: int = 0
    duration_ms: float = 2_000_000.0
    warmup_ms: float = 0.0

    def spec_at(self, rate_tps: float) -> RunSpec:
        return RunSpec(
            scheduler=self.scheduler,
            workload=self.workload.at_rate(rate_tps),
            config=self.config,
            seed=self.seed,
            duration_ms=self.duration_ms,
            warmup_ms=self.warmup_ms,
        )


class _BisectionState:
    """Drives one search probe-by-probe; mirrors the sequential logic."""

    def __init__(self, request: ThroughputRequest) -> None:
        self.request = request
        self.phase = "hi"  # "hi" -> "lo" -> "bisect" -> "done"
        self.lo = request.rate_lo
        self.hi = request.rate_hi
        self.steps = 0
        self.best: typing.Optional[SimulationResult] = None
        self.result: typing.Optional[SimulationResult] = None
        self._probe_rate = 0.0

    @property
    def done(self) -> bool:
        return self.phase == "done"

    def next_spec(self) -> RunSpec:
        if self.phase == "hi":
            self._probe_rate = self.hi
        elif self.phase == "lo":
            self._probe_rate = self.lo
        else:
            self._probe_rate = (self.lo + self.hi) / 2.0
        return self.request.spec_at(self._probe_rate)

    def feed(self, result: SimulationResult) -> None:
        above = _above_target(result, self.request.target_rt_ms)
        if self.phase == "hi":
            if not above:
                self._finish(result)  # even the fastest rate meets target
            else:
                self.phase = "lo"
        elif self.phase == "lo":
            if above:
                self._finish(result)  # target unreachable: report floor
            else:
                self.best = result
                self.phase = "bisect"
                if self.steps >= self.request.iterations:
                    self._finish(self.best)
        else:
            if above:
                self.hi = self._probe_rate
            else:
                self.lo = self._probe_rate
                self.best = result
            self.steps += 1
            if self.steps >= self.request.iterations:
                self._finish(typing.cast(SimulationResult, self.best))

    def _finish(self, result: SimulationResult) -> None:
        self.result = result
        self.phase = "done"


def find_throughput_batch(
    requests: typing.Sequence[ThroughputRequest],
    runner: typing.Optional["ParallelRunner"] = None,
    label: str = "rt-target",
) -> typing.List[SimulationResult]:
    """Run many rate bisections in lockstep.

    Each round collects the next probe of every unfinished search into
    one batch, so independent searches proceed in parallel even though
    probes within a search are inherently sequential.  Per search, the
    probes (and hence the returned result) are exactly those of
    :func:`find_throughput_at_response_time`.
    """
    states = [_BisectionState(request) for request in requests]
    round_no = 0
    while True:
        active = [state for state in states if not state.done]
        if not active:
            break
        round_no += 1
        specs = [state.next_spec() for state in active]
        results = run_specs(specs, runner, label=f"{label}:round{round_no}")
        for state, result in zip(active, results):
            state.feed(result)
    return [typing.cast(SimulationResult, state.result) for state in states]


def _reject_extra_kwargs(kwargs: typing.Mapping[str, typing.Any]) -> None:
    if kwargs:
        raise ValueError(
            "keyword arguments "
            f"{sorted(kwargs)} cannot be expressed as a RunSpec; "
            "drop the runner/workload_spec to use the direct path"
        )


def find_throughput_at_response_time(
    scheduler: str,
    workload_factory: typing.Optional[WorkloadFactory] = None,
    config: typing.Optional[MachineConfig] = None,
    target_rt_ms: float = TARGET_RT_MS,
    rate_lo: float = 0.02,
    rate_hi: float = 1.5,
    iterations: int = 9,
    seed: int = 0,
    duration_ms: float = 2_000_000.0,
    warmup_ms: float = 0.0,
    runner: typing.Optional["ParallelRunner"] = None,
    workload_spec: typing.Optional[WorkloadSpec] = None,
    **kwargs: typing.Any,
) -> SimulationResult:
    """Bisect the arrival rate until mean RT hits ``target_rt_ms``.

    Returns the result of the final (matched) run; its
    ``throughput_tps`` is the paper's "throughput at RT = 70 s".  Mean
    response time is monotone in the arrival rate, and NaN response
    times (no commits: hopeless overload) count as above target.

    With ``workload_spec`` (instead of, or in addition to, the factory
    callable) the probes run as :class:`RunSpec`s -- through ``runner``
    when one is given, gaining its cache and process pool.
    """
    if workload_spec is not None:
        _reject_extra_kwargs(kwargs)
        request = ThroughputRequest(
            scheduler=scheduler,
            workload=workload_spec,
            config=config or MachineConfig(),
            target_rt_ms=target_rt_ms,
            rate_lo=rate_lo,
            rate_hi=rate_hi,
            iterations=iterations,
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
        )
        return find_throughput_batch(
            [request], runner, label=f"rt-target:{scheduler}"
        )[0]
    if workload_factory is None:
        raise TypeError("need a workload_factory or a workload_spec")

    def response_at(rate: float) -> SimulationResult:
        return run_at_rate(
            scheduler,
            workload_factory,
            rate,
            config=config,
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            **kwargs,
        )

    lo, hi = rate_lo, rate_hi
    best: typing.Optional[SimulationResult] = None

    hi_result = response_at(hi)
    if not _above_target(hi_result, target_rt_ms):
        return hi_result  # even the fastest probed rate meets the target

    lo_result = response_at(lo)
    if _above_target(lo_result, target_rt_ms):
        return lo_result  # target unreachable; report the floor probe

    best = lo_result
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        result = response_at(mid)
        if _above_target(result, target_rt_ms):
            hi = mid
        else:
            lo = mid
            best = result
    return best


def sweep(
    schedulers: typing.Iterable[str],
    runner: typing.Optional[
        typing.Callable[[str], SimulationResult]
    ] = None,
    spec_for: typing.Optional[typing.Callable[[str], RunSpec]] = None,
    parallel: typing.Optional["ParallelRunner"] = None,
    label: str = "sweep",
) -> typing.Dict[str, SimulationResult]:
    """Run one result per scheduler name, keyed by name.

    Two forms:

    - ``sweep(names, runner)`` -- the original callable form, executed
      sequentially in-process;
    - ``sweep(names, spec_for=..., parallel=...)`` -- ``spec_for`` maps
      each name to a :class:`RunSpec` and the whole sweep executes as
      one batch on the parallel runner (``parallel=None`` still works:
      the specs run inline).
    """
    names = list(schedulers)
    if spec_for is not None:
        specs = [spec_for(name) for name in names]
        results = run_specs(specs, parallel, label=label)
        return dict(zip(names, results))
    if runner is None:
        raise TypeError("need a runner callable or a spec_for mapping")
    return {name: runner(name) for name in names}


def best_mpl_result(
    workload_factory: typing.Optional[WorkloadFactory] = None,
    base_config: MachineConfig = MachineConfig(),
    rate_tps: float = 1.2,
    mpl_candidates: typing.Sequence[int] = (2, 4, 6, 8, 12, 16),
    scheduler: str = "C2PL",
    runner: typing.Optional["ParallelRunner"] = None,
    workload_spec: typing.Optional[WorkloadSpec] = None,
    seed: int = 0,
    duration_ms: float = 2_000_000.0,
    warmup_ms: float = 0.0,
    **kwargs: typing.Any,
) -> SimulationResult:
    """C2PL+M: the best C2PL over a small MPL sweep (lowest mean RT).

    The paper defines C2PL+M as "the best C2PL to control
    multi-programming level"; runs that complete no transactions are
    skipped.  If *no* candidate commits anything the raw (uncapped) run
    is returned instead, flagged via ``result.fallback`` and a warning
    -- a NaN-RT candidate silently posing as C2PL+M would otherwise
    corrupt downstream tables.

    With ``workload_spec`` the candidate runs execute as one batch
    (parallel and cached when ``runner`` is given).
    """

    def relabel(result: SimulationResult, **changes: typing.Any):
        # never mutate: callers may hold the same result object
        return dataclasses.replace(result, scheduler="C2PL+M", **changes)

    if workload_spec is not None:
        _reject_extra_kwargs(kwargs)

        def spec_with(config: MachineConfig) -> RunSpec:
            return RunSpec(
                scheduler=scheduler,
                workload=workload_spec.at_rate(rate_tps),
                config=config,
                seed=seed,
                duration_ms=duration_ms,
                warmup_ms=warmup_ms,
            )

        candidates = run_specs(
            [spec_with(base_config.replace(mpl=mpl)) for mpl in mpl_candidates],
            runner,
            label=f"c2pl+m:{rate_tps:g}tps",
        )
    else:
        if workload_factory is None:
            raise TypeError("need a workload_factory or a workload_spec")
        candidates = [
            run_at_rate(
                scheduler,
                workload_factory,
                rate_tps,
                config=base_config.replace(mpl=mpl),
                seed=seed,
                duration_ms=duration_ms,
                warmup_ms=warmup_ms,
                **kwargs,
            )
            for mpl in mpl_candidates
        ]

    best: typing.Optional[SimulationResult] = None
    for result in candidates:
        if math.isnan(result.mean_response_ms):
            continue
        if best is None or result.mean_response_ms < best.mean_response_ms:
            best = result
    if best is not None:
        return relabel(best)

    # degenerate: nothing committed under any MPL; fall back to raw C2PL
    warnings.warn(
        f"C2PL+M sweep over mpl={tuple(mpl_candidates)} at "
        f"{rate_tps:g} TPS committed no transactions; falling back to the "
        "uncapped run (result.fallback=True)",
        RuntimeWarning,
        stacklevel=2,
    )
    if workload_spec is not None:
        fallback = run_specs(
            [spec_with(base_config)], runner, label="c2pl+m:fallback"
        )[0]
    else:
        fallback = run_at_rate(
            scheduler,
            typing.cast(WorkloadFactory, workload_factory),
            rate_tps,
            config=base_config,
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            **kwargs,
        )
    return relabel(fallback, fallback=True)
