"""Result records and metric containers for simulation runs."""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.des.monitor import Tally


@dataclasses.dataclass
class SimulationResult:
    """Steady-state metrics of one simulation run.

    Times are milliseconds (the simulator's clock); ``throughput_tps``
    and ``arrival_rate_tps`` are transactions per second as in the paper.
    """

    scheduler: str
    arrival_rate_tps: float
    duration_ms: float
    warmup_ms: float
    completed: int
    mean_response_ms: float
    p95_response_ms: float
    max_response_ms: float
    throughput_tps: float
    cn_utilisation: float
    dpn_utilisation: float
    restarts: int
    admission_rejections: int
    blocks: int
    delays: int
    in_flight_at_end: int
    seed: int
    #: True while percentiles come from the exact sample set; False once
    #: the response-time tally degraded to reservoir sampling, making
    #: ``p95_response_ms`` an unbiased estimate rather than an exact
    #: order statistic
    p95_exact: bool = True
    #: per-workload-class (label) metrics: label -> (count, mean RT ms)
    label_metrics: typing.Dict[str, typing.Tuple[int, float]] = (
        dataclasses.field(default_factory=dict)
    )
    #: True when this result stands in for a degenerate search (e.g. the
    #: C2PL+M MPL sweep committed nothing and fell back to raw C2PL)
    fallback: bool = False
    #: simulated milliseconds discarded by restarts: each aborted
    #: attempt contributes (abort time - attempt start), i.e. the work
    #: and waiting its successor has to redo from scratch
    restart_wasted_ms: float = 0.0

    @property
    def mean_response_s(self) -> float:
        """Mean response time in seconds (the paper's reporting unit)."""
        return self.mean_response_ms / 1000.0

    def speedup_against(self, baseline: "SimulationResult") -> float:
        """Response-time speedup: RT(baseline) / RT(self).

        The paper's Figs. 10-12 use DD = 1 as the baseline.
        """
        if math.isnan(self.mean_response_ms) or self.mean_response_ms <= 0:
            return math.nan
        return baseline.mean_response_ms / self.mean_response_ms

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """A plain-dict form that survives a JSON round trip."""
        payload = dataclasses.asdict(self)
        payload["label_metrics"] = {
            label: list(pair) for label, pair in self.label_metrics.items()
        }
        return payload

    @classmethod
    def from_dict(
        cls, payload: typing.Mapping[str, typing.Any]
    ) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (tuples restored, fields checked)."""
        data = dict(payload)
        data["label_metrics"] = {
            label: (int(pair[0]), float(pair[1]))
            for label, pair in data.get("label_metrics", {}).items()
        }
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown SimulationResult fields: {sorted(unknown)}")
        return cls(**data)


class MetricsCollector:
    """Accumulates per-transaction observations during a run."""

    def __init__(self) -> None:
        self.response_times = Tally("response_ms").keep_samples()
        self.by_label: typing.Dict[str, Tally] = {}
        self.commits = 0
        self.restarts = 0
        self.restart_wasted_ms = 0.0
        self.window_start = 0.0

    def reset(self, now: float) -> None:
        """Warm-up cutoff: discard the transient."""
        self.response_times.reset()
        self.by_label.clear()
        self.commits = 0
        self.restarts = 0
        self.restart_wasted_ms = 0.0
        self.window_start = now

    def record_commit(self, response_time_ms: float, label: str = "txn") -> None:
        self.commits += 1
        self.response_times.observe(response_time_ms)
        tally = self.by_label.get(label)
        if tally is None:
            tally = self.by_label[label] = Tally(label)
        tally.observe(response_time_ms)

    def label_summary(self) -> typing.Dict[str, typing.Tuple[int, float]]:
        """label -> (commit count, mean response ms)."""
        return {
            label: (tally.count, tally.mean)
            for label, tally in self.by_label.items()
        }

    def record_restart(self, wasted_ms: float = 0.0) -> None:
        self.restarts += 1
        self.restart_wasted_ms += wasted_ms

    def throughput_tps(self, now: float) -> float:
        window = now - self.window_start
        if window <= 0:
            return math.nan
        return self.commits / (window / 1000.0)
