"""Facade assembling the shared-nothing machine of Fig. 1.

One control node plus ``num_nodes`` data-processing nodes and the data
placement.  The facade also implements the paper's execution model of one
step: CN sends the transaction to the file's home node, the step is split
into DD cohorts served round-robin on the DD nodes holding the file's
partitions, the cohorts drain back to the home node and the transaction
returns to the CN.
"""

from __future__ import annotations

import typing

from repro.des import Environment
from repro.machine.config import MachineConfig
from repro.machine.control_node import ControlNode
from repro.machine.data_node import Cohort, DataProcessingNode
from repro.machine.placement import DataPlacement
from repro.obs.timeseries import (
    gauge,
    size_hist,
    utilisation_hist,
    windowed_rate,
)


class StepExecution:
    """Live progress of one step's scan (drives WTPG T0-weight updates)."""

    __slots__ = ("file_id", "declared_cost", "cohorts", "_total_objects")

    def __init__(
        self, file_id: int, declared_cost: float, cohorts: typing.List[Cohort]
    ) -> None:
        self.file_id = file_id
        self.declared_cost = declared_cost
        self.cohorts = cohorts
        # cohort demands are fixed at construction, so the denominator
        # of fraction_done() -- evaluated per WTPG node per scheduler
        # decision -- is summed once (same association as the property)
        self._total_objects = sum(c.objects for c in cohorts)

    @property
    def total_objects(self) -> float:
        return self._total_objects

    @property
    def scanned_objects(self) -> float:
        return sum(c.scanned for c in self.cohorts)

    def fraction_done(self) -> float:
        """Scanned fraction in [0, 1]; zero-cost steps count as done."""
        total = self._total_objects
        if total <= 0:
            return 1.0
        scanned = 0.0
        for cohort in self.cohorts:
            scanned += cohort.scanned
        fraction = scanned / total
        return fraction if fraction < 1.0 else 1.0


class SharedNothingMachine:
    """The machine model: CN + DPNs + placement + step executor."""

    def __init__(
        self,
        env: Environment,
        config: MachineConfig,
        placement: typing.Optional[DataPlacement] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.placement = placement or DataPlacement(config)
        self.control_node = ControlNode(env, config)
        self.data_nodes = [
            DataProcessingNode(env, node_id, config.obj_time_ms)
            for node_id in range(config.num_nodes)
        ]

    def begin_step(
        self, txn_id: int, file_id: int, cost: float
    ) -> StepExecution:
        """Create (but do not submit) the cohorts for one step."""
        nodes = self.placement.nodes_for(file_id)
        dd = len(nodes)
        per_cohort = cost / dd
        quantum = 1.0 / dd
        cohorts = [
            Cohort(
                self.env,
                txn_id=txn_id,
                file_id=file_id,
                node_id=node_id,
                objects=per_cohort,
                quantum_objects=quantum,
            )
            for node_id in nodes
        ]
        return StepExecution(file_id, cost, cohorts)

    def run_step(
        self, txn_id: int, file_id: int, cost: float
    ) -> typing.Generator:
        """Process generator executing one read/write step end to end.

        Returns the :class:`StepExecution` so the caller can inspect
        progress; the generator finishes when all cohorts have scanned
        their partitions and the transaction is back at the CN.
        """
        execution = self.begin_step(txn_id, file_id, cost)
        # CN -> home node: one message send (cohort fan-out at the home
        # node is a DPN control overhead the paper ignores).
        yield from self.control_node.send_message()
        completion_events = [
            self.data_nodes[c.node_id].submit(c) for c in execution.cohorts
        ]
        yield self.env.all_of(completion_events)
        # home node -> CN: one message receive.
        yield from self.control_node.receive_message()
        return execution

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """CN signals plus fleet-level DPN utilisation/queue trajectories."""
        nodes = self.data_nodes
        probes = self.control_node.timeseries_probes()
        if not nodes:
            return probes
        probes["dpn.util.mean"] = {
            "probe": windowed_rate(
                lambda t: sum(node.busy.integral(t) for node in nodes),
                scale=1.0 / len(nodes),
            ),
            "unit": "frac",
            "hist": utilisation_hist(),
        }
        probes["dpn.queue.total"] = {
            "probe": gauge(
                lambda: sum(node.active_cohorts for node in nodes)
            ),
            "unit": "cohorts",
            "hist": size_hist(),
        }
        probes["dpn.backlog.objects"] = {
            "probe": gauge(
                lambda: sum(node.backlog_objects for node in nodes)
            ),
            "unit": "objects",
            "hist": size_hist(),
        }
        return probes

    def mean_dpn_utilisation(self) -> float:
        """Average utilisation across all data-processing nodes."""
        if not self.data_nodes:
            return 0.0
        return sum(n.utilisation() for n in self.data_nodes) / len(
            self.data_nodes
        )

    def reset_statistics(self) -> None:
        """Warm-up cutoff for every component's statistics."""
        self.control_node.reset_statistics()
        for node in self.data_nodes:
            node.reset_statistics()
