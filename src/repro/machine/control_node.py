"""The control node (CN): a single CPU serving all coordination work.

Every cost the paper attributes to the control node -- transaction
startup, two-phase-commit coordination, message send/receive, and all
concurrency-control computation (deadlock tests, E(q), chain optimisation)
-- is a FIFO job on this one CPU.  The CN is therefore a potential
bottleneck exactly as in the paper's model.
"""

from __future__ import annotations

import math
import typing

from repro.des import Environment, Resource, Timeout
from repro.des.monitor import Counter, TimeWeighted
from repro.machine.config import MachineConfig
from repro.obs.timeseries import (
    gauge,
    size_hist,
    utilisation_hist,
    windowed_rate,
)


class ControlNode:
    """4 MIPS coordinator CPU with cost accounting."""

    def __init__(self, env: Environment, config: MachineConfig) -> None:
        self.env = env
        self.config = config
        self._trace = env.trace
        self.cpu = Resource(env, capacity=1, name="cn.cpu")
        self.busy = TimeWeighted(env.now, 0.0, name="cn.busy")
        self.cpu_ms_by_category: typing.Dict[str, float] = {}
        self.messages = Counter("cn.messages")

    def consume(
        self, cost_ms: float, category: str = "other"
    ) -> typing.Generator:
        """Process generator: hold the CN CPU for ``cost_ms`` (scaled).

        Yield from this inside a transaction/scheduler process::

            yield from cn.consume(config.sot_time_ms, "startup")
        """
        if cost_ms < 0 or math.isnan(cost_ms):
            raise ValueError(f"CPU cost must be >= 0, got {cost_ms}")
        if cost_ms == 0:
            return
        scaled = self.config.scaled(cost_ms)
        env = self.env
        busy = self.busy
        trace = self._trace
        cpu = self.cpu
        # explicit request/release (not ``with``): this generator runs
        # once per modelled CPU slice, and the context-manager protocol
        # adds two calls per slice for the same try/finally
        req = cpu.request()
        try:
            yield req
            if busy.value != 1.0:
                busy.update(env.now, 1.0)
            if trace.enabled:
                trace.emit(
                    env.now, "cn.exec_start",
                    category=category, cost_ms=scaled,
                )
            yield Timeout(env, scaled)
            categories = self.cpu_ms_by_category
            categories[category] = categories.get(category, 0.0) + scaled
            if trace.enabled:
                trace.emit(env.now, "cn.exec_end", category=category)
            if not cpu._waiting:
                busy.update(env.now, 0.0)
        finally:
            cpu.release(req)

    def send_message(self) -> typing.Generator:
        """CPU work for sending one message (plus wire delay if any)."""
        yield from self.consume(self.config.msgtime_ms, "message")
        self.messages.increment()
        if self.config.netdelay_ms > 0:
            yield self.env.timeout(self.config.netdelay_ms)

    def receive_message(self) -> typing.Generator:
        """CPU work for receiving one message."""
        yield from self.consume(self.config.msgtime_ms, "message")
        self.messages.increment()

    def utilisation(self, now: typing.Optional[float] = None) -> float:
        """Fraction of time the CN CPU was busy since the last reset."""
        value = self.busy.time_average(self.env.now if now is None else now)
        return 0.0 if math.isnan(value) else value

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Per-window CN utilisation and instantaneous CPU queue depth."""
        return {
            "cn.util": {
                "probe": windowed_rate(self.busy.integral),
                "unit": "frac",
                "hist": utilisation_hist(),
            },
            "cn.queue": {
                "probe": gauge(lambda: self.cpu.queue_length),
                "unit": "jobs",
                "hist": size_hist(),
            },
        }

    def reset_statistics(self) -> None:
        """Restart utilisation averaging and cost accounting (warm-up)."""
        self.busy.reset(self.env.now)
        self.cpu_ms_by_category.clear()
        self.messages.reset()
