"""Machine and simulation parameters (Table 1 of the paper).

All times are in simulated milliseconds (the paper's clock is 1 ms).
Defaults reproduce Table 1 exactly; every experiment varies only
``num_files``, ``dd`` and the arrival rate.
"""

from __future__ import annotations

import dataclasses
import math
import typing


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Parameters of the shared-nothing machine model.

    Attributes mirror Table 1 of the paper:

    - ``num_nodes``     -- NumNodes, number of data-processing nodes.
    - ``num_files``     -- NumFiles, number of file locking granules.
    - ``dd``            -- degree of declustering (partitions per file).
    - ``mpl``           -- multiprogramming level; ``None`` means infinite.
    - ``msgtime_ms``    -- CPU time at the control node per message
      send or receive.
    - ``sot_time_ms``   -- CPU time of transaction startup.
    - ``cot_time_ms``   -- CPU time of commitment (2PC coordination).
    - ``ddtime_ms``     -- CPU time of one deadlock-detection test in C2PL.
    - ``kwtpgtime_ms``  -- CPU time of computing one E(q) in LOW.
    - ``chaintime_ms``  -- CPU time of computing the optimised serializable
      order in GOW.
    - ``toptime_ms``    -- CPU time of GOW's chain-form test.
    - ``obj_time_ms``   -- time to scan one object on a DPN at DD = 1
      (1 s = 2.5 MB at 2.5 MB/s on a 4 MIPS node, per the paper).
    - ``netdelay_ms``   -- network transit delay (0 in the paper).
    - ``cpu_speed_mips``-- control-node CPU speed; the per-operation costs
      above are already expressed at this speed, so it only scales costs
      when changed from the default.
    """

    num_nodes: int = 8
    num_files: int = 16
    dd: int = 1
    mpl: typing.Optional[int] = None
    cpu_speed_mips: float = 4.0
    netdelay_ms: float = 0.0
    msgtime_ms: float = 2.0
    sot_time_ms: float = 2.0
    cot_time_ms: float = 7.0
    ddtime_ms: float = 1.0
    kwtpgtime_ms: float = 10.0
    chaintime_ms: float = 30.0
    toptime_ms: float = 5.0
    obj_time_ms: float = 1000.0

    #: delay before an aborted/delayed request is re-submitted when no
    #: wake-up event (release/commit) arrives first; the paper only says
    #: "after some delay".
    retry_delay_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.num_files < 1:
            raise ValueError(f"num_files must be >= 1, got {self.num_files}")
        if not 1 <= self.dd <= self.num_nodes:
            raise ValueError(
                f"dd must be in [1, num_nodes={self.num_nodes}], got {self.dd}"
            )
        if self.mpl is not None and self.mpl < 1:
            raise ValueError(f"mpl must be >= 1 or None, got {self.mpl}")
        for field in (
            "netdelay_ms",
            "msgtime_ms",
            "sot_time_ms",
            "cot_time_ms",
            "ddtime_ms",
            "kwtpgtime_ms",
            "chaintime_ms",
            "toptime_ms",
            "retry_delay_ms",
        ):
            value = getattr(self, field)
            if value < 0 or math.isnan(value):
                raise ValueError(f"{field} must be >= 0, got {value}")
        if self.obj_time_ms <= 0:
            raise ValueError(f"obj_time_ms must be > 0, got {self.obj_time_ms}")
        if self.cpu_speed_mips <= 0:
            raise ValueError(
                f"cpu_speed_mips must be > 0, got {self.cpu_speed_mips}"
            )

    @property
    def cpu_scale(self) -> float:
        """Cost multiplier when the CN CPU deviates from the 4 MIPS default."""
        return 4.0 / self.cpu_speed_mips

    def scaled(self, cost_ms: float) -> float:
        """A CN CPU cost adjusted for a non-default CPU speed."""
        return cost_ms * self.cpu_scale

    def replace(self, **changes: object) -> "MachineConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
