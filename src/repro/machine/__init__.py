"""Shared-nothing machine substrate (Fig. 1 / Section 4.1 of the paper).

- :class:`MachineConfig` -- Table 1 parameters.
- :class:`DataPlacement` -- home nodes and declustering.
- :class:`ControlNode` -- the coordinator CPU all control work runs on.
- :class:`DataProcessingNode` / :class:`Cohort` -- round-robin scan service.
- :class:`SharedNothingMachine` -- facade wiring it all, with the
  per-step execution model (CN -> home node -> DD cohorts -> CN).
"""

from repro.machine.config import MachineConfig
from repro.machine.control_node import ControlNode
from repro.machine.data_node import Cohort, DataProcessingNode
from repro.machine.machine import SharedNothingMachine, StepExecution
from repro.machine.placement import DataPlacement

__all__ = [
    "Cohort",
    "ControlNode",
    "DataPlacement",
    "DataProcessingNode",
    "MachineConfig",
    "SharedNothingMachine",
    "StepExecution",
]
