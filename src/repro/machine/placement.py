"""Data placement: files, home nodes and declustering.

The paper's rule (Section 4.1): file ``f`` is homed at node
``f mod NumNodes``; when declustered over DD nodes it is split into DD
partitions placed on the DD consecutive nodes starting at the home node
(wrapping around).  A per-file DD override supports placement ablations.
"""

from __future__ import annotations

import typing

from repro.machine.config import MachineConfig


class DataPlacement:
    """Maps files to the nodes holding their partitions."""

    def __init__(
        self,
        config: MachineConfig,
        dd_overrides: typing.Optional[typing.Mapping[int, int]] = None,
        striping: str = "consecutive",
    ) -> None:
        """``striping`` chooses partition spread: ``consecutive`` (the
        paper's rule) or ``strided`` (every ``num_nodes // dd``-th node,
        used by the placement ablation)."""
        if striping not in ("consecutive", "strided"):
            raise ValueError(f"unknown striping strategy {striping!r}")
        self.config = config
        self.striping = striping
        self._dd_overrides = dict(dd_overrides or {})
        for file_id, dd in self._dd_overrides.items():
            self._check_file(file_id)
            if not 1 <= dd <= config.num_nodes:
                raise ValueError(
                    f"override dd={dd} for file {file_id} out of range"
                )

    def _check_file(self, file_id: int) -> None:
        if not 0 <= file_id < self.config.num_files:
            raise ValueError(
                f"file {file_id} out of range [0, {self.config.num_files})"
            )

    def degree_of_declustering(self, file_id: int) -> int:
        """DD for this file (global default unless overridden)."""
        self._check_file(file_id)
        return self._dd_overrides.get(file_id, self.config.dd)

    def home_node(self, file_id: int) -> int:
        """The node that owns the file and coordinates its cohorts."""
        self._check_file(file_id)
        return file_id % self.config.num_nodes

    def nodes_for(self, file_id: int) -> typing.List[int]:
        """The nodes holding this file's partitions, home node first."""
        home = self.home_node(file_id)
        dd = self.degree_of_declustering(file_id)
        n = self.config.num_nodes
        if self.striping == "consecutive":
            return [(home + i) % n for i in range(dd)]
        stride = max(1, n // dd)
        return [(home + i * stride) % n for i in range(dd)]

    def partition_cost(self, file_id: int, step_cost: float) -> float:
        """Per-cohort I/O cost for a step of total cost ``step_cost``.

        The paper expresses pattern costs at DD = 1; at DD = k each of the
        k cohorts scans cost/k objects.
        """
        return step_cost / self.degree_of_declustering(file_id)

    def files_on_node(self, node_id: int) -> typing.List[int]:
        """All files with a partition on ``node_id``."""
        if not 0 <= node_id < self.config.num_nodes:
            raise ValueError(f"node {node_id} out of range")
        return [
            f
            for f in range(self.config.num_files)
            if node_id in self.nodes_for(f)
        ]
