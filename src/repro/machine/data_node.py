"""Data-processing nodes (DPNs) with round-robin cohort service.

Per the paper's execution model: a step of a transaction on a file
declustered over DD nodes is split into DD cohorts; each DPN serves its
resident cohorts in a round-robin manner, the service quantum being the
scan of 1/DD object (so a quantum lasts ``obj_time / DD`` ms).  The only
DPN cost is I/O (``ObjTime`` per object); cohort-initiation control
overhead is ignored, as in the paper.
"""

from __future__ import annotations

import collections
import math
import typing

from repro.des import Environment, Event, Timeout
from repro.des.monitor import TimeWeighted
from repro.obs.profile import profiled

#: tolerance when deciding a cohort has scanned all its objects
_EPSILON = 1e-9


class Cohort:
    """One node's share of a step's scan.

    ``objects`` is the cohort's total I/O demand in objects (step cost /
    DD) and ``quantum_objects`` the round-robin service unit (1/DD object).
    """

    __slots__ = (
        "txn_id",
        "file_id",
        "node_id",
        "objects",
        "scanned",
        "quantum_objects",
        "done",
    )

    def __init__(
        self,
        env: Environment,
        txn_id: int,
        file_id: int,
        node_id: int,
        objects: float,
        quantum_objects: float,
    ) -> None:
        if objects < 0:
            raise ValueError(f"cohort objects must be >= 0, got {objects}")
        if quantum_objects <= 0:
            raise ValueError(
                f"quantum must be > 0 objects, got {quantum_objects}"
            )
        self.txn_id = txn_id
        self.file_id = file_id
        self.node_id = node_id
        self.objects = objects
        self.scanned = 0.0
        self.quantum_objects = quantum_objects
        #: fires when the cohort's whole scan is complete
        self.done: Event = env.event()

    @property
    def remaining(self) -> float:
        """Objects still to scan."""
        return max(0.0, self.objects - self.scanned)

    @property
    def finished(self) -> bool:
        return self.remaining <= _EPSILON

    def __repr__(self) -> str:
        return (
            f"<Cohort txn={self.txn_id} file={self.file_id} "
            f"node={self.node_id} {self.scanned:.3g}/{self.objects:.3g}>"
        )


class DataProcessingNode:
    """A DPN serving cohorts round-robin in quanta of 1/DD object."""

    def __init__(self, env: Environment, node_id: int, obj_time_ms: float) -> None:
        if obj_time_ms <= 0:
            raise ValueError(f"obj_time_ms must be > 0, got {obj_time_ms}")
        self.env = env
        self.node_id = node_id
        self.obj_time_ms = obj_time_ms
        self._trace = env.trace
        self._ring: typing.Deque[Cohort] = collections.deque()
        self._arrival: Event = env.event()
        self.busy = TimeWeighted(env.now, 0.0, name=f"dpn{node_id}.busy")
        self.queue = TimeWeighted(env.now, 0.0, name=f"dpn{node_id}.queue")
        serve = self._serve()
        if env.profile.enabled:
            serve = profiled(serve, env.profile, "machine.scan")
        self._process = env.process(serve, name=f"dpn-{node_id}")

    # -- public interface ----------------------------------------------------

    def submit(self, cohort: Cohort) -> Event:
        """Enqueue ``cohort`` for service; returns its completion event."""
        if cohort.node_id != self.node_id:
            raise ValueError(
                f"cohort for node {cohort.node_id} submitted to {self.node_id}"
            )
        if cohort.finished:
            # zero-cost cohorts complete immediately (cost-0 steps exist in
            # workloads where a declared demand rounds to zero)
            if not cohort.done.triggered:
                cohort.done.succeed(cohort)
            return cohort.done
        self._ring.append(cohort)
        self.queue.update(self.env.now, len(self._ring))
        if self._trace.enabled:
            self._trace.emit(
                self.env.now, "node.queue",
                node=self.node_id, depth=len(self._ring),
            )
        if not self._arrival.triggered:
            self._arrival.succeed()
        return cohort.done

    @property
    def active_cohorts(self) -> int:
        """Cohorts currently in the service rotation."""
        return len(self._ring)

    @property
    def backlog_objects(self) -> float:
        """Total unscanned objects queued at this node right now."""
        return sum(c.remaining for c in self._ring)

    def utilisation(self, now: typing.Optional[float] = None) -> float:
        """Fraction of time the node was scanning since the last reset."""
        value = self.busy.time_average(self.env.now if now is None else now)
        return 0.0 if math.isnan(value) else value

    def reset_statistics(self) -> None:
        """Restart utilisation/queue averaging (warm-up cutoff)."""
        self.busy.reset(self.env.now)
        self.queue.reset(self.env.now)

    # -- service loop ----------------------------------------------------------

    def _serve(self) -> typing.Generator:
        # The quantum loop is the single hottest process in a run (one
        # resume per 1/DD-object service slice), so the body leans on
        # locals and skips monitor updates that would not change the
        # piecewise-constant signals (busy stays 1.0 across back-to-back
        # quanta; the ring length is unchanged when a cohort rotates).
        env = self.env
        ring = self._ring
        busy = self.busy
        queue = self.queue
        trace = self._trace
        obj_time_ms = self.obj_time_ms
        scanning = False  # trace busy/idle only on actual transitions
        while True:
            if not ring:
                self._arrival = env.event()
                busy.update(env.now, 0.0)
                if scanning:
                    scanning = False
                    if trace.enabled:
                        trace.emit(env.now, "node.idle", node=self.node_id)
                yield self._arrival
                continue
            if not scanning:
                scanning = True
                busy.update(env.now, 1.0)
                if trace.enabled:
                    trace.emit(env.now, "node.busy", node=self.node_id)
            cohort = ring.popleft()
            remaining = cohort.objects - cohort.scanned
            quantum = cohort.quantum_objects
            if remaining < quantum:
                quantum = remaining if remaining > 0.0 else 0.0
            yield Timeout(env, quantum * obj_time_ms)
            cohort.scanned += quantum
            if cohort.objects - cohort.scanned <= _EPSILON:
                cohort.scanned = cohort.objects
                done = cohort.done
                if not done._triggered:
                    done.succeed(cohort)
            else:
                ring.append(cohort)
            depth = len(ring)
            if queue._value != depth:
                queue.update(env.now, depth)
            if trace.enabled:
                trace.emit(
                    env.now, "node.queue", node=self.node_id, depth=depth
                )
