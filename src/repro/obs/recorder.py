"""Trace recorders: the protocol, the zero-overhead default and the
in-memory buffer.

The contract every instrumented site follows::

    if self._trace.enabled:
        self._trace.emit(self.env.now, "txn.block", txn=..., file=...)

``enabled`` is a plain class attribute, so the disabled path costs one
attribute load and a boolean test -- no call, no allocation.  Recorders
must never interact with the simulation (no RNG draws, no event-queue
access): a run traced with :class:`MemoryRecorder` is byte-identical to
the same run with :data:`NULL_RECORDER`.
"""

from __future__ import annotations

import typing

from repro.obs.events import TraceEvent


class TraceRecorder:
    """Recording protocol: ``enabled`` flag plus an ``emit`` sink.

    Subclass and override :meth:`emit`; set ``enabled = True`` on
    classes that actually record.  (A runtime-checkable Protocol would
    also work, but a tiny base class keeps isinstance cheap and gives
    the no-op default for free.)
    """

    #: instrumented sites skip ``emit`` entirely when this is False
    enabled: bool = False

    def emit(self, time: float, kind: str, **fields: typing.Any) -> None:
        """Record one event (no-op in the base/disabled recorder)."""


class NullRecorder(TraceRecorder):
    """The always-off recorder; every Environment starts with one."""

    __slots__ = ()


#: shared default instance -- stateless, so one is enough for everyone
NULL_RECORDER = NullRecorder()


class MemoryRecorder(TraceRecorder):
    """Buffers events in order; the exporters consume ``events``.

    ``max_events`` bounds memory on long runs: once the cap is reached
    the recorder *drops* further events (counting them in ``dropped``)
    rather than evicting old ones, so the retained prefix stays a
    faithful, gap-free history.
    """

    enabled = True

    def __init__(self, max_events: typing.Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1 or None, got {max_events}")
        self.max_events = max_events
        self.events: typing.List[TraceEvent] = []
        self.dropped = 0

    def emit(self, time: float, kind: str, **fields: typing.Any) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, kind, fields))

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        """Drop everything recorded so far (e.g. at a warm-up cutoff)."""
        self.events.clear()
        self.dropped = 0

    def kinds(self) -> typing.Dict[str, int]:
        """Event count per kind (diagnostic helper)."""
        counts: typing.Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"<MemoryRecorder events={len(self.events)} "
            f"dropped={self.dropped}>"
        )
