"""Always-available tracing & metrics for simulation runs.

The simulator's end-of-run aggregates (``sim/metrics.py``) say *what*
each scheduler achieved; this package records *why*: every transaction
lifecycle transition, every lock grant/release, every scheduler decision
(WTPG edge fixes, chain-form verdicts, K-conflict admissions, OPT
validation failures) and every machine-resource busy/idle/queue change,
timestamped on the simulation clock.

Design rules:

- **Observation only.**  Recorders never draw random numbers, never
  create events and never touch the event queue, so a traced run is
  byte-identical to an untraced one.
- **Zero overhead when off.**  Every instrumented site guards its
  ``emit`` behind a single ``recorder.enabled`` attribute check; the
  default :data:`NULL_RECORDER` keeps that check False everywhere.

Public surface:

- :class:`TraceEvent` / :mod:`repro.obs.events` -- the typed event kinds.
- :class:`TraceRecorder` / :class:`NullRecorder` /
  :class:`MemoryRecorder` -- the recording protocol and implementations.
- :mod:`repro.obs.export` -- JSONL, Chrome-trace (Perfetto) and text
  summary exporters.
- :mod:`repro.obs.schema` -- the event schema and JSONL validator.
- :mod:`repro.obs.attrib` -- post-hoc causal attribution: span
  timelines with restart lineage, the conservation invariant, batch
  time budgets, blocking graphs, critical paths and anomaly flags
  (the engine behind ``repro explain``).
- :mod:`repro.obs.timeseries` -- DES-clock time-series sampler with
  ring-buffered series, histograms, CSV/JSON export and sparkline
  reports.
- :mod:`repro.obs.profile` -- wall-clock self-profiler attributing
  simulator time to DES-heap, scheduler-decision, lock-manager and
  machine-modelling phases.
- :mod:`repro.obs.telemetry` -- live batch telemetry: worker lifecycle
  JSONL streams, heartbeats, the ``status.json`` aggregator and the
  ``repro watch`` / ``repro tail`` renderers.
- :mod:`repro.obs.history` -- the longitudinal metrics history store:
  append-only schema-versioned JSONL under ``results/history/``
  ingesting BENCH/ARENA/EXPLAIN payloads and telemetry peaks (the
  store behind ``repro history`` and
  :mod:`repro.analysis.trends`).
"""

from repro.obs.attrib import (
    Attribution,
    ConservationError,
    Span,
    TxnTimeline,
    check_conservation,
    fold_trace,
    fold_trace_path,
)
from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    HistorySchemaError,
    HistoryStore,
    artifact_digest,
    detect_family,
    extract_records,
    validate_history_record,
)
from repro.obs.export import (
    render_summary,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    MemoryRecorder,
    NullRecorder,
    TraceRecorder,
)
from repro.obs.profile import (
    NULL_PROFILER,
    PHASES,
    NullProfiler,
    PhaseProfiler,
    SimProfiler,
    profiled,
)
from repro.obs.schema import TRACE_SCHEMA_VERSION, validate_event, validate_jsonl
from repro.obs.telemetry import (
    STATUS_SCHEMA_VERSION,
    TELEMETRY_EVENT_KINDS,
    TELEMETRY_SCHEMA_VERSION,
    BatchStatus,
    TelemetrySchemaError,
    TelemetrySink,
    WorkerTelemetry,
    format_telemetry_record,
    max_rss_kb,
    read_status,
    read_telemetry_records,
    render_status,
    telemetry_event_kinds,
    validate_telemetry_event,
    validate_telemetry_jsonl,
    write_status,
)
from repro.obs.timeseries import (
    SERIES_SCHEMA_VERSION,
    FixedHistogram,
    LogHistogram,
    Series,
    TimeSeriesSampler,
    gauge,
    load_series_json,
    render_series_report,
    sparkline,
    validate_series,
    windowed_rate,
    write_series_csv,
    write_series_json,
)

__all__ = [
    "Attribution",
    "BatchStatus",
    "ConservationError",
    "EVENT_KINDS",
    "FixedHistogram",
    "HISTORY_SCHEMA_VERSION",
    "HistorySchemaError",
    "HistoryStore",
    "LogHistogram",
    "MemoryRecorder",
    "NULL_PROFILER",
    "NULL_RECORDER",
    "NullProfiler",
    "NullRecorder",
    "PHASES",
    "PhaseProfiler",
    "SERIES_SCHEMA_VERSION",
    "STATUS_SCHEMA_VERSION",
    "Series",
    "Span",
    "SimProfiler",
    "TELEMETRY_EVENT_KINDS",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "TelemetrySchemaError",
    "TelemetrySink",
    "TimeSeriesSampler",
    "TraceEvent",
    "TraceRecorder",
    "TxnTimeline",
    "WorkerTelemetry",
    "artifact_digest",
    "check_conservation",
    "detect_family",
    "extract_records",
    "fold_trace",
    "fold_trace_path",
    "format_telemetry_record",
    "gauge",
    "load_series_json",
    "max_rss_kb",
    "profiled",
    "read_status",
    "read_telemetry_records",
    "render_series_report",
    "render_status",
    "render_summary",
    "sparkline",
    "telemetry_event_kinds",
    "to_chrome_trace",
    "validate_event",
    "validate_history_record",
    "validate_jsonl",
    "validate_series",
    "validate_telemetry_event",
    "validate_telemetry_jsonl",
    "windowed_rate",
    "write_chrome_trace",
    "write_jsonl",
    "write_series_csv",
    "write_series_json",
    "write_status",
]
