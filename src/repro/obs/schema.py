"""Trace schema: versioning and validation of exported event streams.

A JSONL trace is valid when:

- its first line is a ``trace.meta`` record whose ``schema`` equals
  :data:`TRACE_SCHEMA_VERSION`;
- every line is a JSON object with a numeric, non-decreasing ``t`` and a
  ``kind`` registered in :data:`~repro.obs.events.EVENT_KINDS`;
- every record carries at least the required fields of its kind.

The validator is what CI's trace smoke job runs; keep it dependency-free.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.obs.events import EVENT_KINDS

#: bump when event kinds/fields change incompatibly; written into every
#: trace.meta record and checked by :func:`validate_jsonl`
TRACE_SCHEMA_VERSION = 1


class TraceSchemaError(ValueError):
    """A record (or stream) violates the trace schema."""


def validate_event(record: typing.Mapping[str, typing.Any]) -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` is well-formed."""
    kind = record.get("kind")
    if not isinstance(kind, str):
        raise TraceSchemaError(f"record has no string 'kind': {record!r}")
    if kind not in EVENT_KINDS:
        raise TraceSchemaError(f"unknown event kind {kind!r}")
    time = record.get("t")
    if not isinstance(time, (int, float)) or isinstance(time, bool):
        raise TraceSchemaError(f"{kind}: 't' must be a number, got {time!r}")
    if time < 0:
        raise TraceSchemaError(f"{kind}: negative timestamp {time}")
    missing = [f for f in EVENT_KINDS[kind] if f not in record]
    if missing:
        raise TraceSchemaError(f"{kind}: missing required fields {missing}")


def validate_jsonl(path: typing.Union[str, pathlib.Path]) -> int:
    """Validate a JSONL trace file; returns the number of event records.

    Checks the meta header, every record's shape, and that timestamps
    never go backwards (the recorder appends in simulation order, so a
    decreasing ``t`` means a corrupted or hand-edited file).
    """
    path = pathlib.Path(path)
    count = 0
    last_time = 0.0
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise TraceSchemaError(
                    f"{path}:{lineno}: expected an object, got {type(record).__name__}"
                )
            try:
                validate_event(record)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from exc
            if count == 0:
                if record["kind"] != "trace.meta":
                    raise TraceSchemaError(
                        f"{path}: first record must be trace.meta, "
                        f"got {record['kind']!r}"
                    )
                if record["schema"] != TRACE_SCHEMA_VERSION:
                    raise TraceSchemaError(
                        f"{path}: schema version {record['schema']!r} != "
                        f"supported {TRACE_SCHEMA_VERSION}"
                    )
            elif record["t"] < last_time:
                raise TraceSchemaError(
                    f"{path}:{lineno}: timestamp went backwards "
                    f"({record['t']} < {last_time})"
                )
            last_time = record["t"]
            count += 1
    if count == 0:
        raise TraceSchemaError(f"{path}: empty trace (no meta record)")
    return count
