"""Wall-clock self-profiling of the simulator itself.

The simulator's trace answers "what did the *modelled* system do";
this module answers "where does the *simulator's own* wall time go",
attributing host CPU to a small set of phases:

``des.heap``
    Event-heap operations (push on :meth:`Environment.schedule`, pop in
    :meth:`Environment.step`).
``sched.decision``
    Scheduler policy evaluation (``_try_admit`` / ``_try_acquire``
    resume segments, chain solving, WTPG maintenance).
``lock.manager``
    Lock-table mutation (grants and commit/abort release sweeps).
``machine.cn``
    Control-node CPU-cost modelling (startup/commit slices).
``machine.msg``
    Message send/receive modelling.
``machine.scan``
    DPN round-robin cohort service.

Attribution is *exclusive*: phases form a stack, and elapsed time always
lands on the innermost open phase, so nested instrumentation (a lock
grant inside a scheduler decision) never double-counts.  Whatever is not
covered by any phase is reported as ``other`` against the run's total.

Like the trace recorders, the disabled path is one class-attribute check
per instrumented site (``if profiler.enabled:``) -- no call, no clock
read -- and the profiler never interacts with the simulation state, so a
profiled run is byte-identical to an unprofiled one.
"""

from __future__ import annotations

import time
import typing

_perf_counter = time.perf_counter

#: canonical reporting order of the instrumented phases
PHASES: typing.Tuple[str, ...] = (
    "des.heap",
    "sched.decision",
    "lock.manager",
    "machine.cn",
    "machine.msg",
    "machine.scan",
)


class SimProfiler:
    """Phase-stack wall-clock profiler (disabled base; see subclass)."""

    #: instrumented sites skip push/pop entirely when this is False
    enabled: bool = False

    def push(self, phase: str) -> None:
        """Open ``phase``; time now accrues to it (no-op when disabled)."""

    def pop(self) -> None:
        """Close the innermost phase (no-op when disabled)."""

    def span(self, phase: str, start: float, end: float) -> None:
        """Attribute the ``[start, end]`` interval to ``phase``.

        Equivalent to a ``push(phase)`` at ``start`` followed by a
        ``pop()`` at ``end``, fused into one call for instrumentation
        sites that bracket a single short operation (the event-heap
        push/pop): the caller reads the clock twice and hands both
        stamps over, avoiding the per-call stack churn.  No-op when
        disabled.
        """


class NullProfiler(SimProfiler):
    """The always-off profiler; every Environment starts with one."""

    __slots__ = ()


#: shared default instance -- stateless, so one is enough for everyone
NULL_PROFILER = NullProfiler()


class PhaseProfiler(SimProfiler):
    """Accumulates exclusive wall time per phase via ``perf_counter``."""

    enabled = True

    def __init__(self) -> None:
        self.seconds: typing.Dict[str, float] = {}
        self.calls: typing.Dict[str, int] = {}
        #: (phase, entered-at) frames; the top frame owns elapsing time
        self._stack: typing.List[typing.Tuple[str, float]] = []

    def push(self, phase: str) -> None:
        now = _perf_counter()
        stack = self._stack
        if stack:
            seconds = self.seconds
            parent, since = stack[-1]
            seconds[parent] = seconds.get(parent, 0.0) + (now - since)
        stack.append((phase, now))
        calls = self.calls
        calls[phase] = calls.get(phase, 0) + 1

    def pop(self) -> None:
        now = _perf_counter()
        stack = self._stack
        phase, since = stack.pop()
        seconds = self.seconds
        seconds[phase] = seconds.get(phase, 0.0) + (now - since)
        if stack:
            parent, _ = stack[-1]
            stack[-1] = (parent, now)

    def span(self, phase: str, start: float, end: float) -> None:
        seconds = self.seconds
        stack = self._stack
        if stack:
            # exclusive attribution: carve the interval out of the
            # enclosing phase exactly as a nested push/pop pair would
            parent, since = stack[-1]
            seconds[parent] = seconds.get(parent, 0.0) + (start - since)
            stack[-1] = (parent, end)
        seconds[phase] = seconds.get(phase, 0.0) + (end - start)
        calls = self.calls
        calls[phase] = calls.get(phase, 0) + 1

    def reset(self) -> None:
        """Drop everything accumulated so far."""
        self.seconds.clear()
        self.calls.clear()
        self._stack.clear()

    def report(
        self, total_s: typing.Optional[float] = None
    ) -> typing.Dict[str, typing.Any]:
        """Per-phase seconds/calls, plus ``other`` when ``total_s`` given.

        ``total_s`` is the whole run's wall time measured by the caller
        (the profiler cannot know it: it only sees instrumented spans).
        """
        phases = {
            phase: {
                "seconds": round(self.seconds.get(phase, 0.0), 6),
                "calls": self.calls.get(phase, 0),
            }
            for phase in sorted(set(PHASES) | set(self.seconds))
        }
        payload: typing.Dict[str, typing.Any] = {"phases": phases}
        if total_s is not None:
            covered = sum(self.seconds.values())
            payload["total_s"] = round(total_s, 6)
            payload["other_s"] = round(max(0.0, total_s - covered), 6)
        return payload

    def __repr__(self) -> str:
        spans = ", ".join(
            f"{phase}={self.seconds[phase]:.3g}s"
            for phase in sorted(self.seconds)
        )
        return f"<PhaseProfiler {spans or 'empty'}>"


def profiled(
    gen: typing.Generator,
    profiler: SimProfiler,
    phase: str,
) -> typing.Generator:
    """Drive ``gen``, attributing each *resume segment* to ``phase``.

    A simulation process spends most of its lifetime suspended on
    events; only the CPU bursts between yields are the simulator's own
    work.  This wrapper times exactly those bursts, relaying sends and
    throws transparently so the wrapped generator behaves identically
    (same yields, same return value, same exceptions).
    """
    send_value: typing.Any = None
    thrown: typing.Optional[BaseException] = None
    push = profiler.push
    pop = profiler.pop
    send = gen.send
    while True:
        push(phase)
        try:
            if thrown is not None:
                exc, thrown = thrown, None
                item = gen.throw(exc)
            else:
                item = send(send_value)
        except StopIteration as stop:
            return stop.value
        finally:
            pop()
        try:
            send_value = yield item
        except GeneratorExit:
            gen.close()
            raise
        except BaseException as exc:
            thrown = exc
