"""Live fleet telemetry for the parallel runner.

PR 2/3 observability is *post-hoc and per-run*: traces, series and bench
artifacts only exist once a run finished.  This module is the *live*
layer: while a batch executes, every worker appends structured lifecycle
records (``run.start`` / ``run.heartbeat`` / ``run.done`` / ``run.error``)
to a shared per-batch ``telemetry.jsonl``, and the parent folds that
stream into an atomically rewritten ``status.json`` snapshot -- per-cell
% of the simulated horizon reached, cells done/failed/pending, EWMA
fleet throughput and an ETA -- which ``repro watch`` renders and the
runner's stall detector watches (no heartbeat for ``stall_timeout``
means a worker is hung, not slow).

Concurrency model: every record is one JSON line written with a single
``write()`` call on an append-mode handle, so POSIX ``O_APPEND``
guarantees lines from different worker processes never interleave.
``status.json`` is rewritten through a unique temp file + ``os.replace``
so a reader can never observe a torn snapshot.

Same contract as tracing and sampling: telemetry only *observes*.  The
heartbeat hook reads the engine clock and event counter; a run with
telemetry on returns byte-identical results to the same run without.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import sys
import tempfile
import time
import traceback as traceback_mod
import typing

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

PathLike = typing.Union[str, pathlib.Path]

#: bump when telemetry record kinds/fields change incompatibly; written
#: into every ``batch.meta`` record and checked by the validator
TELEMETRY_SCHEMA_VERSION = 1

#: bump when the ``status.json`` snapshot layout changes incompatibly
STATUS_SCHEMA_VERSION = 1

#: every kind a telemetry stream may carry, mapped to the field names
#: each record must have besides ``ts`` and ``kind`` (validator-enforced)
TELEMETRY_EVENT_KINDS: typing.Dict[str, typing.Tuple[str, ...]] = {
    # -- batch lifecycle (parent-emitted) ---------------------------------
    "batch.meta": ("schema", "batch", "label", "total"),
    "batch.done": ("status", "wall_s"),
    # -- cell lifecycle (worker-emitted unless noted) ---------------------
    "run.cached": ("cell",),                # parent: served from cache
    "run.coalesced": ("cell",),             # parent: duplicate of a cell
    "run.start": ("cell", "pid", "key", "until_ms"),
    "run.heartbeat": (
        "cell", "pid", "sim_ms", "until_ms", "events", "progress",
    ),
    "run.done": ("cell", "pid", "wall_s"),
    "run.error": ("cell", "error"),         # worker traceback or parent
    "run.stalled": ("cell", "idle_s"),      # parent: heartbeat overdue
    "run.retry": ("cell", "attempt"),       # parent: resubmitted once
}

#: cell states a snapshot reports; terminal ones stop stall-watching
CELL_STATES = (
    "pending", "running", "stalled", "done", "cached", "failed",
)
_TERMINAL_STATES = frozenset(("done", "cached", "failed"))

#: smoothing factor of the fleet-throughput EWMA (per heartbeat)
EWMA_ALPHA = 0.25


def telemetry_event_kinds() -> typing.Tuple[str, ...]:
    """All known telemetry kinds, sorted (documentation helper)."""
    return tuple(sorted(TELEMETRY_EVENT_KINDS))


def max_rss_kb() -> typing.Optional[int]:
    """This process's peak resident set size in KiB (None when the
    platform has no ``getrusage``).

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalised here so
    every worker in a mixed fleet reports the same unit.
    """
    if _resource is None:
        return None
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return int(rss)


class TelemetrySchemaError(ValueError):
    """A telemetry record (or stream) violates the schema."""


def validate_telemetry_event(
    record: typing.Mapping[str, typing.Any],
) -> None:
    """Raise :class:`TelemetrySchemaError` unless ``record`` is valid."""
    kind = record.get("kind")
    if not isinstance(kind, str):
        raise TelemetrySchemaError(
            f"record has no string 'kind': {record!r}"
        )
    if kind not in TELEMETRY_EVENT_KINDS:
        raise TelemetrySchemaError(f"unknown telemetry kind {kind!r}")
    stamp = record.get("ts")
    if not isinstance(stamp, (int, float)) or isinstance(stamp, bool):
        raise TelemetrySchemaError(
            f"{kind}: 'ts' must be a number, got {stamp!r}"
        )
    if stamp < 0:
        raise TelemetrySchemaError(f"{kind}: negative timestamp {stamp}")
    missing = [
        field
        for field in TELEMETRY_EVENT_KINDS[kind]
        if field not in record
    ]
    if missing:
        raise TelemetrySchemaError(
            f"{kind}: missing required fields {missing}"
        )


def validate_telemetry_jsonl(path: PathLike) -> int:
    """Validate a ``telemetry.jsonl`` file; returns the record count.

    Checks that the first record is a ``batch.meta`` carrying the
    supported :data:`TELEMETRY_SCHEMA_VERSION` and that every record is
    a well-formed known kind.  Wall-clock timestamps from concurrent
    workers may interleave by microseconds, so -- unlike the simulated
    clock of trace files -- ``ts`` is *not* required to be monotone.
    """
    path = pathlib.Path(path)
    count = 0
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetrySchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise TelemetrySchemaError(
                    f"{path}:{lineno}: expected an object, "
                    f"got {type(record).__name__}"
                )
            try:
                validate_telemetry_event(record)
            except TelemetrySchemaError as exc:
                raise TelemetrySchemaError(
                    f"{path}:{lineno}: {exc}"
                ) from exc
            if count == 0:
                if record["kind"] != "batch.meta":
                    raise TelemetrySchemaError(
                        f"{path}: first record must be batch.meta, "
                        f"got {record['kind']!r}"
                    )
                if record["schema"] != TELEMETRY_SCHEMA_VERSION:
                    raise TelemetrySchemaError(
                        f"{path}: schema version {record['schema']!r} != "
                        f"supported {TELEMETRY_SCHEMA_VERSION}"
                    )
            count += 1
    if count == 0:
        raise TelemetrySchemaError(f"{path}: empty telemetry stream")
    return count


# -- the multiprocessing-safe writer ------------------------------------------


class TelemetrySink:
    """Appends telemetry records to a JSONL file, one line per record.

    Safe to use from many processes at once: the handle is opened in
    append mode and each record is one ``write()`` of one line, which
    POSIX guarantees lands contiguously for ``O_APPEND`` writes (lines
    stay far below ``PIPE_BUF``).  The handle opens lazily so a sink is
    picklable until first use.
    """

    def __init__(
        self,
        path: PathLike,
        after_emit: typing.Optional[
            typing.Callable[[typing.Dict[str, typing.Any]], None]
        ] = None,
    ) -> None:
        self.path = pathlib.Path(path)
        #: optional same-process hook fired after every record (the
        #: serial runner uses it to refresh status.json mid-run)
        self.after_emit = after_emit
        self._handle: typing.Optional[typing.TextIO] = None

    def emit(self, kind: str, **fields: typing.Any) -> None:
        """Append one record stamped with the current wall clock."""
        record: typing.Dict[str, typing.Any] = {
            "ts": round(time.time(), 6), "kind": kind,
        }
        record.update(fields)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.after_emit is not None:
            self.after_emit(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_telemetry_records(
    path: PathLike, offset: int = 0
) -> typing.Tuple[typing.List[typing.Dict[str, typing.Any]], int]:
    """Read complete records appended since ``offset`` (bytes).

    Returns ``(records, new_offset)``.  A trailing partial line (a
    worker mid-write) is left for the next call; malformed complete
    lines are skipped -- the tailer must stay robust while the strict
    :func:`validate_telemetry_jsonl` is what CI runs on the final file.
    """
    path = pathlib.Path(path)
    try:
        with path.open("rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    records = []
    for line in data[: end + 1].splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, offset + end + 1


# -- worker-side lifecycle emitter --------------------------------------------


class WorkerTelemetry:
    """Emits one cell's lifecycle from inside the worker process.

    Instances are built in the parent and pickled into worker jobs, so
    the sink opens lazily on first emit (in the worker).  Heartbeats
    ride the engine's progress hook: the hook fires every
    ``progress_every`` DES events and a heartbeat is emitted whenever at
    least ``heartbeat_s`` wall seconds elapsed since the previous one,
    carrying the simulated clock, the cumulative event count and the
    fraction of the run horizon reached.

    Every worker-emitted record carries ``host`` so a multi-host fleet
    (the shared-dir backend) stays attributable in one merged stream;
    ``to_dict`` / ``from_dict`` let a context cross non-pickle
    boundaries (subprocess stdin, spool files) -- the path must then
    name a *shared* filesystem location.
    """

    def __init__(
        self,
        path: str,
        cell: int,
        until_ms: float,
        key: str = "",
        label: str = "",
        heartbeat_s: float = 0.5,
        progress_every: int = 4096,
    ) -> None:
        self.path = str(path)
        self.cell = cell
        self.until_ms = float(until_ms)
        self.key = key
        self.label = label
        self.heartbeat_s = heartbeat_s
        self.progress_every = progress_every
        #: optional same-process hook (serial path only; not pickled
        #: into pool jobs, which leave it None)
        self.on_emit: typing.Optional[
            typing.Callable[[typing.Dict[str, typing.Any]], None]
        ] = None
        self._sink: typing.Optional[TelemetrySink] = None
        self._last_beat = 0.0

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """JSON-able form (``on_emit`` does not travel; it stays None)."""
        return {
            "path": self.path,
            "cell": self.cell,
            "until_ms": self.until_ms,
            "key": self.key,
            "label": self.label,
            "heartbeat_s": self.heartbeat_s,
            "progress_every": self.progress_every,
        }

    @classmethod
    def from_dict(
        cls, payload: typing.Mapping[str, typing.Any]
    ) -> "WorkerTelemetry":
        return cls(
            path=payload["path"],
            cell=int(payload["cell"]),
            until_ms=float(payload["until_ms"]),
            key=payload.get("key", ""),
            label=payload.get("label", ""),
            heartbeat_s=float(payload.get("heartbeat_s", 0.5)),
            progress_every=int(payload.get("progress_every", 4096)),
        )

    def _emit(self, kind: str, **fields: typing.Any) -> None:
        if self._sink is None:
            self._sink = TelemetrySink(self.path, after_emit=self.on_emit)
        self._sink.emit(
            kind, cell=self.cell, pid=os.getpid(),
            host=socket.gethostname(), **fields,
        )

    def start(self) -> None:
        """Emit ``run.start``; call before any simulation work."""
        self._last_beat = time.monotonic()
        self._emit(
            "run.start", key=self.key, label=self.label,
            until_ms=self.until_ms,
        )

    def install(self, env: typing.Any) -> None:
        """Attach the heartbeat to an engine's progress hook."""
        env.progress_every = self.progress_every
        env.progress_hook = self._on_progress

    def _on_progress(self, now_ms: float, events: int) -> None:
        wall = time.monotonic()
        if wall - self._last_beat < self.heartbeat_s:
            return
        self._last_beat = wall
        progress = (
            min(1.0, now_ms / self.until_ms) if self.until_ms > 0 else 0.0
        )
        extra: typing.Dict[str, typing.Any] = {}
        rss = max_rss_kb()
        if rss is not None:
            extra["maxrss_kb"] = rss
        self._emit(
            "run.heartbeat", sim_ms=now_ms, until_ms=self.until_ms,
            events=events, progress=round(progress, 6), **extra,
        )

    def done(self, wall_s: float, events: int) -> None:
        extra: typing.Dict[str, typing.Any] = {}
        rss = max_rss_kb()
        if rss is not None:
            extra["maxrss_kb"] = rss
        self._emit(
            "run.done", wall_s=round(wall_s, 6), events=events, **extra,
        )

    def error(self, exc: BaseException) -> None:
        self._emit(
            "run.error",
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_mod.format_exc(),
        )


# -- parent-side aggregation --------------------------------------------------


class BatchStatus:
    """Folds a telemetry stream into the live ``status.json`` snapshot.

    The parent feeds every record (its own and the tailed worker ones)
    through :meth:`consume`; :meth:`snapshot` is the JSON-ready view and
    :meth:`stalled_candidates` is what the runner's stall detector
    polls.  All state derives from the stream, so a crashed parent can
    rebuild the snapshot by replaying ``telemetry.jsonl``.
    """

    def __init__(
        self,
        batch: str,
        label: str,
        cells: typing.Sequence[typing.Mapping[str, typing.Any]],
        kind: str = "sweep",
    ) -> None:
        self.batch = batch
        self.label = label
        self.kind = kind
        self.created_ts = time.time()
        #: terminal batch status once ``batch.done`` was consumed
        self.finished: typing.Optional[str] = None
        self.wall_s: typing.Optional[float] = None
        self.ewma_events_per_s: typing.Optional[float] = None
        self.cells: typing.List[typing.Dict[str, typing.Any]] = [
            {
                "cell": int(info["cell"]),
                "key": info.get("key", ""),
                "label": info.get("label", ""),
                "state": "pending",
                "progress": 0.0,
                "sim_ms": 0.0,
                "until_ms": float(info.get("until_ms", 0.0)),
                "events": 0,
                "pid": None,
                "host": None,
                "attempt": 0,
                "stalled": False,
                "error": None,
                "wall_s": None,
                "last_activity_ts": None,
            }
            for info in cells
        ]
        #: cell -> (ts, events, sim_ms) of the previous heartbeat
        self._last_beat: typing.Dict[
            int, typing.Tuple[float, int, float]
        ] = {}
        #: cell -> (events_per_s, sim_ms_per_s) instantaneous rates
        self._rates: typing.Dict[int, typing.Tuple[float, float]] = {}

    def _cell(
        self, record: typing.Mapping[str, typing.Any]
    ) -> typing.Optional[typing.Dict[str, typing.Any]]:
        index = record.get("cell")
        if isinstance(index, int) and 0 <= index < len(self.cells):
            return self.cells[index]
        return None

    def consume(self, record: typing.Mapping[str, typing.Any]) -> None:
        """Fold one telemetry record into the status."""
        kind = record.get("kind")
        if kind == "batch.done":
            self.finished = record.get("status", "complete")
            self.wall_s = record.get("wall_s")
            return
        if kind == "batch.meta":
            return
        cell = self._cell(record)
        if cell is None:
            return
        index = cell["cell"]
        stamp = float(record.get("ts", time.time()))
        if kind == "run.cached":
            cell["state"] = "cached"
            cell["progress"] = 1.0
        elif kind == "run.coalesced":
            # a duplicate spec filled from another cell's fresh result
            cell["state"] = "done"
            cell["progress"] = 1.0
        elif kind == "run.start":
            cell["state"] = "running"
            cell["pid"] = record.get("pid")
            cell["host"] = record.get("host")
            cell["attempt"] += 1
            cell["stalled"] = False
            cell["last_activity_ts"] = stamp
            self._last_beat[index] = (stamp, 0, 0.0)
            self._rates.pop(index, None)
        elif kind == "run.heartbeat":
            cell["sim_ms"] = record.get("sim_ms", cell["sim_ms"])
            cell["events"] = record.get("events", cell["events"])
            cell["progress"] = record.get("progress", cell["progress"])
            cell["last_activity_ts"] = stamp
            if cell["state"] == "stalled":  # it was merely slow
                cell["state"] = "running"
                cell["stalled"] = False
            previous = self._last_beat.get(index)
            if previous is not None:
                dt = stamp - previous[0]
                if dt > 0:
                    self._rates[index] = (
                        (cell["events"] - previous[1]) / dt,
                        (cell["sim_ms"] - previous[2]) / dt,
                    )
                    aggregate = sum(r[0] for r in self._rates.values())
                    if self.ewma_events_per_s is None:
                        self.ewma_events_per_s = aggregate
                    else:
                        self.ewma_events_per_s = (
                            EWMA_ALPHA * aggregate
                            + (1.0 - EWMA_ALPHA) * self.ewma_events_per_s
                        )
            self._last_beat[index] = (
                stamp, int(cell["events"]), float(cell["sim_ms"]),
            )
        elif kind == "run.done":
            cell["state"] = "done"
            cell["progress"] = 1.0
            cell["wall_s"] = record.get("wall_s")
            if "events" in record:
                cell["events"] = record["events"]
            self._rates.pop(index, None)
        elif kind == "run.error":
            cell["state"] = "failed"
            cell["error"] = record.get("error")
            self._rates.pop(index, None)
        elif kind == "run.stalled":
            cell["state"] = "stalled"
            cell["stalled"] = True
            self._rates.pop(index, None)
        elif kind == "run.retry":
            cell["state"] = "pending"
            cell["pid"] = None
            cell["host"] = None

    def pid_of(self, cell: int) -> typing.Optional[int]:
        return self.cells[cell]["pid"]

    def stalled_candidates(
        self, stall_timeout_s: float, now: typing.Optional[float] = None
    ) -> typing.List[int]:
        """Running cells whose last sign of life is overdue."""
        now = time.time() if now is None else now
        overdue = []
        for cell in self.cells:
            if cell["state"] != "running":
                continue
            last = cell["last_activity_ts"]
            if last is not None and now - last > stall_timeout_s:
                overdue.append(cell["cell"])
        return overdue

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        """The JSON-ready view ``status.json`` and ``repro watch`` use."""
        counts = {state: 0 for state in CELL_STATES}
        for cell in self.cells:
            counts[cell["state"]] += 1
        total = len(self.cells)
        progress = (
            sum(c["progress"] for c in self.cells) / total if total else 1.0
        )
        remaining_ms = sum(
            (1.0 - c["progress"]) * c["until_ms"]
            for c in self.cells
            if c["state"] not in _TERMINAL_STATES
        )
        sim_rate = sum(rate[1] for rate in self._rates.values())
        eta_s = (
            round(remaining_ms / sim_rate, 1) if sim_rate > 0 else None
        )
        return {
            "schema": STATUS_SCHEMA_VERSION,
            "batch": self.batch,
            "label": self.label,
            "kind": self.kind,
            "created_ts": round(self.created_ts, 3),
            "updated_ts": round(time.time(), 3),
            "status": self.finished or "running",
            "wall_s": self.wall_s,
            "total": total,
            "counts": counts,
            "progress": round(progress, 6),
            "ewma_events_per_s": (
                round(self.ewma_events_per_s, 1)
                if self.ewma_events_per_s is not None
                else None
            ),
            "eta_s": eta_s,
            "workers": [
                # host only when a worker reported one, so single-host
                # snapshots stay byte-for-byte what they always were
                dict(
                    {"pid": c["pid"], "cell": c["cell"]},
                    **({"host": c["host"]} if c["host"] else {}),
                )
                for c in self.cells
                if c["state"] in ("running", "stalled")
                and c["pid"] is not None
            ],
            "cells": [dict(c) for c in self.cells],
        }

    def write(self, path: PathLike) -> pathlib.Path:
        """Atomically rewrite the snapshot (unique temp + replace)."""
        return write_status(self.snapshot(), path)


def write_status(
    snapshot: typing.Mapping[str, typing.Any], path: PathLike
) -> pathlib.Path:
    """Write a snapshot so readers never observe a torn file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=".status.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(snapshot, indent=1, sort_keys=True))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    return path


def read_status(path: PathLike) -> typing.Dict[str, typing.Any]:
    """Load a ``status.json`` snapshot, checking its schema version."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: status must be a JSON object")
    if payload.get("schema") != STATUS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: status schema {payload.get('schema')!r} != "
            f"supported {STATUS_SCHEMA_VERSION}"
        )
    return payload


# -- terminal rendering -------------------------------------------------------


def _bar(progress: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, progress)) * width))
    return "#" * filled + "-" * (width - filled)


def _human_rate(events_per_s: typing.Optional[float]) -> str:
    if events_per_s is None:
        return "-"
    if events_per_s >= 1e6:
        return f"{events_per_s / 1e6:.1f}M ev/s"
    if events_per_s >= 1e3:
        return f"{events_per_s / 1e3:.1f}k ev/s"
    return f"{events_per_s:.0f} ev/s"


def render_status(
    status: typing.Mapping[str, typing.Any], width: int = 28
) -> str:
    """The ``repro watch`` frame: one progress bar per cell."""
    counts = status.get("counts", {})
    finished = (
        counts.get("done", 0) + counts.get("cached", 0)
    )
    header = (
        f"batch {status.get('batch', '?')} ({status.get('label', '?')})  "
        f"[{status.get('status', '?')}]  "
        f"{finished}/{status.get('total', 0)} finished"
    )
    for state in ("failed", "stalled", "running", "pending"):
        if counts.get(state):
            header += f", {counts[state]} {state}"
    eta = status.get("eta_s")
    line2 = (
        f"  all [{_bar(status.get('progress', 0.0), width)}] "
        f"{status.get('progress', 0.0) * 100:5.1f}%  "
        f"{_human_rate(status.get('ewma_events_per_s'))}"
        + (f"  ETA {eta:.0f}s" if eta is not None else "")
    )
    lines = [header, line2, ""]
    now = time.time()
    for cell in status.get("cells", []):
        state = cell.get("state", "?")
        suffix = state
        if state == "running" and cell.get("pid"):
            suffix += f" pid={cell['pid']}"
            host = cell.get("host")
            if host and host != socket.gethostname():
                suffix += f"@{host}"
        if state in ("running", "stalled") and cell.get("stalled"):
            last = cell.get("last_activity_ts")
            idle = f" {now - last:.0f}s" if last else ""
            suffix += f"  STALLED{idle}"
        if state == "done" and cell.get("wall_s") is not None:
            suffix += f" ({cell['wall_s']:.1f}s)"
        if state == "failed" and cell.get("error"):
            suffix += f": {str(cell['error'])[:60]}"
        if cell.get("attempt", 0) > 1:
            suffix += f"  attempt {cell['attempt']}"
        lines.append(
            f"  {cell.get('cell', '?'):>3} "
            f"[{_bar(cell.get('progress', 0.0), width)}] "
            f"{cell.get('progress', 0.0) * 100:5.1f}%  "
            f"{cell.get('label', '')}  {suffix}"
        )
    return "\n".join(lines)


def format_telemetry_record(
    record: typing.Mapping[str, typing.Any],
) -> str:
    """One human line per record, for ``repro tail``."""
    stamp = record.get("ts")
    clock = (
        time.strftime("%H:%M:%S", time.localtime(stamp))
        if isinstance(stamp, (int, float))
        else "??:??:??"
    )
    kind = record.get("kind", "?")
    if kind == "batch.meta":
        body = (
            f"batch {record.get('batch')} ({record.get('label')}) "
            f"{record.get('total')} cell(s)"
        )
    elif kind == "batch.done":
        body = (
            f"batch {record.get('status')} "
            f"in {record.get('wall_s', 0):.1f}s"
        )
    elif kind == "run.heartbeat":
        body = (
            f"cell {record.get('cell')} "
            f"{record.get('progress', 0) * 100:5.1f}% "
            f"sim={record.get('sim_ms', 0):.0f}ms "
            f"events={record.get('events', 0)}"
        )
    elif kind == "run.error":
        body = f"cell {record.get('cell')} ERROR {record.get('error')}"
    elif kind == "run.stalled":
        body = (
            f"cell {record.get('cell')} STALLED "
            f"(idle {record.get('idle_s')}s)"
        )
    else:
        extras = " ".join(
            f"{key}={record[key]}"
            for key in ("pid", "label", "wall_s", "attempt")
            if key in record
        )
        body = f"cell {record.get('cell')} {extras}".rstrip()
    return f"{clock} {kind:<14} {body}"
