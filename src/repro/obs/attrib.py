"""Causal time attribution: fold a trace stream into span timelines.

This is the post-hoc analytics layer behind ``repro explain``.  It
consumes the flat JSONL records (or :class:`~repro.obs.events.TraceEvent`
streams) the PR 2 recorder writes and answers *where the time went*:

- **Per-transaction timelines.**  Every logical transaction becomes a
  chain of attempts linked by ``txn.restart`` lineage; each attempt is
  tiled into contiguous spans -- ``admission`` (arrival/restart to
  ``txn.admit``), ``lock_wait`` (one span per traced wait, ``lock_wait``
  to ``lock_acquired``) and ``executing`` (everything in between,
  including policy CPU and the per-step scans kept as detail).
- **Conservation invariant.**  Spans tile the attempt exactly: each
  span starts where the previous one ended, the first starts at the
  (original) arrival and the last ends at commit.  For a committed
  chain the span durations therefore sum to the ``response_ms`` the
  scheduler reported in ``txn.commit`` -- folding *asserts* this and
  raises :class:`ConservationError` on any gap, overlap or mismatch.
- **Batch time budget.**  Transaction-seconds split into queued
  (admission waits), blocked (lock waits), executing, and wasted
  (every span of an attempt that aborted and restarted).
- **Blocking graph, critical path, hotspots, anomaly flags.**
  ``txn.block`` verdicts carry the holders at each re-evaluation, which
  yields a weighted wait-for graph, a backward walk from the last
  commit through its blockers (the makespan critical path), a per-file
  hotspot table (blocked time, convoy depth), and deterministic
  starvation/convoy flags.

Everything here is read-only over recorded streams: nothing imports the
simulator, so the traced-run byte-identity contract is untouched.
"""

from __future__ import annotations

import dataclasses
import math
import pathlib
import typing

from repro.obs.events import TraceEvent
from repro.obs.export import read_jsonl

PathLike = typing.Union[str, pathlib.Path]
Record = typing.Mapping[str, typing.Any]

#: tolerance for the conservation assertion: spans tile the timeline by
#: construction, so the only slack allowed is float summation round-off
CONSERVATION_REL_TOL = 1e-9
CONSERVATION_ABS_TOL = 1e-6  # ms

#: starvation flag: committed transaction whose response is at least
#: this multiple of the batch median *and* mostly spent waiting
STARVATION_FACTOR = 5.0
STARVATION_WAIT_SHARE = 0.75

#: convoy flag: a file whose wait queue reached this depth and that
#: accounts for at least this share of all blocked time
CONVOY_MIN_DEPTH = 3
CONVOY_BLOCKED_SHARE = 0.25

#: span kinds, in budget-bucket order
SPAN_KINDS = ("admission", "lock_wait", "executing")


class ConservationError(ValueError):
    """Span folding failed to tile a transaction's response time."""


@dataclasses.dataclass
class Span:
    """One contiguous slice of an attempt's lifetime."""

    kind: str  # one of SPAN_KINDS
    start: float
    end: float
    file: typing.Optional[int] = None  # lock_wait spans only
    flavor: typing.Optional[str] = None  # lock_wait: "block" / "delay"

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        record: typing.Dict[str, typing.Any] = {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
        }
        if self.file is not None:
            record["file"] = self.file
        if self.flavor is not None:
            record["flavor"] = self.flavor
        return record


@dataclasses.dataclass
class _Wait:
    """One traced lock wait (lock_wait .. lock_acquired/attempt end)."""

    file: int
    mode: str
    start: float
    end: typing.Optional[float] = None
    #: (verdict_time, holders-or-None) -- None marks a delay verdict
    verdicts: typing.List[
        typing.Tuple[float, typing.Optional[typing.Tuple[int, ...]]]
    ] = dataclasses.field(default_factory=list)

    @property
    def flavor(self) -> str:
        return (
            "block"
            if any(h is not None for _, h in self.verdicts)
            else "delay"
        )


@dataclasses.dataclass
class Attempt:
    """One admission-to-commit/abort/restart attempt of a transaction."""

    txn_id: int
    index: int  # 0 = original, 1+ = restarts
    start: float
    end: typing.Optional[float] = None
    admitted_at: typing.Optional[float] = None
    outcome: str = "in_flight"  # commit | abort | in_flight
    reason: typing.Optional[str] = None  # abort reason
    waits: typing.List[_Wait] = dataclasses.field(default_factory=list)
    steps: typing.List[typing.Tuple[int, int, float, float]] = (
        dataclasses.field(default_factory=list)
    )  # (file, step, start, end)
    spans: typing.List[Span] = dataclasses.field(default_factory=list)

    def open_wait(self) -> typing.Optional[_Wait]:
        if self.waits and self.waits[-1].end is None:
            return self.waits[-1]
        return None


@dataclasses.dataclass
class TxnTimeline:
    """A logical transaction: the restart-linked chain of attempts."""

    root: int
    label: str
    arrival: float
    attempts: typing.List[Attempt] = dataclasses.field(default_factory=list)
    committed: bool = False
    response_ms: typing.Optional[float] = None  # from txn.commit

    @property
    def end(self) -> float:
        return self.attempts[-1].end if self.attempts else self.arrival

    @property
    def status(self) -> str:
        if self.committed:
            return "committed"
        last = self.attempts[-1] if self.attempts else None
        if last is not None and last.outcome == "abort":
            return "aborted"
        return "in_flight"

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)

    def spans(self) -> typing.Iterator[typing.Tuple[Attempt, Span]]:
        for attempt in self.attempts:
            for span in attempt.spans:
                yield attempt, span

    def totals(self) -> typing.Dict[str, float]:
        """Budget-bucket totals (ms) for this transaction.

        Spans of attempts that aborted-and-restarted land in ``wasted``;
        the surviving attempt's spans split into queued / blocked /
        executing.  For a committed chain the four buckets sum to
        ``response_ms`` (the conservation invariant).
        """
        out = {"queued": 0.0, "blocked": 0.0, "executing": 0.0, "wasted": 0.0}
        for attempt, span in self.spans():
            if attempt.outcome == "abort":
                out["wasted"] += span.duration
            elif span.kind == "admission":
                out["queued"] += span.duration
            elif span.kind == "lock_wait":
                out["blocked"] += span.duration
            else:
                out["executing"] += span.duration
        return out


def _tile_attempt(attempt: Attempt) -> None:
    """Build the attempt's span list and check it tiles exactly."""
    end = attempt.end
    assert end is not None
    spans: typing.List[Span] = []
    cursor = attempt.start
    if attempt.admitted_at is None:
        # never admitted: the whole attempt is one admission wait
        spans.append(Span("admission", cursor, end))
        cursor = end
    else:
        spans.append(Span("admission", cursor, attempt.admitted_at))
        cursor = attempt.admitted_at
        for wait in attempt.waits:
            wait_end = end if wait.end is None else wait.end
            if wait.start > cursor:
                spans.append(Span("executing", cursor, wait.start))
            spans.append(
                Span(
                    "lock_wait",
                    wait.start,
                    wait_end,
                    file=wait.file,
                    flavor=wait.flavor,
                )
            )
            cursor = wait_end
        if cursor < end:
            spans.append(Span("executing", cursor, end))
    # drop zero-width tiles, then verify exact adjacency
    spans = [s for s in spans if s.end > s.start]
    cursor = attempt.start
    for span in spans:
        if span.start != cursor:
            raise ConservationError(
                f"T{attempt.txn_id}: span gap/overlap at {span.start} "
                f"(expected {cursor})"
            )
        if span.end < span.start:
            raise ConservationError(
                f"T{attempt.txn_id}: negative span {span.kind} "
                f"[{span.start}, {span.end}]"
            )
        cursor = span.end
    if spans and spans[-1].end != end:
        raise ConservationError(
            f"T{attempt.txn_id}: spans end at {spans[-1].end}, "
            f"attempt ends at {end}"
        )
    attempt.spans = spans


def _as_records(
    events: typing.Iterable[typing.Union[Record, TraceEvent]],
) -> typing.Iterator[Record]:
    for event in events:
        if isinstance(event, TraceEvent):
            yield event.to_record()
        else:
            yield event


class Attribution:
    """The folded view of one trace stream."""

    def __init__(
        self,
        transactions: typing.Dict[int, TxnTimeline],
        meta: typing.Dict[str, typing.Any],
        first_time: float,
        last_time: float,
        file_waits: typing.Dict[int, typing.Dict[str, float]],
        edges: typing.Dict[typing.Tuple[int, int], float],
    ) -> None:
        self.transactions = transactions
        self.meta = meta
        self.first_time = first_time
        self.last_time = last_time
        #: file -> {"blocked_ms", "waits", "max_convoy"}
        self.file_waits = file_waits
        #: (waiter_root, holder_root) -> co-blocked ms (time split evenly
        #: across the holders reported by each txn.block verdict)
        self.edges = edges

    # -- aggregate views ---------------------------------------------------

    @property
    def makespan_ms(self) -> float:
        return self.last_time - self.first_time

    def budget(self) -> typing.Dict[str, typing.Any]:
        """The batch-level time budget over transaction-seconds."""
        totals = {"queued": 0.0, "blocked": 0.0, "executing": 0.0,
                  "wasted": 0.0}
        committed = aborted_attempts = in_flight = restarts = 0
        responses: typing.List[float] = []
        for timeline in self.transactions.values():
            for bucket, value in timeline.totals().items():
                totals[bucket] += value
            restarts += timeline.restarts
            aborted_attempts += sum(
                1 for a in timeline.attempts if a.outcome == "abort"
            )
            if timeline.committed:
                committed += 1
                if timeline.response_ms is not None:
                    responses.append(timeline.response_ms)
            elif timeline.status == "in_flight":
                in_flight += 1
        total_ms = sum(totals.values())
        fractions = {
            bucket: (value / total_ms if total_ms > 0 else 0.0)
            for bucket, value in totals.items()
        }
        return {
            "queued_ms": totals["queued"],
            "blocked_ms": totals["blocked"],
            "executing_ms": totals["executing"],
            "wasted_ms": totals["wasted"],
            "total_ms": total_ms,
            "fractions": fractions,
            "makespan_ms": self.makespan_ms,
            "transactions": len(self.transactions),
            "committed": committed,
            "restarts": restarts,
            "aborted_attempts": aborted_attempts,
            "in_flight": in_flight,
            "mean_response_ms": (
                sum(responses) / len(responses) if responses else 0.0
            ),
        }

    def hotspots(self, top: int = 10) -> typing.List[typing.Dict[str, typing.Any]]:
        """Top files by blocked time, with convoy depth and top blockers."""
        blockers = self._per_file_blockers()
        table = []
        for file_id, stats in self.file_waits.items():
            ranked = sorted(
                blockers.get(file_id, {}).items(),
                key=lambda kv: (-kv[1], kv[0]),
            )
            table.append(
                {
                    "file": file_id,
                    "blocked_ms": stats["blocked_ms"],
                    "waits": int(stats["waits"]),
                    "max_convoy": int(stats["max_convoy"]),
                    "top_blockers": [
                        {"txn": txn, "ms": ms} for txn, ms in ranked[:3]
                    ],
                }
            )
        table.sort(key=lambda row: (-row["blocked_ms"], row["file"]))
        return table[:top]

    def _per_file_blockers(
        self,
    ) -> typing.Dict[int, typing.Dict[int, float]]:
        out: typing.Dict[int, typing.Dict[int, float]] = {}
        for timeline in self.transactions.values():
            for attempt in timeline.attempts:
                for wait in attempt.waits:
                    for start, duration, holders in _verdict_segments(
                        wait, attempt
                    ):
                        if not holders:
                            continue
                        share = duration / len(holders)
                        bucket = out.setdefault(wait.file, {})
                        for holder in holders:
                            root = self._root_of(holder)
                            bucket[root] = bucket.get(root, 0.0) + share
        return out

    def _root_of(self, txn_id: int) -> int:
        timeline = self._by_attempt.get(txn_id)
        return timeline.root if timeline is not None else txn_id

    @property
    def _by_attempt(self) -> typing.Dict[int, TxnTimeline]:
        cached = getattr(self, "_by_attempt_cache", None)
        if cached is None:
            cached = {}
            for timeline in self.transactions.values():
                for attempt in timeline.attempts:
                    cached[attempt.txn_id] = timeline
            self._by_attempt_cache = cached
        return cached

    def blocking_edges(
        self, top: int = 10
    ) -> typing.List[typing.Dict[str, typing.Any]]:
        """Heaviest waiter -> holder edges of the wait-for graph."""
        ranked = sorted(
            self.edges.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            {"waiter": waiter, "holder": holder, "ms": ms}
            for (waiter, holder), ms in ranked[:top]
        ]

    def critical_path(
        self, max_hops: int = 64
    ) -> typing.List[typing.Dict[str, typing.Any]]:
        """Walk backward from the last commit through its blockers.

        Starting at the transaction whose commit ends the makespan (the
        last in-flight straggler when nothing committed), walk its spans
        backwards in wall-clock time.  A blocked lock wait is *caused*
        by whoever held the lock, so instead of keeping the wait span
        the walk jumps into the timeline of the holder whose completion
        released the lock (the latest-ending holder of the final
        ``txn.block`` verdict) and continues from the wait's end.  The
        result is the wall-clock-contiguous chain of spans the batch's
        tail latency rode on; delay-flavoured waits (pure policy, no
        holder) stay on the path attributed to the waiter.
        """
        if not self.transactions:
            return []
        committed = [
            tl for tl in self.transactions.values() if tl.committed
        ]
        pool = committed or list(self.transactions.values())
        timeline: typing.Optional[TxnTimeline] = max(
            pool, key=lambda tl: (tl.end, tl.root)
        )
        segments: typing.List[typing.Dict[str, typing.Any]] = []
        cursor = timeline.end
        hops = 0
        while timeline is not None and hops <= max_hops:
            jump: typing.Optional[typing.Tuple[int, float]] = None
            for attempt in reversed(timeline.attempts):
                if attempt.end is None:
                    continue
                for span in reversed(attempt.spans):
                    if span.start >= cursor:
                        continue
                    if span.kind == "lock_wait" and span.flavor == "block":
                        holder = self._releasing_holder(attempt, span)
                        if (
                            holder is not None
                            and holder in self._by_attempt
                        ):
                            jump = (holder, min(span.end, cursor))
                            break
                    segment = span.to_dict()
                    segment["end"] = min(span.end, cursor)
                    segments.append(
                        {
                            "txn": timeline.root,
                            "attempt": attempt.index,
                            **segment,
                        }
                    )
                    cursor = span.start
                if jump is not None:
                    break
            if jump is None:
                break
            holder_id, cursor = jump
            timeline = self._by_attempt.get(holder_id)
            hops += 1
        segments.reverse()
        return segments

    def _releasing_holder(
        self, attempt: Attempt, span: Span
    ) -> typing.Optional[int]:
        for wait in attempt.waits:
            if wait.file != span.file or wait.start != span.start:
                continue
            holders: typing.Tuple[int, ...] = ()
            for _, verdict_holders in wait.verdicts:
                if verdict_holders is not None:
                    holders = verdict_holders
            if not holders:
                return None
            # the holder whose own attempt ended last released the lock
            def end_of(txn_id: int) -> float:
                timeline = self._by_attempt.get(txn_id)
                return timeline.end if timeline is not None else -1.0

            return max(holders, key=lambda h: (end_of(h), -h))
        return None

    def anomalies(self) -> typing.List[typing.Dict[str, typing.Any]]:
        """Deterministic starvation and convoy flags."""
        flags: typing.List[typing.Dict[str, typing.Any]] = []
        responses = sorted(
            tl.response_ms
            for tl in self.transactions.values()
            if tl.committed and tl.response_ms is not None
        )
        if responses:
            median = responses[len(responses) // 2]
            for root in sorted(self.transactions):
                timeline = self.transactions[root]
                if not timeline.committed or timeline.response_ms is None:
                    continue
                totals = timeline.totals()
                waiting = totals["queued"] + totals["blocked"]
                response = timeline.response_ms
                if (
                    response >= STARVATION_FACTOR * median
                    and response > 0
                    and waiting / response >= STARVATION_WAIT_SHARE
                ):
                    flags.append(
                        {
                            "kind": "starvation",
                            "txn": root,
                            "response_ms": response,
                            "wait_share": waiting / response,
                            "median_response_ms": median,
                        }
                    )
        total_blocked = sum(
            stats["blocked_ms"] for stats in self.file_waits.values()
        )
        for file_id in sorted(self.file_waits):
            stats = self.file_waits[file_id]
            if (
                stats["max_convoy"] >= CONVOY_MIN_DEPTH
                and total_blocked > 0
                and stats["blocked_ms"] / total_blocked
                >= CONVOY_BLOCKED_SHARE
            ):
                flags.append(
                    {
                        "kind": "convoy",
                        "file": file_id,
                        "max_convoy": int(stats["max_convoy"]),
                        "blocked_ms": stats["blocked_ms"],
                        "blocked_share": stats["blocked_ms"] / total_blocked,
                    }
                )
        return flags


def _verdict_segments(
    wait: _Wait, attempt: Attempt
) -> typing.Iterator[
    typing.Tuple[float, float, typing.Optional[typing.Tuple[int, ...]]]
]:
    """(start, duration, holders) per verdict-delimited wait segment."""
    wait_end = wait.end
    if wait_end is None:
        wait_end = attempt.end if attempt.end is not None else wait.start
    verdicts = wait.verdicts or [(wait.start, None)]
    for i, (start, holders) in enumerate(verdicts):
        end = verdicts[i + 1][0] if i + 1 < len(verdicts) else wait_end
        if end > start:
            yield start, end - start, holders


def fold_trace(
    events: typing.Iterable[typing.Union[Record, TraceEvent]],
    strict: bool = True,
) -> Attribution:
    """Fold an ordered event stream into an :class:`Attribution`.

    ``strict`` (the default) raises :class:`ConservationError` when a
    committed transaction's spans do not sum to its reported response
    time; pass ``False`` only when inspecting hand-edited streams.
    """
    meta: typing.Dict[str, typing.Any] = {}
    timelines: typing.Dict[int, TxnTimeline] = {}
    by_attempt: typing.Dict[int, typing.Tuple[TxnTimeline, Attempt]] = {}
    open_waits_per_file: typing.Dict[int, int] = {}
    file_waits: typing.Dict[int, typing.Dict[str, float]] = {}
    first_time: typing.Optional[float] = None
    last_time = 0.0

    def file_stats(file_id: int) -> typing.Dict[str, float]:
        return file_waits.setdefault(
            file_id, {"blocked_ms": 0.0, "waits": 0, "max_convoy": 0}
        )

    def close_wait(attempt: Attempt, end: float) -> None:
        wait = attempt.open_wait()
        if wait is None:
            return
        wait.end = end
        stats = file_stats(wait.file)
        stats["blocked_ms"] += wait.end - wait.start
        open_waits_per_file[wait.file] = max(
            0, open_waits_per_file.get(wait.file, 1) - 1
        )

    def finish_attempt(
        timeline: TxnTimeline,
        attempt: Attempt,
        end: float,
        outcome: str,
        reason: typing.Optional[str] = None,
    ) -> None:
        close_wait(attempt, end)
        attempt.end = end
        attempt.outcome = outcome
        attempt.reason = reason
        _tile_attempt(attempt)

    for record in _as_records(events):
        kind = record["kind"]
        time = float(record["t"])
        if first_time is None and kind != "trace.meta":
            first_time = time
        last_time = max(last_time, time)
        if kind == "trace.meta":
            meta = {
                k: v for k, v in record.items() if k not in ("t", "kind")
            }
            continue
        if not kind.startswith("txn."):
            continue
        txn = record.get("txn")
        if kind == "txn.arrive":
            timeline = TxnTimeline(
                root=txn, label=record.get("label", "txn"), arrival=time
            )
            attempt = Attempt(txn_id=txn, index=0, start=time)
            timeline.attempts.append(attempt)
            timelines[txn] = timeline
            by_attempt[txn] = (timeline, attempt)
        elif kind == "txn.restart":
            entry = by_attempt.get(txn)
            if entry is None:
                continue
            timeline, attempt = entry
            # the matching txn.abort (same timestamp) already closed the
            # attempt; chain the successor from the restart time
            new_txn = record["new_txn"]
            successor = Attempt(
                txn_id=new_txn, index=attempt.index + 1, start=time
            )
            timeline.attempts.append(successor)
            by_attempt[new_txn] = (timeline, successor)
        elif txn in by_attempt:
            timeline, attempt = by_attempt[txn]
            if kind == "txn.admit":
                attempt.admitted_at = time
            elif kind == "txn.lock_wait":
                attempt.waits.append(
                    _Wait(file=record["file"], mode=record["mode"],
                          start=time)
                )
                stats = file_stats(record["file"])
                stats["waits"] += 1
                depth = open_waits_per_file.get(record["file"], 0) + 1
                open_waits_per_file[record["file"]] = depth
                stats["max_convoy"] = max(stats["max_convoy"], depth)
            elif kind == "txn.lock_acquired":
                close_wait(attempt, time)
            elif kind == "txn.block":
                wait = attempt.open_wait()
                if wait is not None:
                    wait.verdicts.append(
                        (time, tuple(record["holders"]))
                    )
            elif kind == "txn.delay":
                wait = attempt.open_wait()
                if wait is not None:
                    wait.verdicts.append((time, None))
            elif kind == "txn.step_start":
                attempt.steps.append(
                    (record["file"], record["step"], time, time)
                )
            elif kind == "txn.step_end":
                for i in range(len(attempt.steps) - 1, -1, -1):
                    file_id, step, start, end = attempt.steps[i]
                    if (
                        file_id == record["file"]
                        and step == record["step"]
                        and end == start
                    ):
                        attempt.steps[i] = (file_id, step, start, time)
                        break
            elif kind == "txn.commit":
                timeline.committed = True
                timeline.response_ms = float(record["response_ms"])
                finish_attempt(timeline, attempt, time, "commit")
            elif kind == "txn.abort":
                finish_attempt(
                    timeline, attempt, time, "abort",
                    reason=record.get("reason"),
                )
        # txn.admit_reject and unmatched ids: nothing to fold

    # close whatever is still open at stream end (truncated run window)
    for timeline in timelines.values():
        attempt = timeline.attempts[-1]
        if attempt.end is None:
            finish_attempt(timeline, attempt, last_time, "in_flight")
            attempt.outcome = "in_flight"

    attribution = Attribution(
        transactions=timelines,
        meta=meta,
        first_time=first_time if first_time is not None else 0.0,
        last_time=last_time,
        file_waits=file_waits,
        edges=_blocking_edges(timelines),
    )
    if strict:
        check_conservation(attribution)
    return attribution


def _blocking_edges(
    timelines: typing.Dict[int, TxnTimeline],
) -> typing.Dict[typing.Tuple[int, int], float]:
    roots: typing.Dict[int, int] = {}
    for timeline in timelines.values():
        for attempt in timeline.attempts:
            roots[attempt.txn_id] = timeline.root
    edges: typing.Dict[typing.Tuple[int, int], float] = {}
    for timeline in timelines.values():
        for attempt in timeline.attempts:
            for wait in attempt.waits:
                for start, duration, holders in _verdict_segments(
                    wait, attempt
                ):
                    if not holders:
                        continue
                    share = duration / len(holders)
                    for holder in holders:
                        key = (timeline.root, roots.get(holder, holder))
                        edges[key] = edges.get(key, 0.0) + share
    return edges


def fold_trace_path(path: PathLike, strict: bool = True) -> Attribution:
    """Fold a JSONL trace artifact (see :func:`fold_trace`)."""
    return fold_trace(read_jsonl(path), strict=strict)


def check_conservation(attribution: Attribution) -> None:
    """Assert the invariant: spans of every committed chain sum to its
    reported response time (float-roundoff tolerance only)."""
    for root in sorted(attribution.transactions):
        timeline = attribution.transactions[root]
        if not timeline.committed or timeline.response_ms is None:
            continue
        total = sum(
            span.duration for _, span in timeline.spans()
        )
        if not math.isclose(
            total,
            timeline.response_ms,
            rel_tol=CONSERVATION_REL_TOL,
            abs_tol=CONSERVATION_ABS_TOL,
        ):
            raise ConservationError(
                f"T{root}: spans sum to {total} ms but txn.commit "
                f"reported response_ms={timeline.response_ms}"
            )
