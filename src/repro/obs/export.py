"""Trace exporters: JSONL, Chrome trace (Perfetto) and text summary.

All three consume the same ordered :class:`~repro.obs.events.TraceEvent`
stream a :class:`~repro.obs.recorder.MemoryRecorder` buffered:

- :func:`write_jsonl` -- one JSON object per line, headed by a
  ``trace.meta`` record; the archival format the schema validator and
  the runner's per-run artifacts use.
- :func:`to_chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event JSON that Perfetto (ui.perfetto.dev) and chrome://tracing
  load: one track per machine node (CN CPU slices by cost category, DPN
  busy intervals, queue-depth counters) and one track per transaction
  (active span, lock-wait spans, per-step scan spans, instant markers
  for blocks/delays/restarts).
- :func:`render_summary` -- a terminal digest: event counts, top
  blockers, lock-wait histogram, restart chains.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.obs.events import TraceEvent
from repro.obs.schema import TRACE_SCHEMA_VERSION

PathLike = typing.Union[str, pathlib.Path]

#: Chrome trace timestamps are microseconds; the simulator clock is ms
_US_PER_MS = 1000.0


def _meta_record(
    meta: typing.Optional[typing.Mapping[str, typing.Any]],
) -> typing.Dict[str, typing.Any]:
    record: typing.Dict[str, typing.Any] = {
        "t": 0.0,
        "kind": "trace.meta",
        "schema": TRACE_SCHEMA_VERSION,
    }
    if meta:
        for key, value in meta.items():
            record.setdefault(key, value)
    return record


# -- JSONL --------------------------------------------------------------------


def write_jsonl(
    events: typing.Iterable[TraceEvent],
    path: PathLike,
    meta: typing.Optional[typing.Mapping[str, typing.Any]] = None,
    dropped: int = 0,
) -> pathlib.Path:
    """Write the stream as JSON Lines, returning the path written.

    ``meta`` (scheduler, seed, workload...) lands in the leading
    ``trace.meta`` record beside the schema version.  Pass the
    recorder's ``dropped`` count so a capped trace is self-describing:
    the meta record then carries ``events_dropped`` and ``truncated``,
    and downstream readers know the stream is a prefix, not the run.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = _meta_record(meta)
    if dropped:
        record["events_dropped"] = dropped
        record["truncated"] = True
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        for event in events:
            handle.write(json.dumps(event.to_record(), sort_keys=True) + "\n")
    return path


def read_jsonl(path: PathLike) -> typing.List[typing.Dict[str, typing.Any]]:
    """Load every record of a JSONL trace (meta record included)."""
    records = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- Chrome trace / Perfetto --------------------------------------------------

_MACHINE_PID = 1
_TXN_PID = 2
_CN_TID = 0

#: instant markers shown on transaction tracks
_TXN_INSTANTS = {
    "txn.arrive": "arrive",
    "txn.admit_reject": "admit rejected",
    "txn.block": "blocked",
    "txn.delay": "delayed",
    "txn.restart": "restart",
    "txn.abort": "abort",
}


def to_chrome_trace(
    events: typing.Sequence[TraceEvent],
    meta: typing.Optional[typing.Mapping[str, typing.Any]] = None,
    dropped: int = 0,
) -> typing.Dict[str, typing.Any]:
    """Build the Chrome trace-event JSON object for the stream.

    Machine process (pid 1): tid 0 is the CN CPU (one slice per
    ``cn.exec_start``/``end`` pair, named by cost category), tid 1+n is
    DPN n (busy intervals from ``node.busy``/``node.idle``), plus
    queue-depth counter tracks.  Transaction process (pid 2): tid is
    the transaction id, carrying its active/wait/scan spans.
    """
    trace: typing.List[typing.Dict[str, typing.Any]] = []
    end_time = events[-1].time if events else 0.0

    def span(
        name: str,
        cat: str,
        start_ms: float,
        end_ms: float,
        pid: int,
        tid: int,
        args: typing.Optional[typing.Dict[str, typing.Any]] = None,
    ) -> None:
        trace.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start_ms * _US_PER_MS,
                "dur": max(0.0, end_ms - start_ms) * _US_PER_MS,
                "pid": pid,
                "tid": tid,
                "args": args or {},
            }
        )

    def instant(
        name: str,
        cat: str,
        time_ms: float,
        pid: int,
        tid: int,
        args: typing.Optional[typing.Dict[str, typing.Any]] = None,
    ) -> None:
        trace.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": time_ms * _US_PER_MS,
                "pid": pid,
                "tid": tid,
                "args": args or {},
            }
        )

    def counter(name: str, time_ms: float, value: float) -> None:
        trace.append(
            {
                "name": name,
                "ph": "C",
                "ts": time_ms * _US_PER_MS,
                "pid": _MACHINE_PID,
                "tid": 0,
                "args": {"depth": value},
            }
        )

    # open-interval state while sweeping the stream once
    cn_open: typing.Optional[typing.Tuple[float, str, float]] = None
    node_busy_since: typing.Dict[int, float] = {}
    txn_active_since: typing.Dict[int, float] = {}
    txn_wait_since: typing.Dict[int, typing.Tuple[float, int, str]] = {}
    txn_step_since: typing.Dict[int, typing.Tuple[float, int, int]] = {}
    seen_txns: typing.Set[int] = set()
    seen_nodes: typing.Set[int] = set()

    for event in events:
        time, kind, fields = event
        if kind == "cn.exec_start":
            cn_open = (time, fields["category"], fields["cost_ms"])
        elif kind == "cn.exec_end" and cn_open is not None:
            start, category, cost_ms = cn_open
            span(category, "cn", start, time, _MACHINE_PID, _CN_TID,
                 {"cost_ms": cost_ms})
            cn_open = None
        elif kind == "node.busy":
            node_busy_since[fields["node"]] = time
            seen_nodes.add(fields["node"])
        elif kind == "node.idle":
            node = fields["node"]
            seen_nodes.add(node)
            start = node_busy_since.pop(node, None)
            if start is not None:
                span("scan", "dpn", start, time, _MACHINE_PID, 1 + node)
        elif kind == "node.queue":
            counter(f"dpn{fields['node']} queue", time, fields["depth"])
        elif kind == "res.queue":
            counter(f"{fields['name']} queue", time, fields["depth"])
        elif kind == "txn.admit":
            txn_active_since[fields["txn"]] = time
            seen_txns.add(fields["txn"])
        elif kind in ("txn.commit", "txn.abort"):
            txn = fields["txn"]
            seen_txns.add(txn)
            start = txn_active_since.pop(txn, None)
            if start is not None:
                span("active", "txn", start, time, _TXN_PID, txn,
                     dict(fields))
            if kind == "txn.abort":
                instant("abort", "txn", time, _TXN_PID, txn, dict(fields))
        elif kind == "txn.lock_wait":
            txn = fields["txn"]
            seen_txns.add(txn)
            txn_wait_since[txn] = (time, fields["file"], fields["mode"])
        elif kind == "txn.lock_acquired":
            txn = fields["txn"]
            waiting = txn_wait_since.pop(txn, None)
            if waiting is not None:
                start, file_id, mode = waiting
                span(f"wait F{file_id}", "lock", start, time, _TXN_PID, txn,
                     {"mode": mode, "wait_ms": fields["wait_ms"]})
        elif kind == "txn.step_start":
            txn = fields["txn"]
            seen_txns.add(txn)
            txn_step_since[txn] = (time, fields["file"], fields["step"])
        elif kind == "txn.step_end":
            txn = fields["txn"]
            open_step = txn_step_since.pop(txn, None)
            if open_step is not None:
                start, file_id, step = open_step
                span(f"scan F{file_id}", "step", start, time, _TXN_PID, txn,
                     {"step": step})
        elif kind in _TXN_INSTANTS:
            txn = fields["txn"]
            seen_txns.add(txn)
            instant(_TXN_INSTANTS[kind], kind.split(".", 1)[0], time,
                    _TXN_PID, txn, dict(fields))

    # close intervals still open when the run window ended
    if cn_open is not None:
        start, category, cost_ms = cn_open
        span(category, "cn", start, end_time, _MACHINE_PID, _CN_TID,
             {"cost_ms": cost_ms, "truncated": True})
    for node, start in sorted(node_busy_since.items()):
        span("scan", "dpn", start, end_time, _MACHINE_PID, 1 + node,
             {"truncated": True})
    for txn, start in sorted(txn_active_since.items()):
        span("active", "txn", start, end_time, _TXN_PID, txn,
             {"truncated": True})
    for txn, (start, file_id, mode) in sorted(txn_wait_since.items()):
        span(f"wait F{file_id}", "lock", start, end_time, _TXN_PID, txn,
             {"mode": mode, "truncated": True})
    for txn, (start, file_id, step) in sorted(txn_step_since.items()):
        span(f"scan F{file_id}", "step", start, end_time, _TXN_PID, txn,
             {"step": step, "truncated": True})

    # name the processes/threads so Perfetto's track labels read well
    def name_meta(name: str, which: str, pid: int,
                  tid: typing.Optional[int] = None) -> None:
        record: typing.Dict[str, typing.Any] = {
            "name": which,
            "ph": "M",
            "pid": pid,
            "args": {"name": name},
        }
        if tid is not None:
            record["tid"] = tid
        trace.append(record)

    name_meta("machine", "process_name", _MACHINE_PID)
    name_meta("CN cpu", "thread_name", _MACHINE_PID, _CN_TID)
    for node in sorted(seen_nodes):
        name_meta(f"DPN {node}", "thread_name", _MACHINE_PID, 1 + node)
    name_meta("transactions", "process_name", _TXN_PID)
    for txn in sorted(seen_txns):
        name_meta(f"T{txn}", "thread_name", _TXN_PID, txn)

    payload: typing.Dict[str, typing.Any] = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
    }
    if meta or dropped:
        payload["otherData"] = dict(meta) if meta else {}
    if dropped:
        # flag truncation where Perfetto's info panel will show it, so a
        # capped trace is never mistaken for the complete run
        payload["otherData"]["events_dropped"] = dropped
        payload["otherData"]["truncated"] = True
    return payload


def write_chrome_trace(
    events: typing.Sequence[TraceEvent],
    path: PathLike,
    meta: typing.Optional[typing.Mapping[str, typing.Any]] = None,
    dropped: int = 0,
) -> pathlib.Path:
    """Serialise :func:`to_chrome_trace` to ``path`` (Perfetto-loadable)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(events, meta, dropped=dropped)))
    return path


# -- text summary -------------------------------------------------------------

#: lock-wait histogram bucket upper bounds in ms (last bucket is open)
_WAIT_BUCKETS_MS = (10.0, 100.0, 1_000.0, 10_000.0, 100_000.0)


def _wait_histogram(waits: typing.Sequence[float]) -> typing.List[str]:
    lines = []
    edges = (0.0,) + _WAIT_BUCKETS_MS
    for low, high in zip(edges, edges[1:]):
        n = sum(1 for w in waits if low <= w < high)
        lines.append(f"    [{low:>8g}, {high:>8g}) ms  {n:>6d}")
    n = sum(1 for w in waits if w >= edges[-1])
    lines.append(f"    [{edges[-1]:>8g},      inf) ms  {n:>6d}")
    return lines


def _restart_chains(
    restarts: typing.Sequence[typing.Tuple[int, int]],
) -> typing.List[typing.List[int]]:
    """Stitch (old, new) restart pairs into attempt chains."""
    successor = dict(restarts)
    restarted_into = set(successor.values())
    chains = []
    for head in sorted(set(successor) - restarted_into):
        chain = [head]
        while chain[-1] in successor:
            chain.append(successor[chain[-1]])
        chains.append(chain)
    return chains


def render_summary(
    events: typing.Sequence[TraceEvent], top: int = 5, dropped: int = 0
) -> str:
    """A terminal digest of the stream: what happened, and who blocked whom.

    ``dropped`` is the recorder's dropped-event count; when non-zero the
    digest leads with a warning, since every section below then reflects
    only the retained prefix of the run.
    """
    counts: typing.Dict[str, int] = {}
    blocker_counts: typing.Dict[int, int] = {}
    file_block_counts: typing.Dict[int, int] = {}
    waits: typing.List[float] = []
    restarts: typing.List[typing.Tuple[int, int]] = []
    births: typing.Dict[int, float] = {}
    commits = aborts = 0
    wasted_ms = 0.0
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if event.kind == "txn.block":
            file_block_counts[event.fields["file"]] = (
                file_block_counts.get(event.fields["file"], 0) + 1
            )
            for holder in event.fields["holders"]:
                blocker_counts[holder] = blocker_counts.get(holder, 0) + 1
        elif event.kind == "txn.lock_acquired":
            waits.append(event.fields["wait_ms"])
        elif event.kind == "txn.arrive":
            births[event.fields["txn"]] = event.time
        elif event.kind == "txn.restart":
            restarts.append((event.fields["txn"], event.fields["new_txn"]))
            births[event.fields["new_txn"]] = event.time
        elif event.kind == "txn.commit":
            commits += 1
        elif event.kind == "txn.abort":
            aborts += 1
            txn = event.fields["txn"]
            wasted_ms += event.time - births.get(txn, event.time)

    span_ms = events[-1].time - events[0].time if events else 0.0
    lines = [
        f"trace summary: {len(events)} events over {span_ms:g} ms "
        f"({commits} commits, {aborts} aborts)",
    ]
    if dropped:
        lines.append(
            f"  WARNING: {dropped} event(s) dropped at the recorder cap; "
            "everything below reflects the retained prefix only"
        )
    lines += [
        "",
        "  events by kind:",
    ]
    for kind in sorted(counts):
        lines.append(f"    {kind:<22} {counts[kind]:>8d}")

    lines += ["", f"  top blockers (transactions holding locks others waited on):"]
    ranked = sorted(blocker_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    if ranked:
        for txn, n in ranked[:top]:
            lines.append(f"    T{txn:<10} blocked others {n} time(s)")
    else:
        lines.append("    (no blocking observed)")

    lines += ["", "  most contended files (block events per file):"]
    ranked_files = sorted(
        file_block_counts.items(), key=lambda kv: (-kv[1], kv[0])
    )
    if ranked_files:
        for file_id, n in ranked_files[:top]:
            lines.append(f"    F{file_id:<10} {n} block(s)")
    else:
        lines.append("    (no blocking observed)")

    lines += ["", f"  lock-wait histogram ({len(waits)} completed waits):"]
    lines += _wait_histogram(waits)

    chains = _restart_chains(restarts)
    lines += ["", f"  restart chains: {len(restarts)} restart(s) in "
              f"{len(chains)} chain(s)"]
    for chain in sorted(chains, key=len, reverse=True)[:top]:
        arrow = " -> ".join(f"T{t}" for t in chain)
        lines.append(f"    {len(chain) - 1} restart(s): {arrow}")
    lines.append(
        f"  restart-wasted work: {wasted_ms:g} ms of simulated "
        f"progress discarded across {aborts} aborted attempt(s)"
    )
    return "\n".join(lines)
