"""Time-series metrics sampled on the simulation clock.

The trace (:mod:`repro.obs.recorder`) records *discrete events*; this
module records *trajectories*: utilisation, active MPL, blocked-set
size, lock-table and WTPG size, cumulative aborts -- the continuous
contention signals the paper's Figs. 8-13 argue from -- sampled every
``interval_ms`` of simulated time.

Sampling is driven by the DES clock itself: the engine calls
:meth:`TimeSeriesSampler.advance_to` whenever the clock is about to
cross a sample boundary, *before* the events at the new time fire.  A
sample at boundary ``b`` therefore reflects the model state after all
events strictly before ``b`` (sample-and-hold).  The sampler is pure
observation -- it schedules no events, draws no randomness and never
mutates model state -- so a sampled run is byte-identical to an
unsampled one, exactly like tracing.

Each :class:`Series` keeps

- a *ring buffer* of the most recent ``max_points`` ``(t, value)``
  pairs (bounded memory over arbitrarily long runs),
- streaming statistics (count/sum/min/max) over *all* samples, and
- a histogram over all samples -- :class:`FixedHistogram` for bounded
  signals such as utilisation, :class:`LogHistogram` for heavy-tailed
  ones such as queue depths and set sizes.
"""

from __future__ import annotations

import collections
import csv
import json
import math
import pathlib
import typing

PathLike = typing.Union[str, pathlib.Path]

#: bump when the exported series payload changes incompatibly
SERIES_SCHEMA_VERSION = 1

#: default ring capacity per series (points beyond it evict the oldest)
DEFAULT_MAX_POINTS = 4096

#: a probe reads one model value as of sample time ``t`` (ms)
Probe = typing.Callable[[float], float]


class FixedHistogram:
    """Equal-width bins over ``[lo, hi)`` with under/overflow counters."""

    def __init__(self, lo: float, hi: float, bins: int = 20) -> None:
        if not lo < hi:
            raise ValueError(f"need lo < hi, got [{lo}, {hi})")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.lo = lo
        self.hi = hi
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._width = (hi - lo) / bins

    def observe(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            self.counts[int((value - self.lo) / self._width)] += 1

    def edges(self) -> typing.List[float]:
        """The ``bins + 1`` bin boundaries."""
        return [self.lo + i * self._width for i in range(len(self.counts) + 1)]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return {
            "type": "fixed",
            "edges": self.edges(),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }


class LogHistogram:
    """Log-scale bins for non-negative heavy-tailed signals.

    Bin ``i`` covers ``[lo * base**i, lo * base**(i+1))``; values below
    ``lo`` (zeros included) land in the dedicated zero/underflow bucket,
    values at or beyond the last edge in the overflow bucket.
    """

    def __init__(
        self,
        lo: float = 1.0,
        decades: int = 6,
        bins_per_decade: int = 2,
    ) -> None:
        if lo <= 0:
            raise ValueError(f"lo must be > 0, got {lo}")
        if decades < 1 or bins_per_decade < 1:
            raise ValueError("need decades >= 1 and bins_per_decade >= 1")
        self.lo = lo
        self.counts = [0] * (decades * bins_per_decade)
        self.underflow = 0
        self.overflow = 0
        self._log_lo = math.log10(lo)
        self._bins_per_decade = bins_per_decade

    def observe(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
            return
        index = int(
            (math.log10(value) - self._log_lo) * self._bins_per_decade
        )
        if index >= len(self.counts):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def edges(self) -> typing.List[float]:
        """The ``bins + 1`` bin boundaries (geometric)."""
        return [
            10.0 ** (self._log_lo + i / self._bins_per_decade)
            for i in range(len(self.counts) + 1)
        ]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return {
            "type": "log",
            "edges": self.edges(),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }


Histogram = typing.Union[FixedHistogram, LogHistogram]


class Series:
    """One sampled signal: recent points, streaming stats, histogram."""

    def __init__(
        self,
        name: str,
        unit: str = "",
        max_points: int = DEFAULT_MAX_POINTS,
        hist: typing.Optional[Histogram] = None,
    ) -> None:
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        self.name = name
        self.unit = unit
        self.points: typing.Deque[typing.Tuple[float, float]] = (
            collections.deque(maxlen=max_points)
        )
        self.hist = hist
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.last = math.nan

    def record(self, t: float, value: float) -> None:
        self.points.append((t, value))
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last = value
        if self.hist is not None:
            self.hist.observe(value)

    @property
    def mean(self) -> float:
        """Mean over every sample taken, NaN when empty."""
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        payload: typing.Dict[str, typing.Any] = {
            "unit": self.unit,
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
            "last": self.last,
            "points": [[t, v] for t, v in self.points],
        }
        if self.hist is not None:
            payload["hist"] = self.hist.to_dict()
        return payload

    def __repr__(self) -> str:
        return f"<Series {self.name!r} n={self.count} last={self.last:.4g}>"


class TimeSeriesSampler:
    """Samples registered probes every ``interval_ms`` of simulated time.

    The engine consults :attr:`next_due` once per event pop (a plain
    attribute read) and calls :meth:`advance_to` only when the clock is
    about to cross it, so an attached-but-boundary-free stretch costs
    one comparison per event.  A run without a sampler costs one ``is
    None`` check per event.
    """

    def __init__(
        self,
        interval_ms: float = 1_000.0,
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval must be > 0 ms, got {interval_ms}")
        self.interval_ms = interval_ms
        self.max_points = max_points
        #: simulated time of the next sample; read by the engine hot loop
        self.next_due = interval_ms
        self.samples_taken = 0
        self.series: typing.Dict[str, Series] = {}
        self._probes: typing.List[typing.Tuple[Series, Probe]] = []

    def add_probe(
        self,
        name: str,
        probe: Probe,
        unit: str = "",
        hist: typing.Optional[Histogram] = None,
    ) -> Series:
        """Register ``probe`` under ``name``; returns its Series."""
        if name in self.series:
            raise ValueError(f"probe {name!r} is already registered")
        series = Series(name, unit=unit, max_points=self.max_points, hist=hist)
        self.series[name] = series
        self._probes.append((series, probe))
        return series

    def add_probes(
        self, probes: typing.Mapping[str, typing.Mapping[str, typing.Any]]
    ) -> None:
        """Register a catalogue: name -> {probe, unit?, hist?}."""
        for name, spec in probes.items():
            self.add_probe(
                name,
                spec["probe"],
                unit=spec.get("unit", ""),
                hist=spec.get("hist"),
            )

    def advance_to(self, now: float) -> None:
        """Take every sample due at or before ``now`` (engine callback)."""
        due = self.next_due
        while due <= now:
            for series, probe in self._probes:
                series.record(due, probe(due))
            self.samples_taken += 1
            due += self.interval_ms
        self.next_due = due

    def to_dict(
        self, meta: typing.Optional[typing.Mapping[str, typing.Any]] = None
    ) -> typing.Dict[str, typing.Any]:
        """The JSON-ready artifact form of everything sampled."""
        payload: typing.Dict[str, typing.Any] = {
            "schema": SERIES_SCHEMA_VERSION,
            "interval_ms": self.interval_ms,
            "samples": self.samples_taken,
            "series": {
                name: series.to_dict()
                for name, series in sorted(self.series.items())
            },
        }
        if meta:
            payload["meta"] = dict(meta)
        return payload

    def __repr__(self) -> str:
        return (
            f"<TimeSeriesSampler interval={self.interval_ms:g}ms "
            f"series={len(self.series)} samples={self.samples_taken}>"
        )


# -- probe helpers ------------------------------------------------------------


def gauge(read: typing.Callable[[], float]) -> Probe:
    """A probe sampling the current value of ``read()`` (t is ignored)."""
    return lambda _t: float(read())


def windowed_rate(
    integral: typing.Callable[[float], float], scale: float = 1.0
) -> Probe:
    """Per-interval mean rate of a cumulative quantity.

    ``integral(t)`` must return the quantity accumulated by simulated
    time ``t`` (e.g. :meth:`TimeWeighted.integral` for busy-time, or a
    counter total for event counts); the probe reports the increase per
    ms since the previous sample, times ``scale``.  The first window is
    measured from t = 0, so the helper assumes the instrumented object
    started accumulating at time zero (true for everything a
    :class:`~repro.sim.simulation.Simulation` builds).

    A *decrease* means the underlying monitor was reset mid-window (the
    warm-up boundary does this to every statistic): the pre-reset area
    is gone, so the accumulation since the reset -- the current
    integral by itself -- is the best available estimate for the
    window, and the sample can never go negative.
    """
    state = {"t": 0.0, "area": 0.0}

    def probe(t: float) -> float:
        area = float(integral(t))
        span = t - state["t"]
        grown = area - state["area"]
        if grown < 0.0:  # monitor reset since the last sample
            grown = area
        value = grown / span * scale if span > 0 else 0.0
        state["t"], state["area"] = t, area
        return value

    return probe


def utilisation_hist() -> FixedHistogram:
    """The standard histogram for [0, 1] utilisation-like signals."""
    return FixedHistogram(0.0, 1.0 + 1e-9, bins=20)


def size_hist() -> LogHistogram:
    """The standard histogram for set sizes / queue depths / MPL."""
    return LogHistogram(lo=1.0, decades=6, bins_per_decade=2)


# -- artifact export ----------------------------------------------------------


def write_series_json(
    sampler: TimeSeriesSampler,
    path: PathLike,
    meta: typing.Optional[typing.Mapping[str, typing.Any]] = None,
) -> pathlib.Path:
    """Serialise the sampler's payload to ``path`` (UTF-8 JSON)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(sampler.to_dict(meta=meta), sort_keys=True),
        encoding="utf-8",
    )
    return path


def write_series_csv(
    sampler: TimeSeriesSampler, path: PathLike
) -> pathlib.Path:
    """Long-format CSV (``series,t_ms,value``) of every ringed point."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "t_ms", "value"])
        for name, series in sorted(sampler.series.items()):
            for t, value in series.points:
                writer.writerow([name, f"{t:g}", f"{value:g}"])
    return path


def load_series_json(path: PathLike) -> typing.Dict[str, typing.Any]:
    """Load and sanity-check a series artifact written by this module."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    validate_series(payload)
    return payload


def validate_series(payload: typing.Mapping[str, typing.Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid series artifact."""
    if not isinstance(payload, dict):
        raise ValueError("series artifact must be a JSON object")
    if payload.get("schema") != SERIES_SCHEMA_VERSION:
        raise ValueError(
            f"series schema {payload.get('schema')!r} != supported "
            f"{SERIES_SCHEMA_VERSION}"
        )
    series = payload.get("series")
    if not isinstance(series, dict):
        raise ValueError("series artifact lacks a 'series' mapping")
    for name, body in series.items():
        for field in ("count", "points"):
            if field not in body:
                raise ValueError(f"series {name!r} lacks {field!r}")
        for point in body["points"]:
            if not (isinstance(point, list) and len(point) == 2):
                raise ValueError(f"series {name!r} has malformed point {point!r}")


# -- terminal report ----------------------------------------------------------

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: typing.Sequence[float], width: int = 48) -> str:
    """Render ``values`` as a fixed-width unicode sparkline."""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return "(no samples)"
    if len(values) > width:
        # downsample by bucket means so the line stays `width` cells
        buckets: typing.List[typing.List[float]] = [[] for _ in range(width)]
        for index, value in enumerate(values):
            buckets[index * width // len(values)].append(value)
        values = [
            sum(bucket) / len(bucket) for bucket in buckets if bucket
        ]
    lo, hi = min(finite), max(finite)
    span = hi - lo
    cells = []
    for value in values:
        if math.isnan(value):
            cells.append(" ")
            continue
        level = 0 if span <= 0 else int(
            (value - lo) / span * (len(_SPARK_LEVELS) - 1)
        )
        cells.append(_SPARK_LEVELS[level])
    return "".join(cells)


def render_series_report(
    payload: typing.Mapping[str, typing.Any], width: int = 48
) -> str:
    """A terminal digest: one sparkline + summary row per series."""
    meta = payload.get("meta") or {}
    header = f"time-series report: {payload.get('samples', 0)} sample(s) " \
             f"every {payload.get('interval_ms', 0):g} ms"
    if meta:
        description = ", ".join(
            f"{key}={meta[key]}" for key in sorted(meta)
        )
        header += f" ({description})"
    lines = [header, ""]
    series = payload.get("series", {})
    if not series:
        lines.append("  (no series sampled)")
        return "\n".join(lines)
    name_width = max(len(name) for name in series)
    for name in sorted(series):
        body = series[name]
        values = [point[1] for point in body.get("points", [])]
        unit = f" {body['unit']}" if body.get("unit") else ""
        lines.append(
            f"  {name:<{name_width}}  {sparkline(values, width)}  "
            f"min={body.get('min', math.nan):.4g} "
            f"mean={body.get('mean', math.nan):.4g} "
            f"max={body.get('max', math.nan):.4g} "
            f"last={body.get('last', math.nan):.4g}{unit}"
        )
    return "\n".join(lines)
