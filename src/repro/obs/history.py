"""The longitudinal metrics history store behind ``repro history``.

Every artifact family the repo produces is a *snapshot*: one BENCH
payload, one ARENA report, one EXPLAIN budget, one telemetry stream --
each describing the simulator at one commit on one host.  ``repro bench
--compare`` can diff exactly two of them; everything longer-range (is
``events_per_s`` trending down? did a scheduler's ranking flip under
contention? is peak RSS creeping?) needs the snapshots kept side by
side.  This module is that keel: a persistent, append-only JSONL store
under ``results/history/`` whose records are

- **schema-versioned** -- every line carries
  ``history_schema_version`` and loading rejects unknown versions with
  a clear error, so a store written by a future build never parses
  silently wrong;
- **keyed** by git SHA, artifact creation date, host, and matrix cell
  (scheduler / workload / rate / DD), the axes the trend analytics in
  :mod:`repro.analysis.trends` group by;
- **deduplicated** by source-artifact digest: ingesting the same file
  twice is a no-op, so the CI job can blindly re-ingest the committed
  baselines every night.

Four record kinds cover the four artifact families:

=================  ============================================persist
``bench.cell``     one BENCH run row: ``events_per_s``, wall/sim,
                   ``throughput_tps``, ``maxrss_kb``
``arena.cell``     one ARENA cell: throughput, response times, abort
                   rate, and the %queued/%blocked/%exec/%wasted time
                   budget when the explain pass ran
``explain.budget`` one EXPLAIN batch budget: total txn-ms + fractions
``telemetry.peak`` one telemetry stream's peak ``maxrss_kb`` high-water
                   mark across every worker record
=================  ============================================persist
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import typing

PathLike = typing.Union[str, pathlib.Path]

#: bump when the history record layout changes incompatibly; stamped
#: into every record and checked on every load
HISTORY_SCHEMA_VERSION = 1

#: where the store lives unless told otherwise
DEFAULT_STORE_DIR = "results/history"

#: the append-only record file inside the store directory
STORE_FILENAME = "history.jsonl"

#: artifact families the store can ingest
FAMILIES = ("bench", "arena", "explain", "telemetry")

#: record kinds, mapped to whether they carry a matrix ``cell``
RECORD_KINDS: typing.Dict[str, bool] = {
    "bench.cell": True,
    "arena.cell": True,
    "explain.budget": False,
    "telemetry.peak": False,
}


class HistorySchemaError(ValueError):
    """A history record (or store line) violates the schema."""


def artifact_digest(path: PathLike) -> str:
    """Stable 12-hex identity of an artifact file (content digest)."""
    digest = hashlib.sha256(pathlib.Path(path).read_bytes())
    return digest.hexdigest()[:12]


def validate_history_record(
    record: typing.Mapping[str, typing.Any],
) -> None:
    """Raise :class:`HistorySchemaError` unless ``record`` is valid."""
    if not isinstance(record, dict):
        raise HistorySchemaError(
            f"history record must be an object, got {type(record).__name__}"
        )
    version = record.get("history_schema_version")
    if version != HISTORY_SCHEMA_VERSION:
        raise HistorySchemaError(
            f"unknown history_schema_version {version!r}; this build "
            f"supports {HISTORY_SCHEMA_VERSION}"
        )
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        raise HistorySchemaError(
            f"unknown history record kind {kind!r}; "
            f"known: {sorted(RECORD_KINDS)}"
        )
    if record.get("family") not in FAMILIES:
        raise HistorySchemaError(
            f"{kind}: unknown family {record.get('family')!r}"
        )
    if not isinstance(record.get("snapshot"), str) or not record["snapshot"]:
        raise HistorySchemaError(f"{kind}: missing snapshot digest")
    if not isinstance(record.get("source"), str):
        raise HistorySchemaError(f"{kind}: missing source path")
    if not isinstance(record.get("metrics"), dict):
        raise HistorySchemaError(f"{kind}: metrics must be a mapping")
    cell = record.get("cell")
    if RECORD_KINDS[kind]:
        if not isinstance(cell, dict) or "scheduler" not in cell:
            raise HistorySchemaError(
                f"{kind}: needs a cell mapping with a scheduler"
            )
    elif cell is not None and not isinstance(cell, dict):
        raise HistorySchemaError(f"{kind}: cell must be a mapping or null")


# -- family detection & extraction --------------------------------------------


def detect_family(path: PathLike) -> str:
    """Classify an artifact file into one of :data:`FAMILIES`.

    Raises ``ValueError`` for anything unrecognised (a trace JSONL, a
    series artifact, a manifest...) rather than guessing.
    """
    path = pathlib.Path(path)
    if path.suffix == ".jsonl":
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break
                kind = record.get("kind", "")
                if isinstance(kind, str) and (
                    kind.startswith("batch.") or kind.startswith("run.")
                ):
                    return "telemetry"
                break
        raise ValueError(
            f"{path}: not a telemetry stream (trace/series JSONL files "
            "are per-run artifacts; ingest the BENCH/ARENA/EXPLAIN "
            "payloads built from them instead)"
        )
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: artifact must be a JSON object")
    if "runs" in payload and (
        "schema_version" in payload or "bench_schema_version" in payload
    ):
        return "bench"
    if payload.get("kind") == "arena":
        return "arena"
    if payload.get("kind") == "explain":
        return "explain"
    raise ValueError(
        f"{path}: unrecognised artifact family (expected a BENCH, "
        "ARENA, or EXPLAIN payload, or a telemetry .jsonl stream)"
    )


def _record(
    kind: str,
    family: str,
    snapshot: str,
    source: str,
    *,
    created: typing.Optional[str],
    git_sha: typing.Optional[str],
    host: typing.Optional[str],
    cell: typing.Optional[typing.Dict[str, typing.Any]],
    metrics: typing.Dict[str, typing.Any],
) -> typing.Dict[str, typing.Any]:
    return {
        "history_schema_version": HISTORY_SCHEMA_VERSION,
        "kind": kind,
        "family": family,
        "snapshot": snapshot,
        "source": source,
        "created": created,
        "git_sha": git_sha,
        "host": host,
        "cell": cell,
        "metrics": metrics,
    }


def _bench_host(payload: typing.Mapping[str, typing.Any]) -> typing.Optional[str]:
    host = payload.get("host")
    if not isinstance(host, dict):
        return None
    machine = host.get("machine") or "?"
    python = host.get("python") or "?"
    return f"{machine}/py{python}"


def bench_records(
    payload: typing.Mapping[str, typing.Any],
    source: str,
    snapshot: str,
) -> typing.List[typing.Dict[str, typing.Any]]:
    """One ``bench.cell`` record per BENCH run row."""
    from repro.bench import validate_bench

    validate_bench(payload)
    records = []
    for row in payload["runs"]:
        workload = row["workload"]
        cell = {
            "scheduler": row["scheduler"],
            "workload": workload["kind"],
            "rate_tps": float(workload["rate_tps"]),
            "dd": int(row["dd"]),
            "seed": int(row["seed"]),
            "duration_ms": float(row["duration_ms"]),
        }
        metrics: typing.Dict[str, typing.Any] = {
            "events_per_s": row["events_per_s"],
            "events": row["events"],
            "wall_s": row["wall_s"],
            "wall_per_sim_s": row["wall_per_sim_s"],
            "throughput_tps": row.get("throughput_tps"),
            "maxrss_kb": row.get("maxrss_kb"),
        }
        records.append(_record(
            "bench.cell", "bench", snapshot, source,
            created=payload.get("created"),
            git_sha=payload.get("git_sha"),
            host=_bench_host(payload),
            cell=cell,
            metrics=metrics,
        ))
    return records


def arena_records(
    payload: typing.Mapping[str, typing.Any],
    source: str,
    snapshot: str,
) -> typing.List[typing.Dict[str, typing.Any]]:
    """One ``arena.cell`` record per ARENA cell."""
    from repro.analysis.arena import validate_arena

    validate_arena(dict(payload))
    records = []
    for row in payload["cells"]:
        cell = {
            "scheduler": row["scheduler"],
            "workload": row.get("workload"),
            "rate_tps": float(row["rate_tps"]),
            "dd": int(row["dd"]),
            "seed": int(row["seed"]),
            "duration_ms": row.get("duration_ms"),
        }
        metrics: typing.Dict[str, typing.Any] = {
            "throughput_tps": row["throughput_tps"],
            "mean_response_s": row["mean_response_s"],
            "p95_response_s": row["p95_response_s"],
            "abort_rate": row["abort_rate"],
        }
        budget = row.get("time_budget")
        if isinstance(budget, dict):
            fractions = budget.get("fractions", {})
            for bucket in ("queued", "blocked", "executing", "wasted"):
                metrics[f"{bucket}_share"] = fractions.get(bucket)
        records.append(_record(
            "arena.cell", "arena", snapshot, source,
            created=payload.get("created"),
            git_sha=payload.get("git_sha"),
            host=None,
            cell=cell,
            metrics=metrics,
        ))
    return records


def explain_records(
    payload: typing.Mapping[str, typing.Any],
    source: str,
    snapshot: str,
) -> typing.List[typing.Dict[str, typing.Any]]:
    """One ``explain.budget`` record for an EXPLAIN payload."""
    from repro.analysis.explain import validate_explain

    validate_explain(payload)
    meta = payload.get("source", {})
    cell = None
    if "scheduler" in meta:
        cell = {
            "scheduler": meta["scheduler"],
            "workload": meta.get("workload"),
            "rate_tps": meta.get("rate_tps"),
            "dd": meta.get("dd"),
            "seed": meta.get("seed"),
            "duration_ms": meta.get("duration_ms"),
        }
    budget = payload["budget"]
    fractions = budget.get("fractions", {})
    metrics: typing.Dict[str, typing.Any] = {
        "total_ms": budget.get("total_ms"),
        "makespan_ms": budget.get("makespan_ms"),
        "mean_response_ms": budget.get("mean_response_ms"),
        "transactions": budget.get("transactions"),
        "committed": budget.get("committed"),
        "restarts": budget.get("restarts"),
    }
    for bucket in ("queued", "blocked", "executing", "wasted"):
        metrics[f"{bucket}_share"] = fractions.get(bucket)
    return [_record(
        "explain.budget", "explain", snapshot, source,
        created=None,
        git_sha=None,
        host=None,
        cell=cell,
        metrics=metrics,
    )]


def telemetry_records(
    path: PathLike,
    source: str,
    snapshot: str,
) -> typing.List[typing.Dict[str, typing.Any]]:
    """One ``telemetry.peak`` record for a telemetry stream: the peak
    ``maxrss_kb`` high-water mark over every worker record, plus the
    batch identity and host set."""
    from repro.obs.telemetry import read_telemetry_records

    records, _ = read_telemetry_records(path, 0)
    if not records:
        raise ValueError(f"{source}: empty telemetry stream")
    peak: typing.Optional[int] = None
    batch = None
    cells: typing.Set[typing.Any] = set()
    hosts: typing.Set[str] = set()
    for record in records:
        if record.get("kind") == "batch.meta":
            batch = record.get("batch")
        if "cell" in record:
            cells.add(record["cell"])
        host = record.get("host")
        if isinstance(host, str):
            hosts.add(host)
        rss = record.get("maxrss_kb")
        if isinstance(rss, int) and (peak is None or rss > peak):
            peak = rss
    return [_record(
        "telemetry.peak", "telemetry", snapshot, source,
        created=None,
        git_sha=None,
        host=",".join(sorted(hosts)) or None,
        cell=None,
        metrics={
            "maxrss_kb": peak,
            "batch": batch,
            "records": len(records),
            "cells": len(cells),
        },
    )]


_EXTRACTORS = {
    "bench": bench_records,
    "arena": arena_records,
    "explain": explain_records,
}


def extract_records(
    path: PathLike,
    family: typing.Optional[str] = None,
) -> typing.Tuple[str, typing.List[typing.Dict[str, typing.Any]]]:
    """Classify ``path`` and extract its history records.

    Returns ``(family, records)``; every record is schema-validated
    before it is handed back.
    """
    path = pathlib.Path(path)
    if family is None or family == "auto":
        family = detect_family(path)
    elif family not in FAMILIES:
        raise ValueError(
            f"unknown artifact family {family!r}; known: {FAMILIES}"
        )
    snapshot = artifact_digest(path)
    source = str(path)
    if family == "telemetry":
        records = telemetry_records(path, source, snapshot)
    else:
        payload = json.loads(path.read_text(encoding="utf-8"))
        records = _EXTRACTORS[family](payload, source, snapshot)
    for record in records:
        validate_history_record(record)
    return family, records


# -- the store ----------------------------------------------------------------


class HistoryStore:
    """Append-only JSONL store of history records under one directory.

    Lines are only ever appended (one complete JSON object per
    ``write()``), so concurrent ingests from different processes never
    tear and a partially-written trailing line from a crash is reported
    with its line number rather than corrupting the whole store.
    """

    def __init__(self, root: PathLike = DEFAULT_STORE_DIR) -> None:
        self.root = pathlib.Path(root)
        self.path = self.root / STORE_FILENAME

    def records(self) -> typing.List[typing.Dict[str, typing.Any]]:
        """Every record, in append order, schema-checked on the way in."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise HistorySchemaError(
                        f"{self.path}:{number}: not JSON ({exc})"
                    ) from exc
                try:
                    validate_history_record(record)
                except HistorySchemaError as exc:
                    raise HistorySchemaError(
                        f"{self.path}:{number}: {exc}"
                    ) from exc
                records.append(record)
        return records

    def snapshots(self) -> typing.Set[str]:
        """The source-artifact digests already ingested."""
        return {record["snapshot"] for record in self.records()}

    def append(
        self, records: typing.Sequence[typing.Mapping[str, typing.Any]]
    ) -> int:
        """Validate and append ``records``; returns how many landed."""
        for record in records:
            validate_history_record(record)
        if not records:
            return 0
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def ingest(
        self,
        artifact: PathLike,
        family: typing.Optional[str] = None,
    ) -> typing.Dict[str, typing.Any]:
        """Ingest one artifact file, skipping already-seen digests.

        Returns ``{"family", "snapshot", "added", "skipped"}``.
        """
        digest = artifact_digest(artifact)
        if digest in self.snapshots():
            detected = family if family not in (None, "auto") else None
            return {
                "family": detected,
                "snapshot": digest,
                "added": 0,
                "skipped": True,
            }
        detected, records = extract_records(artifact, family=family)
        added = self.append(records)
        return {
            "family": detected,
            "snapshot": digest,
            "added": added,
            "skipped": False,
        }

    def __repr__(self) -> str:
        return f"<HistoryStore {self.path}>"
