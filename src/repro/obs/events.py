"""The trace event model: one flat record per observed occurrence.

Events are deliberately plain -- a simulation timestamp, a dotted
``kind`` string and a small dict of fields -- so that recording stays
cheap and every exporter (JSONL, Chrome trace, text summary) can walk
the same stream without isinstance dispatch.

Kinds are namespaced by subsystem:

``txn.*``
    Transaction lifecycle: ``arrive``, ``admit``, ``admit_reject``,
    ``lock_wait`` (wait begins), ``lock_acquired`` (wait ends),
    ``block`` / ``delay`` (one scheduler verdict each), ``step_start`` /
    ``step_end`` (the machine scan of one step), ``restart``,
    ``commit``, ``abort``.
``lock.*``
    Lock-table transitions per granule: ``grant``, ``release``.
``sched.*``
    Policy decisions: ``wtpg_fix`` (precedence-edge insertion),
    ``chain_test`` (GOW chain-form admission verdict), ``chain_order``
    (the serializable order W GOW committed to), ``kconflict`` (LOW's
    K-conflict admission verdict), ``e_eval`` (LOW's E(q) verdict),
    ``cycle_test`` (C2PL deadlock prediction), ``victim`` (plain 2PL
    deadlock victim), ``opt_validation`` (OPT certification outcome),
    ``dgcc_admit`` (DGCC batch membership), ``queue_assign`` /
    ``repartition`` (CAR queue placement and re-partition sweeps),
    ``conflict_pred`` (PRED admission score and verdict).
``node.*``
    Data-processing nodes: ``busy`` / ``idle`` transitions and
    ``queue`` depth changes.
``cn.*``
    Control node: ``exec_start`` / ``exec_end`` CPU slices (with the
    Table-1 cost category).
``res.*``
    Named DES resources: ``queue`` waiting-line depth changes.
``trace.*``
    Stream metadata: ``meta`` (schema version, run identity).
"""

from __future__ import annotations

import typing


class TraceEvent(typing.NamedTuple):
    """One observed occurrence at simulated time ``time`` (ms)."""

    time: float
    kind: str
    fields: typing.Dict[str, typing.Any]

    def to_record(self) -> typing.Dict[str, typing.Any]:
        """The flat JSON-ready form used by the JSONL exporter."""
        record: typing.Dict[str, typing.Any] = {"t": self.time, "kind": self.kind}
        record.update(self.fields)
        return record


#: every kind the instrumented simulator emits, mapped to the field
#: names each event must carry (the schema validator enforces this)
EVENT_KINDS: typing.Dict[str, typing.Tuple[str, ...]] = {
    "trace.meta": ("schema",),
    # -- transaction lifecycle --------------------------------------------
    "txn.arrive": ("txn", "label"),
    "txn.admit": ("txn",),
    "txn.admit_reject": ("txn",),
    "txn.lock_wait": ("txn", "file", "mode"),
    "txn.lock_acquired": ("txn", "file", "wait_ms"),
    "txn.block": ("txn", "file", "holders"),
    "txn.delay": ("txn", "file"),
    "txn.step_start": ("txn", "file", "step", "cost"),
    "txn.step_end": ("txn", "file", "step"),
    "txn.restart": ("txn", "new_txn", "reason"),
    "txn.commit": ("txn", "response_ms"),
    "txn.abort": ("txn", "reason"),
    # -- lock table -------------------------------------------------------
    "lock.grant": ("txn", "file", "mode"),
    "lock.release": ("txn", "file"),
    # -- scheduler decisions ----------------------------------------------
    "sched.wtpg_fix": ("src", "dst"),
    "sched.chain_test": ("txn", "ok"),
    "sched.chain_order": ("txn", "file", "consistent"),
    "sched.kconflict": ("txn", "ok"),
    "sched.e_eval": ("txn", "file", "e_q", "granted"),
    "sched.cycle_test": ("txn", "file", "deadlock"),
    "sched.victim": ("txn",),
    "sched.opt_validation": ("txn", "ok"),
    "sched.dgcc_admit": ("txn", "epoch", "batch"),
    "sched.queue_assign": ("txn", "queue"),
    "sched.repartition": ("live", "moved"),
    "sched.conflict_pred": ("txn", "score", "admitted"),
    # -- machine resources ------------------------------------------------
    "node.busy": ("node",),
    "node.idle": ("node",),
    "node.queue": ("node", "depth"),
    "cn.exec_start": ("category", "cost_ms"),
    "cn.exec_end": ("category",),
    "res.queue": ("name", "depth"),
}


def event_kinds() -> typing.Tuple[str, ...]:
    """All known kinds, sorted (documentation/validation helper)."""
    return tuple(sorted(EVENT_KINDS))
