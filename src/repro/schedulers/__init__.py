"""Scheduler families beyond the paper's six.

The paper's schedulers live in :mod:`repro.core` (they *are* the paper's
contribution); this package collects the policies added on top:

- :mod:`repro.schedulers.modern` -- three post-1991 scheduler families
  (dependency-graph batch execution, conflict-aware reordering and
  conflict-prediction admission) registered alongside the paper's
  line-up in :mod:`repro.core.registry`.
"""

from repro.schedulers.modern import (
    ConflictPredictScheduler,
    ConflictReorderScheduler,
    DGCCScheduler,
)

__all__ = [
    "ConflictPredictScheduler",
    "ConflictReorderScheduler",
    "DGCCScheduler",
]
