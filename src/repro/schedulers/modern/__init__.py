"""Modern scheduler families, registered alongside the paper's line-up.

Importing this package registers three post-1991 policies in
:mod:`repro.core.registry` under the ``modern`` family:

``DGCC``
    Dependency-graph batch execution (arXiv:1503.03642): seal admitted
    batches, compile declared access sets into dependency graphs, run
    the conflict-free components in parallel.
``CAR``
    Conflict-aware reordering (arXiv:1810.01997): greedy conflict-graph
    partitioning of the ready set into serial execution queues, with
    contention-triggered re-partition.
``PRED``
    Conflict-prediction admission (arXiv:2409.01675): learn per-file
    conflict rates online and defer admissions whose declared sets look
    hot.

Parameterised forms (``DGCC(B=n)``, ``CAR(Q=n)``, ``PRED(T=x)``) are
resolved by :func:`repro.core.registry.create` directly.
"""

from __future__ import annotations

from repro.core import registry
from repro.schedulers.modern.base import DeclaredOrderScheduler
from repro.schedulers.modern.dgcc import DGCCScheduler
from repro.schedulers.modern.predict import ConflictPredictScheduler
from repro.schedulers.modern.reorder import ConflictReorderScheduler

__all__ = [
    "ConflictPredictScheduler",
    "ConflictReorderScheduler",
    "DGCCScheduler",
    "DeclaredOrderScheduler",
]


def _register() -> None:
    """Idempotent registration (safe under repeated package imports)."""
    if "DGCC" in registry.available():
        return
    registry.register(
        "DGCC",
        DGCCScheduler,
        family="modern",
        description="Dependency-graph batch execution over declared "
        "access sets (B=8)",
    )
    registry.register(
        "CAR",
        ConflictReorderScheduler,
        family="modern",
        description="Conflict-aware reordering into serial execution "
        "queues (Q=4)",
    )
    registry.register(
        "PRED",
        ConflictPredictScheduler,
        family="modern",
        description="Online conflict-prediction admission control "
        "(T=0.5)",
    )


_register()
