"""Shared engine for the modern schedulers: admission-order granting.

All three modern policies (DGCC batches, conflict-aware reordering,
conflict-prediction admission) differ in *when* they let a transaction
run, but they resolve conflicts with the same rule: a lock is granted
only when no **live transaction admitted earlier** declared a
conflicting access to the same file.  Because batch transactions declare
their full access sets up front (the paper's Section 2 workload model),
this rule is decidable at request time from declarations alone.

Why the rule is safe:

- *Deadlock freedom.*  Every wait points at a transaction with a lower
  admission order.  Delays do by construction; so do blocks, because a
  conflicting lock holder either was admitted before the requester, or
  was granted the lock while the requester was live -- which the rule
  permits only for earlier admissions.  Waits-for therefore embeds into
  the admission order and cannot cycle, and the lowest-order live
  transaction always progresses.
- *Serializability.*  Conflicting accesses execute strictly in admission
  order, so every history is conflict-equivalent to the serial history
  in admission order.  The :class:`~repro.sim.audit.SerializabilityAuditor`
  double-checks this claim empirically on every audited run.
"""

from __future__ import annotations

import typing

from repro.core.base import Scheduler
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class DeclaredOrderScheduler(Scheduler):
    """Scheduler base that tracks live declarations in admission order."""

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        #: admission sequence number (the conflict-resolution order)
        self._admit_seq = 0
        #: admission order of each live transaction
        self._order: typing.Dict[int, int] = {}
        #: live transactions by id
        self._live: typing.Dict[int, BatchTransaction] = {}
        #: per-file declaration index: file -> {txn_id: declared mode}
        self._declared: typing.Dict[int, typing.Dict[int, AccessMode]] = {}

    # -- bookkeeping -------------------------------------------------------

    def _order_admit(self, txn: BatchTransaction) -> int:
        """Record a newly admitted transaction; returns its order."""
        order = self._admit_seq
        self._admit_seq += 1
        self._order[txn.txn_id] = order
        self._live[txn.txn_id] = txn
        for file_id in txn.files:
            self._declared.setdefault(file_id, {})[txn.txn_id] = (
                txn.mode_for(file_id)
            )
        return order

    def _order_forget(self, txn: BatchTransaction) -> None:
        """Drop a committed/aborted transaction from the index."""
        self._live.pop(txn.txn_id, None)
        self._order.pop(txn.txn_id, None)
        for file_id in txn.files:
            declarers = self._declared.get(file_id)
            if declarers is not None:
                declarers.pop(txn.txn_id, None)
                if not declarers:
                    del self._declared[file_id]

    # -- the grant rule ----------------------------------------------------

    def _has_conflict_predecessor(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> bool:
        """True iff a live earlier-admitted transaction declared a
        conflicting access to ``file_id`` (the requester must wait)."""
        my_order = self._order[txn.txn_id]
        for other_id, other_mode in self._declared.get(file_id, {}).items():
            if other_id == txn.txn_id:
                continue
            if (
                self._order[other_id] < my_order
                and other_mode.conflicts_with(mode)
            ):
                return True
        return False

    def _declared_conflict_files(
        self, txn: BatchTransaction
    ) -> typing.List[int]:
        """The files of ``txn`` on which some live transaction declared a
        conflicting access (sorted; used for conflict scoring)."""
        hot: typing.List[int] = []
        for file_id in txn.files:
            mode = txn.mode_for(file_id)
            for other_id, other_mode in self._declared.get(file_id, {}).items():
                if other_id != txn.txn_id and other_mode.conflicts_with(mode):
                    hot.append(file_id)
                    break
        return hot

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        self._order_forget(txn)
        return
        yield  # pragma: no cover - generator marker
