"""Conflict-prediction admission scheduling (arXiv:2409.01675).

The third modern family learns where contention lives and keeps likely
losers out of the mix: an online model estimates, per file, how likely
an access to that file is to run into a conflict, and admission defers
transactions whose declared set looks too hot right now.  This exploits
exactly the access declarations the paper's workload model provides (and
whose accuracy exp3's Gaussian-error model perturbs).

Mechanics:

- **Per-file learning.**  Each file keeps two counters: transactions
  that declared it and completed, and transactions that suffered at
  least one scheduler wait (block or delay) on it.  The conflict
  probability estimate is Laplace-smoothed::

      p(f) = (conflicts(f) + 1) / (completions(f) + 2)

  Waits are counted at most once per (transaction, file), so a long
  badly-placed wait that re-evaluates many times is one observation,
  not many.
- **Pairwise likelihood at admission.**  For each declared file that
  some live transaction declared conflictingly, the newcomer risks an
  independent conflict with probability ``p(f)``; the overall predicted
  conflict likelihood is ``1 - prod(1 - p(f))`` over those files.  Above
  ``threshold``, admission is deferred until a commit changes the
  picture -- at most ``max_defers`` times, after which the transaction
  is admitted regardless (starvation cap).
- **Execution.**  Admitted transactions run under the admission-order
  grant rule (:class:`~repro.schedulers.modern.base.DeclaredOrderScheduler`),
  so the predictor only shapes the mix; serializability and deadlock
  freedom never depend on its accuracy.

The model is pure counting -- no wall clock, no randomness -- so runs
remain byte-deterministic.  Every decision costs ``ddtime_ms`` of CN
CPU.
"""

from __future__ import annotations

import typing

from repro.core.base import Decision
from repro.obs.timeseries import gauge, size_hist
from repro.schedulers.modern.base import DeclaredOrderScheduler
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class ConflictPredictScheduler(DeclaredOrderScheduler):
    """Admission control driven by learned per-file conflict rates."""

    name = "PRED"

    def __init__(
        self,
        *args: typing.Any,
        threshold: float = 0.5,
        max_defers: int = 3,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        if max_defers < 0:
            raise ValueError(f"max_defers must be >= 0, got {max_defers}")
        self.threshold = threshold
        self.max_defers = max_defers
        #: file -> completed transactions that declared it
        self._completions: typing.Dict[int, int] = {}
        #: file -> transactions that waited on it at least once
        self._conflicts: typing.Dict[int, int] = {}
        #: files already counted as conflicted, per live transaction
        self._counted: typing.Dict[int, typing.Set[int]] = {}
        #: deferrals suffered so far by each waiting transaction
        self._defers: typing.Dict[int, int] = {}
        #: total deferrals issued (for the probe catalogue)
        self._defers_total = 0

    # -- the model ---------------------------------------------------------

    def conflict_probability(self, file_id: int) -> float:
        """Laplace-smoothed estimate that an access to ``file_id`` waits."""
        conflicts = self._conflicts.get(file_id, 0)
        completions = self._completions.get(file_id, 0)
        return (conflicts + 1) / (completions + 2)

    def conflict_score(self, txn: BatchTransaction) -> float:
        """Predicted likelihood that ``txn`` conflicts with the live mix:
        ``1 - prod(1 - p(f))`` over its currently-contested files."""
        survival = 1.0
        for file_id in self._declared_conflict_files(txn):
            survival *= 1.0 - self.conflict_probability(file_id)
        return 1.0 - survival

    def _record_wait(self, txn: BatchTransaction, file_id: int) -> None:
        counted = self._counted.setdefault(txn.txn_id, set())
        if file_id not in counted:
            counted.add(file_id)
            self._conflicts[file_id] = self._conflicts.get(file_id, 0) + 1

    # -- admission: defer likely losers ------------------------------------

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-pred")
        score = self.conflict_score(txn)
        defers = self._defers.get(txn.txn_id, 0)
        admitted = score <= self.threshold or defers >= self.max_defers
        if self._trace.enabled:
            self._trace.emit(
                self.env.now,
                "sched.conflict_pred",
                txn=txn.txn_id,
                score=round(score, 6),
                admitted=admitted,
            )
        if not admitted:
            self._defers[txn.txn_id] = defers + 1
            self._defers_total += 1
            return False
        self._defers.pop(txn.txn_id, None)
        self._order_admit(txn)
        return True

    # -- execution: admission-order granting, with learning ----------------

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-pred")
        if not self.lock_table.is_compatible(file_id, mode):
            self._record_wait(txn, file_id)
            return Decision.BLOCK
        if self._has_conflict_predecessor(txn, file_id, mode):
            self._record_wait(txn, file_id)
            return Decision.DELAY
        self._grant_lock(txn, file_id, mode)
        return Decision.GRANT

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        yield from super()._on_commit(txn)
        for file_id in txn.files:
            self._completions[file_id] = (
                self._completions.get(file_id, 0) + 1
            )
        self._counted.pop(txn.txn_id, None)

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Base catalogue plus model size and deferral pressure."""
        probes = super().timeseries_probes()
        probes["sched.pred_files"] = {
            "probe": gauge(lambda: len(self._completions)),
            "unit": "files",
            "hist": size_hist(),
        }
        probes["sched.pred_defers.cum"] = {
            "probe": gauge(lambda: self._defers_total),
            "unit": "txn",
        }
        return probes
