"""DGCC-style dependency-graph batch execution (arXiv:1503.03642).

Yao et al.'s Dependency-Graph-based Concurrency Control separates
contention resolution from execution: transactions are grouped into
batches, each batch's declared access sets are compiled into dependency
graphs, and execution then simply follows the graphs -- no locks are
negotiated at run time, and non-conflicting subgraphs execute fully in
parallel.

This scheduler transplants the idea onto the paper's machine model, as a
natural evolution of the WTPG family:

- **Batch formation.**  Arrivals join the currently-forming batch until
  it holds ``batch_size`` members; a full batch *seals* and later
  arrivals wait until every member has committed, at which point the
  next epoch opens.  (An unfilled batch keeps admitting, so light loads
  never stall waiting for a quorum.)
- **Graph construction.**  Admission records the newcomer's declared
  access set in per-file declaration queues; the dependency order
  within the batch is the admission order.  The conflict graph over the
  batch decomposes into connected components
  (:meth:`DGCCScheduler.dependency_components`) -- transactions in
  different components share no declared file and proceed with no
  interaction whatsoever.
- **Graph-parallel execution.**  A lock request is granted iff it is
  compatible with the lock table *and* no live batch member admitted
  earlier declared a conflicting access to the same file
  (:class:`~repro.schedulers.modern.base.DeclaredOrderScheduler`);
  otherwise the requester waits for its graph predecessors to commit.
  Grants follow the compiled order exactly, so execution is
  deadlock-free and conflict-equivalent to the admission order.

Each admission and each grant evaluation costs ``ddtime_ms`` of CN CPU
(the same Table-1 bookkeeping charge C2PL pays per deadlock test).
"""

from __future__ import annotations

import typing

from repro.core.base import Decision
from repro.obs.timeseries import gauge, size_hist
from repro.schedulers.modern.base import DeclaredOrderScheduler
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class DGCCScheduler(DeclaredOrderScheduler):
    """Dependency-graph batch execution over declared access sets."""

    name = "DGCC"

    def __init__(
        self,
        *args: typing.Any,
        batch_size: int = 8,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        #: a sealed batch admits nobody until it has fully committed
        self._sealed = False
        #: completed epochs (batches fully committed)
        self._epoch = 0

    # -- admission: batch formation ---------------------------------------

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-dgcc")
        if self._live and self._sealed:
            return False  # the sealed batch is still draining
        self._order_admit(txn)
        if len(self._live) >= self.batch_size:
            self._sealed = True
        if self._trace.enabled:
            self._trace.emit(
                self.env.now,
                "sched.dgcc_admit",
                txn=txn.txn_id,
                epoch=self._epoch,
                batch=len(self._live),
            )
        return True

    # -- execution: follow the dependency graph ----------------------------

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-dgcc")
        if not self.lock_table.is_compatible(file_id, mode):
            return Decision.BLOCK
        if self._has_conflict_predecessor(txn, file_id, mode):
            # a graph predecessor has not finished with the file yet
            return Decision.DELAY
        self._grant_lock(txn, file_id, mode)
        return Decision.GRANT

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        yield from super()._on_commit(txn)
        if not self._live:
            self._sealed = False  # the epoch drained; the next one may open
            self._epoch += 1

    # -- the dependency graphs --------------------------------------------

    def dependency_components(self) -> typing.List[typing.FrozenSet[int]]:
        """The batch's conflict-free partition, as sets of txn ids.

        Components are the connected components of the shared-declared-
        file graph over live batch members: two transactions in
        *different* components never declared the same file, so the
        components execute with no interaction.  Ordered by the lowest
        admission order they contain.
        """
        parent = {txn_id: txn_id for txn_id in self._live}

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:  # path compression
                parent[node], node = root, parent[node]
            return root

        for declarers in self._declared.values():
            ids = iter(declarers)
            first = find(next(ids))
            for other in ids:
                parent[find(other)] = first
        groups: typing.Dict[int, typing.Set[int]] = {}
        for txn_id in self._live:
            groups.setdefault(find(txn_id), set()).add(txn_id)
        return sorted(
            (frozenset(members) for members in groups.values()),
            key=lambda c: min(self._order[t] for t in c),
        )

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Base catalogue plus batch occupancy and graph decomposition."""
        probes = super().timeseries_probes()
        probes["sched.dgcc_batch"] = {
            "probe": gauge(lambda: len(self._live)),
            "unit": "txn",
            "hist": size_hist(),
        }
        probes["sched.dgcc_components"] = {
            "probe": gauge(lambda: len(self.dependency_components())),
            "unit": "graphs",
            "hist": size_hist(),
        }
        probes["sched.dgcc_epochs.cum"] = {
            "probe": gauge(lambda: self._epoch),
            "unit": "batches",
        }
        return probes
