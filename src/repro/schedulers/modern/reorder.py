"""Conflict-aware batch reordering / queue assignment (arXiv:1810.01997).

Prasaad et al. show that under high contention it pays to *reorder*
transactions before running them: partition the ready set by its
conflict graph so that conflicting transactions land in the same
execution queue (where they run serially, never fighting) while the
queues themselves stay mutually low-contention and run in parallel.

Transplanted onto the paper's machine model:

- **Queue assignment.**  Admission greedily places the newcomer in the
  queue holding the most transactions it declares conflicts with
  (co-locating contention), breaking ties toward the shortest queue and
  then the lowest index -- the standard greedy heuristic for conflict-
  graph partitioning.
- **Serial-per-queue dispatch.**  A transaction may begin executing only
  while it holds the lowest admission order among its queue's live
  members; once started it runs to commit exempt from the gate.  Queues
  therefore drain serially while distinct queues overlap freely.
- **Contention-triggered re-partition.**  Every DELAY verdict is
  evidence the partition has gone stale.  After ``repartition_after``
  of them, all *not-yet-started* transactions are redistributed with the
  same greedy rule, in admission order (started transactions keep their
  locks and are left alone, so re-partition is always safe).

Conflicts are still resolved by the admission-order grant rule
(:class:`~repro.schedulers.modern.base.DeclaredOrderScheduler`), so the
queues are purely a performance policy: serializability and deadlock
freedom do not depend on the partition being good -- or even sane.
Every decision costs ``ddtime_ms`` of CN CPU.
"""

from __future__ import annotations

import typing

from repro.core.base import Decision
from repro.obs.timeseries import gauge, size_hist
from repro.schedulers.modern.base import DeclaredOrderScheduler
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class ConflictReorderScheduler(DeclaredOrderScheduler):
    """Greedy conflict-graph partitioning into execution queues."""

    name = "CAR"

    def __init__(
        self,
        *args: typing.Any,
        num_queues: int = 4,
        repartition_after: int = 64,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if num_queues < 1:
            raise ValueError(f"num_queues must be >= 1, got {num_queues}")
        if repartition_after < 1:
            raise ValueError(
                f"repartition_after must be >= 1, got {repartition_after}"
            )
        self.num_queues = num_queues
        self.repartition_after = repartition_after
        #: live members of each execution queue
        self._queues: typing.List[typing.Set[int]] = [
            set() for _ in range(num_queues)
        ]
        #: queue index of each live transaction
        self._queue_of: typing.Dict[int, int] = {}
        #: transactions that have begun executing (gate-exempt)
        self._started: typing.Set[int] = set()
        #: DELAY verdicts since the last re-partition
        self._stale_evidence = 0
        #: completed re-partitions
        self._repartitions = 0

    # -- greedy conflict co-location ---------------------------------------

    def _pick_queue(self, txn: BatchTransaction) -> int:
        """The queue with the most declared conflicts against ``txn``
        (ties: shortest queue, then lowest index)."""
        best, best_key = 0, None
        for index, members in enumerate(self._queues):
            conflicts = sum(
                1
                for other_id in members
                if self._live[other_id].conflicts_with(txn)
            )
            key = (-conflicts, len(members), index)
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-car")
        queue = self._pick_queue(txn)
        self._order_admit(txn)
        self._queues[queue].add(txn.txn_id)
        self._queue_of[txn.txn_id] = queue
        if self._trace.enabled:
            self._trace.emit(
                self.env.now,
                "sched.queue_assign",
                txn=txn.txn_id,
                queue=queue,
            )
        return True

    # -- serial-per-queue dispatch + admission-order granting --------------

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-car")
        txn_id = txn.txn_id
        if txn_id not in self._started:
            my_order = self._order[txn_id]
            for other_id in self._queues[self._queue_of[txn_id]]:
                if other_id != txn_id and self._order[other_id] < my_order:
                    # a queue-mate is ahead of us: ordinary serial-queue
                    # waiting, not partition staleness
                    return Decision.DELAY
            self._started.add(txn_id)
        if not self.lock_table.is_compatible(file_id, mode):
            return Decision.BLOCK
        if self._has_conflict_predecessor(txn, file_id, mode):
            return self._stale()
        self._grant_lock(txn, file_id, mode)
        return Decision.GRANT

    def _stale(self) -> Decision:
        """Count a DELAY as partition-staleness evidence; re-partition
        once enough has accumulated."""
        self._stale_evidence += 1
        if self._stale_evidence >= self.repartition_after:
            self._repartition()
        return Decision.DELAY

    def _repartition(self) -> None:
        """Redistribute every not-yet-started live transaction with the
        greedy rule, in admission order.  Started transactions stay put,
        so the move never invalidates a dispatch decision already made."""
        self._stale_evidence = 0
        self._repartitions += 1
        pending = sorted(
            (t for t in self._live if t not in self._started),
            key=self._order.__getitem__,
        )
        before = {t: self._queue_of.pop(t) for t in pending}
        for txn_id, queue in before.items():
            self._queues[queue].discard(txn_id)
        moved = 0
        for txn_id in pending:
            queue = self._pick_queue(self._live[txn_id])
            self._queues[queue].add(txn_id)
            self._queue_of[txn_id] = queue
            if queue != before[txn_id]:
                moved += 1
        if self._trace.enabled:
            self._trace.emit(
                self.env.now,
                "sched.repartition",
                live=len(self._live),
                moved=moved,
            )

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        yield from super()._on_commit(txn)
        queue = self._queue_of.pop(txn.txn_id, None)
        if queue is not None:
            self._queues[queue].discard(txn.txn_id)
        self._started.discard(txn.txn_id)

    def queue_snapshot(self) -> typing.List[typing.FrozenSet[int]]:
        """Current queue membership (txn ids), for tests and reports."""
        return [frozenset(members) for members in self._queues]

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Base catalogue plus queue skew and re-partition activity."""
        probes = super().timeseries_probes()
        probes["sched.car_queue_max"] = {
            "probe": gauge(
                lambda: max(len(members) for members in self._queues)
            ),
            "unit": "txn",
            "hist": size_hist(),
        }
        probes["sched.car_started"] = {
            "probe": gauge(lambda: len(self._started)),
            "unit": "txn",
            "hist": size_hist(),
        }
        probes["sched.car_repartitions.cum"] = {
            "probe": gauge(lambda: self._repartitions),
            "unit": "sweeps",
        }
        return probes
