"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``         -- one simulation (scheduler, workload, rate, DD...).
- ``trace``       -- one simulation with tracing on: JSONL artifact,
  optional Chrome/Perfetto trace, terminal summary.
- ``sweep``       -- a scheduler x rate grid through the parallel runner
  (worker pool + result cache + run manifest; ``--trace`` captures a
  per-run trace artifact, ``--timeseries`` a sampled-series artifact).
- ``report``      -- terminal sparkline view of a series artifact.
- ``bench``       -- the pinned perf matrix -> ``BENCH_<date>.json``;
  ``--compare A B`` diffs two artifacts and fails on speed *or* memory
  regressions.
- ``history``     -- the longitudinal metrics history store:
  ``ingest`` artifacts (BENCH/ARENA/EXPLAIN payloads, telemetry
  streams) into ``results/history/``, ``report`` renders the
  ``HISTORY.{json,md}`` trend dashboard, ``check`` exits non-zero on a
  confirmed regression against the trailing window.
- ``watch``       -- live console view of a telemetry-enabled batch
  (``--once`` renders a single frame, for CI).
- ``runs``        -- ``list``/``show`` the persistent run registry.
- ``tail``        -- follow a batch's telemetry stream, one line per
  record, validating each against the telemetry schema.
- ``arena``       -- the pinned scheduler x rate x DD head-to-head
  matrix through the cached runner -> ``results/arena/ARENA.{json,md}``.
- ``explain``     -- causal time attribution of a traced run (or every
  traced run of a registry batch): span timelines, batch time budget,
  lock hotspots, the makespan critical path and anomaly flags ->
  ``EXPLAIN.{json,md}``.
- ``backends``    -- list the registered executor backends with their
  capability flags (``sweep``/``bench``/``arena`` select one with
  ``--backend``).
- ``cache``       -- result-cache stats, with optional age/count
  pruning (``--max-age-days`` / ``--max-entries`` / ``--dry-run``).
- ``worker-pool`` -- serve a shared-dir spool: claim queued runs,
  execute them, write results back (the multi-host worker side of
  ``sweep --backend shared-dir``).
- ``schedulers``  -- list the registered schedulers with family tags
  (paper / extension / modern) and descriptions.
- ``experiments`` -- list the paper's tables/figures and how to run them.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time
import typing

from repro import bench as bench_mod
from repro.analysis import arena as arena_mod
from repro.analysis import explain as explain_mod
from repro.analysis import render_table
from repro.analysis import trends as trends_mod
from repro.obs import history as history_mod
from repro.core.registry import available, entries
from repro.machine.config import MachineConfig
from repro.obs import (
    MemoryRecorder,
    TelemetrySchemaError,
    TimeSeriesSampler,
    fold_trace_path,
    format_telemetry_record,
    load_series_json,
    read_status,
    read_telemetry_records,
    render_series_report,
    render_status,
    render_summary,
    validate_jsonl,
    validate_telemetry_event,
    write_chrome_trace,
    write_jsonl,
    write_series_csv,
    write_series_json,
)
from repro.obs.schema import TraceSchemaError
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunRegistry,
    RunSpec,
    WorkloadSpec,
    backend_names,
    execute_spec,
    get_backend_info,
    janitor_sweep,
    worker_pool_loop,
)
from repro.runner.runner import _git_sha
from repro.runner.worker import trace_artifact_path
from repro.sim.simulation import run_simulation
from repro.txn.workload import (
    experiment1_workload,
    experiment2_workload,
    experiment3_workload,
)

_EXPERIMENT_HELP = [
    ("fig8", "arrival rate vs mean response time (Exp. 1, DD=1)"),
    ("table2", "throughput at RT=70s vs NumFiles (Exp. 1, DD=1)"),
    ("fig9", "throughput at RT=70s vs DD (Exp. 1)"),
    ("table3", "response time at 1.2 TPS vs DD, incl. C2PL+M (Exp. 1)"),
    ("fig10", "response-time speedup vs DD at 1.2 TPS (Exp. 1)"),
    ("fig11", "speedup (DD=1 to 4) vs arrival rate (Exp. 1)"),
    ("table4", "hot-set throughput and response time vs DD (Exp. 2)"),
    ("fig12", "hot-set speedup vs DD at 1.2 TPS (Exp. 2)"),
    ("fig13", "throughput at RT=70s vs declaration error (Exp. 3)"),
    ("table5", "sensitivity degradation ratio (Exp. 3)"),
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Batch-transaction scheduling on a shared-nothing database "
            "machine (Ohmori/Kitsuregawa/Tanaka, ICDE 1991)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    _add_single_run_args(run)
    run.add_argument("--series", default="",
                     help="sample trajectories and write this series JSON "
                          "('' disables)")
    run.add_argument("--series-csv", default="",
                     help="also write the samples as long-format CSV")
    run.add_argument("--sample-interval", type=float, default=1_000.0,
                     help="series sample interval in simulated ms "
                          "(default 1000)")

    trc = sub.add_parser(
        "trace",
        help="run one traced simulation and export the trace artifacts",
    )
    _add_single_run_args(trc)
    trc.add_argument("--jsonl", default="trace.jsonl",
                     help="JSONL trace output ('' disables; default "
                          "trace.jsonl)")
    trc.add_argument("--chrome", default="",
                     help="Chrome/Perfetto trace JSON output ('' disables)")
    trc.add_argument("--top", type=int, default=5,
                     help="rows per summary section (default 5)")
    trc.add_argument("--max-events", type=int, default=None,
                     help="cap buffered events; extra ones are dropped")

    swp = sub.add_parser(
        "sweep",
        help="scheduler x rate grid via the parallel runner (cached)",
    )
    swp.add_argument(
        "schedulers",
        help="comma-separated scheduler names, e.g. LOW,GOW,C2PL",
    )
    swp.add_argument("--rates", default="0.4,0.8,1.2",
                     help="comma-separated arrival rates in TPS")
    swp.add_argument("--workload", choices=("exp1", "exp2", "exp3"),
                     default="exp1")
    swp.add_argument("--dd", type=int, default=1)
    swp.add_argument("--num-files", type=int, default=16)
    swp.add_argument("--num-nodes", type=int, default=8)
    swp.add_argument("--mpl", type=int, default=None)
    swp.add_argument("--sigma", type=float, default=1.0)
    swp.add_argument("--duration", type=float, default=400_000)
    swp.add_argument("--warmup", type=float, default=50_000)
    swp.add_argument("--seed", type=int, default=0)
    swp.add_argument("--pool", type=int, default=None,
                     help="worker processes (default: CPU count)")
    swp.add_argument("--cache-dir", default="results/cache",
                     help="result cache root ('' disables caching)")
    swp.add_argument("--runs-dir", default="results/runs",
                     help="run-manifest directory ('' disables manifests)")
    swp.add_argument("--metric", choices=("rt", "tps"), default="rt",
                     help="report mean response (s) or throughput (TPS)")
    swp.add_argument("--trace", action="store_true",
                     help="capture a JSONL trace artifact per run")
    swp.add_argument("--traces-dir", default="results/traces",
                     help="trace artifact directory (default results/traces)")
    swp.add_argument("--timeseries", action="store_true",
                     help="capture a sampled time-series artifact per run")
    swp.add_argument("--series-dir", default="results/series",
                     help="series artifact directory (default results/series)")
    swp.add_argument("--telemetry", action="store_true",
                     help="emit live telemetry (telemetry.jsonl + "
                          "status.json under --runs-dir; view with "
                          "'repro watch')")
    swp.add_argument("--stall-timeout", type=float, default=None,
                     help="seconds without a worker heartbeat before the "
                          "cell counts as stalled and is killed/retried "
                          "(telemetry only; default: no stall detection)")
    _add_backend_args(swp)

    rpt = sub.add_parser(
        "report",
        help="terminal sparkline report of a time-series artifact",
    )
    rpt.add_argument("series", help="a *.series.json artifact to render")
    rpt.add_argument("--width", type=int, default=48,
                     help="sparkline width in cells (default 48)")
    rpt.add_argument("--explain", default="",
                     help="also fold this trace JSONL artifact and lead "
                          "with its time-budget headline ('' disables)")

    ben = sub.add_parser(
        "bench",
        help="run the pinned perf matrix (or --compare two artifacts)",
    )
    ben.add_argument("--compare", nargs=2, metavar=("BASELINE", "CURRENT"),
                     default=None,
                     help="diff two BENCH_*.json files instead of running")
    ben.add_argument("--tolerance", type=float,
                     default=bench_mod.DEFAULT_TOLERANCE,
                     help="regression tolerance as a fraction "
                          f"(default {bench_mod.DEFAULT_TOLERANCE})")
    ben.add_argument("--mem-tolerance", type=float,
                     default=bench_mod.DEFAULT_MEM_TOLERANCE,
                     help="peak-RSS growth tolerance for --compare "
                          f"(default {bench_mod.DEFAULT_MEM_TOLERANCE})")
    ben.add_argument("--out", default="results/bench",
                     help="artifact directory (default results/bench)")
    ben.add_argument("--output", default="",
                     help="exact artifact path (overrides --out naming)")
    ben.add_argument("--duration", type=float,
                     default=bench_mod.DEFAULT_DURATION_MS,
                     help="simulated ms per cell "
                          f"(default {bench_mod.DEFAULT_DURATION_MS:g})")
    ben.add_argument("--seed", type=int, default=0)
    ben.add_argument("--quick", action="store_true",
                     help="run the reduced 9-cell per-PR matrix instead "
                          "of the full 32-cell one")
    ben.add_argument("--repeats", type=int, default=3,
                     help="simulate each cell N times, report the fastest "
                          "(default 3; the noise filter)")
    ben.add_argument("--pool", type=int, default=1,
                     help="worker processes (default 1: serial runs give "
                          "the stablest wall-clock numbers)")
    ben.add_argument("--telemetry", action="store_true",
                     help="emit live telemetry for the bench batch")
    ben.add_argument("--runs-dir", default="results/runs",
                     help="registry/telemetry directory used with "
                          "--telemetry (default results/runs)")
    _add_backend_args(ben)

    his = sub.add_parser(
        "history",
        help="longitudinal metrics history: ingest/report/check",
    )
    his_sub = his.add_subparsers(dest="history_command")
    his_ing = his_sub.add_parser(
        "ingest",
        help="append artifacts to the history store (dedup by digest)",
    )
    his_ing.add_argument(
        "artifacts", nargs="+",
        help="BENCH/ARENA/EXPLAIN JSON payloads or telemetry .jsonl "
             "streams (family auto-detected)")
    his_ing.add_argument("--store", default=history_mod.DEFAULT_STORE_DIR,
                         help="store directory "
                              f"(default {history_mod.DEFAULT_STORE_DIR})")
    his_ing.add_argument("--family", default="auto",
                         choices=("auto",) + history_mod.FAMILIES,
                         help="override artifact family detection")
    his_rep = his_sub.add_parser(
        "report",
        help="render the HISTORY.{json,md} trend dashboard",
    )
    his_chk = his_sub.add_parser(
        "check",
        help="exit non-zero on a confirmed regression vs the trailing "
             "window",
    )
    for his_common in (his_rep, his_chk):
        his_common.add_argument(
            "--store", default=history_mod.DEFAULT_STORE_DIR,
            help="store directory "
                 f"(default {history_mod.DEFAULT_STORE_DIR})")
        his_common.add_argument(
            "--tolerance", type=float,
            default=bench_mod.DEFAULT_TOLERANCE,
            help="speed regression tolerance "
                 f"(default {bench_mod.DEFAULT_TOLERANCE})")
        his_common.add_argument(
            "--mem-tolerance", type=float,
            default=bench_mod.DEFAULT_MEM_TOLERANCE,
            help="memory growth tolerance "
                 f"(default {bench_mod.DEFAULT_MEM_TOLERANCE})")
        his_common.add_argument(
            "--window", type=int,
            default=trends_mod.DEFAULT_WINDOW,
            help="trailing snapshots forming the baseline "
                 f"median (default {trends_mod.DEFAULT_WINDOW})")
    his_rep.add_argument("--out", default="",
                         help="directory for HISTORY.json/HISTORY.md "
                              "(default: the store directory)")
    his_rep.add_argument("--width", type=int, default=24,
                         help="sparkline width in cells (default 24)")

    wch = sub.add_parser(
        "watch",
        help="live console view of a telemetry-enabled batch",
    )
    wch.add_argument("batch", nargs="?", default="latest",
                     help="batch id, unique prefix, or 'latest' (default)")
    wch.add_argument("--runs-dir", default="results/runs",
                     help="registry directory (default results/runs)")
    wch.add_argument("--interval", type=float, default=1.0,
                     help="refresh interval in seconds (default 1.0)")
    wch.add_argument("--once", action="store_true",
                     help="render a single frame and exit (for CI)")

    rns = sub.add_parser(
        "runs",
        help="inspect the persistent run registry (list/show)",
    )
    rns_sub = rns.add_subparsers(dest="runs_command")
    rns_list = rns_sub.add_parser("list", help="one line per batch")
    rns_list.add_argument("--runs-dir", default="results/runs",
                          help="registry directory (default results/runs)")
    rns_show = rns_sub.add_parser("show", help="full record of one batch")
    rns_show.add_argument("batch", nargs="?", default="latest",
                          help="batch id, unique prefix, or 'latest'")
    rns_show.add_argument("--runs-dir", default="results/runs",
                          help="registry directory (default results/runs)")

    tal = sub.add_parser(
        "tail",
        help="follow a batch's telemetry stream (schema-validating)",
    )
    tal.add_argument("batch", nargs="?", default="latest",
                     help="batch id, unique prefix, or 'latest' (default)")
    tal.add_argument("--runs-dir", default="results/runs",
                     help="registry directory (default results/runs)")
    tal.add_argument("--interval", type=float, default=0.5,
                     help="poll interval in seconds (default 0.5)")
    tal.add_argument("--once", action="store_true",
                     help="print what is there now and exit (for CI)")

    arn = sub.add_parser(
        "arena",
        help="head-to-head scheduler matrix -> markdown + JSON report",
    )
    arn.add_argument("--schedulers", default="",
                     help="comma-separated names; default: every "
                          "grid-eligible paper + modern scheduler")
    arn.add_argument("--rates", default="0.8,1.2",
                     help="comma-separated arrival rates in TPS "
                          "(default 0.8,1.2)")
    arn.add_argument("--dds", default="1,4",
                     help="comma-separated declustering degrees "
                          "(default 1,4)")
    arn.add_argument("--workload", choices=("exp1", "exp2", "exp3"),
                     default="exp1")
    arn.add_argument("--num-files", type=int, default=16)
    arn.add_argument("--sigma", type=float, default=1.0,
                     help="declaration-error sigma for exp3 (default 1.0)")
    arn.add_argument("--duration", type=float,
                     default=arena_mod.DEFAULT_DURATION_MS,
                     help="simulated ms per cell "
                          f"(default {arena_mod.DEFAULT_DURATION_MS:g})")
    arn.add_argument("--warmup", type=float,
                     default=arena_mod.DEFAULT_WARMUP_MS,
                     help="warm-up ms discarded "
                          f"(default {arena_mod.DEFAULT_WARMUP_MS:g})")
    arn.add_argument("--seed", type=int, default=0)
    arn.add_argument("--pool", type=int, default=None,
                     help="worker processes (default: CPU count)")
    arn.add_argument("--cache-dir", default="results/cache",
                     help="result cache root ('' disables caching)")
    arn.add_argument("--out", default="results/arena",
                     help="report directory (default results/arena)")
    arn.add_argument("--no-phases", action="store_true",
                     help="skip the per-phase cost pass (one uncached "
                          "bench run per cell)")
    arn.add_argument("--phase-repeats", type=int, default=1,
                     help="bench repeats per cell in the phase pass "
                          "(default 1)")
    arn.add_argument("--no-explain", action="store_true",
                     help="skip the traced explain pass (the per-cell "
                          "queued/blocked/executing/wasted why columns)")
    arn.add_argument("--traces-dir", default="results/traces",
                     help="explain-pass trace artifacts "
                          "(default results/traces)")
    _add_backend_args(arn)

    exp = sub.add_parser(
        "explain",
        help="causal time attribution of a traced run -> "
             "EXPLAIN.json + markdown",
    )
    exp.add_argument("target",
                     help="a trace JSONL artifact, or a batch "
                          "id/prefix/'latest' from the run registry "
                          "(every traced run of the batch is explained)")
    exp.add_argument("--txn", type=int, default=None,
                     help="deep-dive one transaction (by original or "
                          "restart id) instead of the batch report")
    exp.add_argument("--json", action="store_true",
                     help="print the EXPLAIN payload as JSON instead of "
                          "markdown")
    exp.add_argument("--md", action="store_true",
                     help="print the markdown report (the default; "
                          "mutually exclusive with --json)")
    exp.add_argument("--out", default="results/explain",
                     help="artifact directory ('' disables writing; "
                          "default results/explain)")
    exp.add_argument("--runs-dir", default="results/runs",
                     help="registry directory for batch targets "
                          "(default results/runs)")
    exp.add_argument("--top", type=int, default=10,
                     help="rows per report section (default 10)")

    sub.add_parser(
        "backends",
        help="list registered executor backends and capability flags",
    )

    cch = sub.add_parser(
        "cache",
        help="result-cache stats and (optional) pruning",
    )
    cch.add_argument("--cache-dir", default="results/cache",
                     help="result cache root (default results/cache)")
    cch.add_argument("--max-age-days", type=float, default=None,
                     help="prune entries older than this many days")
    cch.add_argument("--max-entries", type=int, default=None,
                     help="prune oldest entries beyond this count")
    cch.add_argument("--dry-run", action="store_true",
                     help="report what pruning would remove, delete "
                          "nothing")

    wpl = sub.add_parser(
        "worker-pool",
        help="serve a shared-dir spool as a worker (multi-host sweeps)",
    )
    wpl.add_argument("--spool", required=True,
                     help="spool directory shared with the sweeping host")
    wpl.add_argument("--poll", type=float, default=0.2,
                     help="seconds between claim attempts when idle "
                          "(default 0.2)")
    wpl.add_argument("--lease", type=float, default=15.0,
                     help="claim lease in seconds; must match the "
                          "sweeping host's (default 15)")
    wpl.add_argument("--idle-exit", type=float, default=None,
                     help="exit after this many idle seconds "
                          "(default: serve forever)")
    wpl.add_argument("--max-tasks", type=int, default=None,
                     help="exit after executing this many runs "
                          "(default: unbounded)")
    wpl.add_argument("--janitor", action="store_true",
                     help="sweep the spool once (expired-lease claims, "
                          "orphaned sidecars and stale done/ litter "
                          "removed) and exit instead of serving")
    wpl.add_argument("--janitor-every", type=float, default=None,
                     help="also sweep the spool every N seconds while "
                          "serving (default: no periodic sweep)")
    wpl.add_argument("--done-max-age", type=float, default=3600.0,
                     help="done/ results older than this many seconds "
                          "count as abandoned litter (default 3600)")

    sub.add_parser(
        "schedulers",
        help="list registered schedulers with families and descriptions",
    )
    sub.add_parser("experiments", help="list the paper's tables/figures")
    return parser


def _add_single_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scheduler",
                        help="e.g. LOW, GOW, ASL, C2PL, OPT, NODC")
    parser.add_argument("--workload", choices=("exp1", "exp2", "exp3"),
                        default="exp1")
    parser.add_argument("--rate", type=float, default=1.0,
                        help="arrival rate in TPS (default 1.0)")
    parser.add_argument("--dd", type=int, default=1,
                        help="degree of declustering (default 1)")
    parser.add_argument("--num-files", type=int, default=16)
    parser.add_argument("--num-nodes", type=int, default=8)
    parser.add_argument("--mpl", type=int, default=None,
                        help="multiprogramming level (default: infinite)")
    parser.add_argument("--sigma", type=float, default=1.0,
                        help="declaration-error sigma for exp3 (default 1.0)")
    parser.add_argument("--duration", type=float, default=400_000,
                        help="simulated ms (default 400000)")
    parser.add_argument("--warmup", type=float, default=50_000,
                        help="warm-up ms discarded (default 50000)")
    parser.add_argument("--seed", type=int, default=0)


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=backend_names(),
                        default="local",
                        help="executor backend (default local; see "
                             "'repro backends')")
    parser.add_argument("--spool", default="",
                        help="spool directory for --backend shared-dir "
                             "(must be reachable by every worker host)")
    parser.add_argument("--spool-workers", type=int, default=None,
                        help="local worker processes spawned against the "
                             "spool (shared-dir only; default: --pool; "
                             "0 relies entirely on remote 'repro "
                             "worker-pool' hosts)")


def _backend_options(args: argparse.Namespace) -> typing.Dict[str, object]:
    """Translate --backend/--spool flags into backend constructor options."""
    if args.backend == "shared-dir":
        if not args.spool:
            raise SystemExit("--backend shared-dir needs --spool")
        options: typing.Dict[str, object] = {"spool": args.spool}
        if args.spool_workers is not None:
            if args.spool_workers < 0:
                raise SystemExit(
                    f"--spool-workers must be >= 0, got {args.spool_workers}"
                )
            options["local_workers"] = args.spool_workers
        return options
    if args.spool:
        raise SystemExit("--spool only applies to --backend shared-dir")
    if args.spool_workers is not None:
        raise SystemExit(
            "--spool-workers only applies to --backend shared-dir"
        )
    return {}


def _make_workload(args: argparse.Namespace):
    if args.workload == "exp1":
        return experiment1_workload(args.rate, num_files=args.num_files)
    if args.workload == "exp2":
        return experiment2_workload(args.rate)
    return experiment3_workload(args.rate, args.sigma,
                                num_files=args.num_files)


def _check_horizon(args: argparse.Namespace) -> None:
    if not 0 <= args.warmup < args.duration:
        raise SystemExit(
            f"--warmup ({args.warmup:g}) must lie inside --duration "
            f"({args.duration:g}); pass --warmup 0 for no warm-up"
        )


def _command_run(args: argparse.Namespace) -> int:
    _check_horizon(args)
    if args.sample_interval <= 0:
        raise SystemExit(
            f"--sample-interval must be > 0, got {args.sample_interval:g}"
        )
    config = MachineConfig(
        num_nodes=args.num_nodes,
        num_files=args.num_files,
        dd=args.dd,
        mpl=args.mpl,
    )
    sampler = (
        TimeSeriesSampler(interval_ms=args.sample_interval)
        if (args.series or args.series_csv)
        else None
    )
    result = run_simulation(
        args.scheduler,
        _make_workload(args),
        config,
        seed=args.seed,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
        sampler=sampler,
    )
    if sampler is not None:
        meta = {
            "scheduler": args.scheduler,
            "workload": args.workload,
            "rate_tps": args.rate,
            "seed": args.seed,
            "duration_ms": args.duration,
        }
        if args.series:
            path = write_series_json(sampler, args.series, meta=meta)
            print(f"[series] {sampler.samples_taken} sample(s) x "
                  f"{len(sampler.series)} series -> {path}")
        if args.series_csv:
            path = write_series_csv(sampler, args.series_csv)
            print(f"[series] long-format CSV -> {path}")
    print(render_table(
        ["metric", "value"],
        [
            ["scheduler", result.scheduler],
            ["workload", args.workload],
            ["arrival rate (TPS)", result.arrival_rate_tps],
            ["DD", args.dd],
            ["committed", result.completed],
            ["throughput (TPS)", result.throughput_tps],
            ["mean response (s)", result.mean_response_s],
            ["p95 response (s)", result.p95_response_ms / 1000.0],
            ["p95 exact", result.p95_exact],
            ["DPN utilisation", result.dpn_utilisation],
            ["CN utilisation", result.cn_utilisation],
            ["blocks", result.blocks],
            ["delays", result.delays],
            ["restarts", result.restarts],
        ],
        title="simulation result",
    ))
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    _check_horizon(args)
    if args.max_events is not None and args.max_events < 1:
        raise SystemExit(f"--max-events must be >= 1, got {args.max_events}")
    config = MachineConfig(
        num_nodes=args.num_nodes,
        num_files=args.num_files,
        dd=args.dd,
        mpl=args.mpl,
    )
    recorder = MemoryRecorder(max_events=args.max_events)
    result = run_simulation(
        args.scheduler,
        _make_workload(args),
        config,
        seed=args.seed,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
        recorder=recorder,
    )
    meta = {
        "scheduler": args.scheduler,
        "workload": args.workload,
        "rate_tps": args.rate,
        "seed": args.seed,
        "duration_ms": args.duration,
    }
    if args.jsonl:
        path = write_jsonl(recorder.events, args.jsonl, meta=meta,
                           dropped=recorder.dropped)
        try:
            count = validate_jsonl(path)
        except TraceSchemaError as exc:
            print(f"[trace] ERROR: schema validation failed: {exc}",
                  file=sys.stderr)
            return 1
        print(f"[trace] {count} event(s) -> {path} (schema valid)")
    if args.chrome:
        path = write_chrome_trace(recorder.events, args.chrome, meta=meta,
                                  dropped=recorder.dropped)
        print(f"[trace] chrome trace -> {path} "
              "(open in ui.perfetto.dev or chrome://tracing)")
    if recorder.dropped:
        print(f"[trace] WARNING: {recorder.dropped} event(s) dropped at "
              f"the --max-events cap ({args.max_events})")
    print()
    print(render_summary(recorder.events, top=args.top,
                         dropped=recorder.dropped))
    print()
    print(f"[trace] committed={result.completed} "
          f"throughput={result.throughput_tps:.4g} TPS "
          f"mean_rt={result.mean_response_s:.4g} s")
    return 0


def _workload_spec(args: argparse.Namespace, rate: float) -> WorkloadSpec:
    if args.workload == "exp1":
        return WorkloadSpec.make("exp1", rate, num_files=args.num_files)
    if args.workload == "exp2":
        return WorkloadSpec.make("exp2", rate)
    return WorkloadSpec.make(
        "exp3", rate, sigma=args.sigma, num_files=args.num_files
    )


def _command_sweep(args: argparse.Namespace) -> int:
    schedulers = [s for s in args.schedulers.split(",") if s]
    rates = [float(r) for r in args.rates.split(",") if r]
    if not schedulers or not rates:
        raise SystemExit("sweep needs at least one scheduler and one rate")
    _check_horizon(args)
    unknown = sorted(set(schedulers) - set(available()))
    if unknown:
        raise SystemExit(
            f"unknown scheduler(s) {unknown}; available: {available()}"
        )
    if args.pool is not None and args.pool < 1:
        raise SystemExit(f"--pool must be >= 1, got {args.pool}")
    config = MachineConfig(
        num_nodes=args.num_nodes,
        num_files=args.num_files,
        dd=args.dd,
        mpl=args.mpl,
    )
    if args.telemetry and not args.runs_dir:
        raise SystemExit(
            "--telemetry needs --runs-dir (the telemetry artifacts live "
            "there)"
        )
    if args.stall_timeout is not None and args.stall_timeout <= 0:
        raise SystemExit(
            f"--stall-timeout must be > 0, got {args.stall_timeout:g}"
        )
    runner = ParallelRunner(
        pool_size=args.pool,
        cache=ResultCache(args.cache_dir) if args.cache_dir else None,
        runs_dir=args.runs_dir or None,
        traces_dir=args.traces_dir or None,
        series_dir=args.series_dir or None,
        telemetry=args.telemetry,
        stall_timeout_s=args.stall_timeout,
        backend=args.backend,
        backend_options=_backend_options(args),
    )
    specs = [
        RunSpec(
            scheduler=scheduler,
            workload=_workload_spec(args, rate),
            config=config,
            seed=args.seed,
            duration_ms=args.duration,
            warmup_ms=args.warmup,
            trace=args.trace,
            timeseries=args.timeseries,
        )
        for rate in rates
        for scheduler in schedulers
    ]
    results = iter(runner.run_batch(specs, label="cli-sweep"))
    rows: typing.List[typing.List[object]] = []
    for rate in rates:
        row: typing.List[object] = [rate]
        for _scheduler in schedulers:
            result = next(results)
            if result is None:  # the cell failed (stall / worker death)
                row.append("-")
            else:
                row.append(
                    result.mean_response_s
                    if args.metric == "rt"
                    else result.throughput_tps
                )
        rows.append(row)
    metric_name = (
        "mean response (s)" if args.metric == "rt" else "throughput (TPS)"
    )
    print(render_table(
        ["lambda_tps"] + schedulers,
        rows,
        title=(
            f"{metric_name} -- {args.workload}, DD={args.dd}, "
            f"NumFiles={args.num_files}"
        ),
    ))
    counts = (runner.last_batch or {}).get("counts", {})
    line = (
        f"[runner] pool={runner.pool_size} "
        f"backend={runner.backend_name} "
        f"cache hits={counts.get('cache_hits', 0)} "
        f"misses={counts.get('cache_misses', 0)} "
        f"simulated={counts.get('simulated', 0)} "
        f"coalesced={counts.get('coalesced', 0)}"
    )
    if runner.last_manifest_path is not None:
        line += f" manifest={runner.last_manifest_path}"
    print(line)
    if args.trace:
        traced = [
            run["trace_artifact"]
            for run in (runner.last_batch or {}).get("runs", [])
            if run.get("trace_artifact")
        ]
        print(f"[runner] trace artifacts: {len(traced)} file(s) under "
              f"{args.traces_dir or '(disabled)'}")
    if args.timeseries:
        sampled = [
            run["series_artifact"]
            for run in (runner.last_batch or {}).get("runs", [])
            if run.get("series_artifact")
        ]
        print(f"[runner] series artifacts: {len(sampled)} file(s) under "
              f"{args.series_dir or '(disabled)'}; view one with "
              "'python -m repro report <file>'")
    if args.telemetry and runner.last_batch_id is not None:
        print(f"[runner] telemetry: batch {runner.last_batch_id}; view "
              f"with 'python -m repro watch {runner.last_batch_id} "
              f"--runs-dir {args.runs_dir}'")
    if runner.last_failures:
        for index, message in sorted(runner.last_failures.items()):
            print(f"[runner] FAILED cell {index} "
                  f"({specs[index].describe()}): {message}",
                  file=sys.stderr)
        return 1
    return 0


def _command_report(args: argparse.Namespace) -> int:
    try:
        payload = load_series_json(args.series)
    except (OSError, ValueError) as exc:
        print(f"[report] ERROR: {exc}", file=sys.stderr)
        return 1
    if args.explain:
        try:
            budget = explain_mod.time_budget_of_trace(args.explain)
        except (OSError, ValueError) as exc:
            print(f"[report] ERROR: bad --explain trace: {exc}",
                  file=sys.stderr)
            return 1
        print(explain_mod.render_budget_line(budget))
        print()
    print(render_series_report(payload, width=args.width))
    return 0


def _explain_targets(args: argparse.Namespace) -> typing.List[str]:
    """Resolve the explain target to one or more trace artifacts."""
    import pathlib

    if pathlib.Path(args.target).is_file():
        return [args.target]
    entry = RunRegistry(args.runs_dir).find(args.target)
    manifest_path = entry.get("manifest")
    if not manifest_path:
        raise LookupError(
            f"batch {entry['batch']} has no manifest on record"
        )
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    traces = [
        run.get("trace_artifact")
        for run in manifest.get("runs", [])
        if run.get("trace_artifact")
    ]
    if not traces:
        raise LookupError(
            f"batch {entry['batch']} recorded no trace artifacts; "
            "re-run the sweep with --trace"
        )
    return traces


def _command_explain(args: argparse.Namespace) -> int:
    if args.json and args.md:
        raise SystemExit("--json and --md are mutually exclusive")
    try:
        targets = _explain_targets(args)
    except (LookupError, OSError, ValueError) as exc:
        print(f"[explain] ERROR: {exc}", file=sys.stderr)
        return 1
    if args.txn is not None and len(targets) > 1:
        raise SystemExit(
            "--txn needs a single trace target, "
            f"got a batch with {len(targets)} traces"
        )
    import pathlib

    multi = len(targets) > 1
    for target in targets:
        try:
            attribution = fold_trace_path(target)
        except (OSError, ValueError) as exc:
            print(f"[explain] ERROR: {target}: {exc}", file=sys.stderr)
            return 1
        if args.txn is not None:
            try:
                print(explain_mod.render_txn_markdown(
                    attribution, args.txn
                ))
            except KeyError as exc:
                print(f"[explain] ERROR: {exc.args[0]}", file=sys.stderr)
                return 1
            continue
        payload = explain_mod.explain_attribution(
            attribution, source={"trace": str(target)}
        )
        try:
            explain_mod.validate_explain(payload)
        except ValueError as exc:
            print(f"[explain] ERROR: invalid payload: {exc}",
                  file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(payload, indent=1, sort_keys=True))
        elif multi:
            print(f"{pathlib.Path(target).name}: "
                  + explain_mod.render_budget_line(payload["budget"]))
        else:
            print(explain_mod.render_explain_markdown(
                payload, top=args.top
            ))
        if args.out:
            out_dir = pathlib.Path(args.out)
            if multi:
                stem = pathlib.Path(target).name
                for suffix in (".trace.jsonl", ".jsonl"):
                    if stem.endswith(suffix):
                        stem = stem[: -len(suffix)]
                        break
                out_dir = out_dir / stem
            json_path, md_path = explain_mod.write_explain(
                payload, out_dir
            )
            print(f"[explain] {json_path} + {md_path} (schema valid)")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if args.compare is not None:
        try:
            baseline = bench_mod.load_bench_json(args.compare[0])
            current = bench_mod.load_bench_json(args.compare[1])
        except (OSError, ValueError) as exc:
            print(f"[bench] ERROR: {exc}", file=sys.stderr)
            return 1
        report = bench_mod.compare_bench(
            baseline, current,
            tolerance=args.tolerance,
            mem_tolerance=args.mem_tolerance,
        )
        print(bench_mod.render_compare_report(report))
        return 1 if report["failed"] else 0
    if args.duration <= 0:
        raise SystemExit(f"--duration must be > 0, got {args.duration:g}")
    if args.repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")
    if args.telemetry and not args.runs_dir:
        raise SystemExit("--telemetry needs --runs-dir")
    runner = ParallelRunner(
        pool_size=args.pool,
        cache=None,
        runs_dir=(args.runs_dir or None) if args.telemetry else None,
        telemetry=args.telemetry,
        backend=args.backend,
        backend_options=_backend_options(args),
    )
    matrix = (
        bench_mod.BENCH_QUICK_MATRIX if args.quick
        else bench_mod.BENCH_MATRIX
    )
    rows = runner.run_bench(
        bench_mod.bench_specs(
            duration_ms=args.duration, seed=args.seed, matrix=matrix
        ),
        label="cli-bench",
        repeats=args.repeats,
    )
    payload = bench_mod.bench_payload(
        rows,
        git_sha=_git_sha(),
        batch=runner.last_batch_id if args.telemetry else None,
        backend=runner.backend_name,
    )
    bench_mod.validate_bench(payload)
    path = args.output or bench_mod.default_bench_path(
        args.out, payload["created"]
    )
    path = bench_mod.write_bench_json(payload, path)
    print(bench_mod.render_bench_report(payload))
    print()
    print(f"[bench] artifact -> {path} (schema valid)")
    return 0


def _command_history(args: argparse.Namespace) -> int:
    if not args.history_command:
        print("[history] pick a subcommand: ingest | report | check",
              file=sys.stderr)
        return 2
    store = history_mod.HistoryStore(args.store)
    if args.history_command == "ingest":
        failures = 0
        for artifact in args.artifacts:
            try:
                outcome = store.ingest(artifact, family=args.family)
            except (OSError, ValueError) as exc:
                print(f"[history] ERROR: {artifact}: {exc}",
                      file=sys.stderr)
                failures += 1
                continue
            if outcome["skipped"]:
                print(f"[history] {artifact}: already ingested "
                      f"(snapshot {outcome['snapshot']})")
            else:
                print(f"[history] {artifact}: +{outcome['added']} "
                      f"{outcome['family']} record(s) "
                      f"(snapshot {outcome['snapshot']})")
        print(f"[history] store -> {store.path}")
        return 1 if failures else 0

    try:
        payload = trends_mod.history_report(
            store,
            tolerance=args.tolerance,
            mem_tolerance=args.mem_tolerance,
            window=args.window,
        )
    except (OSError, ValueError) as exc:
        print(f"[history] ERROR: {exc}", file=sys.stderr)
        return 1
    if not payload["snapshots"]:
        print(f"[history] store {store.path} is empty; run "
              "`repro history ingest` first", file=sys.stderr)
        return 1
    verdict = payload["verdict"]
    if args.history_command == "check":
        status = "OK" if verdict["ok"] else "REGRESSION"
        print(f"[history] {status}: {len(payload['snapshots'])} "
              f"snapshot(s), {verdict['evaluated']} cell(s) evaluated, "
              f"{verdict['regressions']} regressed "
              f"(quorum {verdict['quorum']}), {verdict['mem_growth']} "
              f"grew in memory (quorum {verdict['mem_quorum']})")
        for reason in verdict["reasons"]:
            print(f"[history]   - {reason}")
        return 0 if verdict["ok"] else 1
    out_dir = pathlib.Path(args.out) if args.out else store.root
    json_path = out_dir / "HISTORY.json"
    md_path = out_dir / "HISTORY.md"
    trends_mod.write_history(payload, json_path, md_path)
    print(trends_mod.render_history_markdown(
        payload, spark_width=args.width
    ))
    print(f"[history] artifacts -> {json_path} + {md_path} (schema valid)")
    return 1 if not verdict["ok"] else 0


def _resolve_batch(
    runs_dir: str, token: str
) -> typing.Dict[str, typing.Any]:
    """Registry lookup shared by watch/runs/tail; raises LookupError."""
    return RunRegistry(runs_dir).find(token)


def _command_watch(args: argparse.Namespace) -> int:
    if args.interval <= 0:
        raise SystemExit(f"--interval must be > 0, got {args.interval:g}")
    try:
        entry = _resolve_batch(args.runs_dir, args.batch)
    except LookupError as exc:
        print(f"[watch] ERROR: {exc}", file=sys.stderr)
        return 1
    status_path = entry.get("status_file")
    if not status_path:
        print(f"[watch] ERROR: batch {entry['batch']} ran without "
              "telemetry (re-run the sweep with --telemetry)",
              file=sys.stderr)
        return 1
    while True:
        try:
            status = read_status(status_path)
        except (OSError, ValueError) as exc:
            print(f"[watch] ERROR: {exc}", file=sys.stderr)
            return 1
        frame = render_status(status)
        if args.once:
            print(frame)
            return 0
        # clear screen + home, then the fresh frame
        print(f"\x1b[2J\x1b[H{frame}", flush=True)
        if status.get("status") != "running":
            return 0
        time.sleep(args.interval)


def _command_runs(args: argparse.Namespace) -> int:
    command = getattr(args, "runs_command", None) or "list"
    runs_dir = getattr(args, "runs_dir", "results/runs")
    registry = RunRegistry(runs_dir)
    if command == "show":
        try:
            entry = registry.find(args.batch)
        except LookupError as exc:
            print(f"[runs] ERROR: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(entry, indent=1, sort_keys=True))
        status_path = entry.get("status_file")
        if status_path:
            try:
                print()
                print(render_status(read_status(status_path)))
            except (OSError, ValueError):
                pass  # batch predates telemetry or artifacts were pruned
        return 0
    entries = registry.entries()
    if not entries:
        print(f"[runs] no batches registered under {runs_dir}")
        return 0
    print(render_table(
        ["batch", "kind", "status", "runs", "failed", "wall_s", "label"],
        [
            [
                e.get("batch", "?"),
                e.get("kind", "?"),
                e.get("status", "?"),
                e.get("total", "?"),
                e.get("failed", 0),
                e.get("wall_s") if e.get("wall_s") is not None else "-",
                e.get("label", ""),
            ]
            for e in entries
        ],
        title=f"run registry ({runs_dir})",
    ))
    return 0


def _command_tail(args: argparse.Namespace) -> int:
    if args.interval <= 0:
        raise SystemExit(f"--interval must be > 0, got {args.interval:g}")
    try:
        entry = _resolve_batch(args.runs_dir, args.batch)
    except LookupError as exc:
        print(f"[tail] ERROR: {exc}", file=sys.stderr)
        return 1
    telemetry_path = entry.get("telemetry")
    if not telemetry_path:
        print(f"[tail] ERROR: batch {entry['batch']} ran without "
              "telemetry (re-run the sweep with --telemetry)",
              file=sys.stderr)
        return 1
    offset = 0
    violations = 0
    finished = False
    while True:
        records, offset = read_telemetry_records(telemetry_path, offset)
        for record in records:
            try:
                validate_telemetry_event(record)
            except TelemetrySchemaError as exc:
                print(f"[tail] SCHEMA VIOLATION: {exc}", file=sys.stderr)
                violations += 1
                continue
            print(format_telemetry_record(record), flush=True)
            if record.get("kind") == "batch.done":
                finished = True
        if finished or args.once:
            return 1 if violations else 0
        time.sleep(args.interval)


def _arena_time_budgets(
    args: argparse.Namespace, specs: typing.Sequence[RunSpec]
) -> typing.List[typing.Optional[typing.Dict[str, typing.Any]]]:
    """The arena's explain pass: traced re-runs of the matrix, folded
    into per-cell time budgets (None for a cell whose trace failed).

    The traced pass goes through the same cached runner, so repeats
    are free; a cache-served cell whose trace artifact has since been
    pruned is re-executed inline to regenerate it (traced runs are
    byte-identical to untraced ones, so the budget is authoritative
    either way).
    """
    traced = [dataclasses.replace(spec, trace=True) for spec in specs]
    runner = ParallelRunner(
        pool_size=args.pool,
        cache=ResultCache(args.cache_dir) if args.cache_dir else None,
        traces_dir=args.traces_dir,
        backend=args.backend,
        backend_options=_backend_options(args),
    )
    runner.run_batch(traced, label="arena-explain")
    budgets: typing.List[typing.Optional[typing.Dict[str, typing.Any]]] = []
    for tspec in traced:
        path = trace_artifact_path(args.traces_dir, tspec)
        if not path.exists():
            execute_spec(tspec, traces_dir=args.traces_dir)
        try:
            budgets.append(fold_trace_path(path).budget())
        except (OSError, ValueError) as exc:
            print(f"[arena] WARNING: explain pass failed for "
                  f"{tspec.scheduler} @ {tspec.workload.rate_tps:g} TPS "
                  f"DD={tspec.config.dd}: {exc}", file=sys.stderr)
            budgets.append(None)
    return budgets


def _command_arena(args: argparse.Namespace) -> int:
    _check_horizon(args)
    schedulers = (
        [s for s in args.schedulers.split(",") if s]
        if args.schedulers
        else list(arena_mod.default_arena_schedulers())
    )
    rates = [float(r) for r in args.rates.split(",") if r]
    dds = [int(d) for d in args.dds.split(",") if d]
    if not schedulers or not rates or not dds:
        raise SystemExit(
            "arena needs at least one scheduler, one rate and one DD"
        )
    for name in schedulers:
        try:
            arena_mod.scheduler_family(name)
        except KeyError:
            raise SystemExit(
                f"unknown scheduler {name!r}; available: {available()}"
            )
    if args.pool is not None and args.pool < 1:
        raise SystemExit(f"--pool must be >= 1, got {args.pool}")
    if args.phase_repeats < 1:
        raise SystemExit(
            f"--phase-repeats must be >= 1, got {args.phase_repeats}"
        )
    specs = arena_mod.arena_specs(
        schedulers,
        rates,
        dds,
        workload=args.workload,
        num_files=args.num_files,
        sigma=args.sigma,
        seed=args.seed,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
    )
    runner = ParallelRunner(
        pool_size=args.pool,
        cache=ResultCache(args.cache_dir) if args.cache_dir else None,
        backend=args.backend,
        backend_options=_backend_options(args),
    )
    results = runner.run_batch(specs, label="arena")
    bench_rows = None
    if not args.no_phases:
        bench_rows = runner.run_bench(
            specs, label="arena-phases", repeats=args.phase_repeats
        )
    time_budgets = None
    if not args.no_explain:
        time_budgets = _arena_time_budgets(args, specs)
    payload = arena_mod.arena_payload(
        specs,
        results,
        bench_rows,
        time_budgets=time_budgets,
        git_sha=_git_sha(),
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
    try:
        count = arena_mod.validate_arena(payload)
    except ValueError as exc:
        print(f"[arena] ERROR: invalid artifact: {exc}", file=sys.stderr)
        return 1
    json_path, md_path = arena_mod.write_arena(payload, args.out)
    print(arena_mod.render_arena_markdown(payload))
    print(f"[arena] {count} cell(s) -> {json_path} + {md_path} "
          "(schema valid)")
    if payload["failed_cells"]:
        print(f"[arena] ERROR: {payload['failed_cells']} cell(s) failed",
              file=sys.stderr)
        return 1
    return 0


def _command_backends() -> int:
    rows = []
    for name in backend_names():
        info = get_backend_info(name)
        flags = info.flags
        tags = [
            tag
            for tag, on in (
                ("kill", flags.supports_kill),
                ("isolates", flags.isolates_runs),
                ("distributed", flags.distributed),
                ("inline", flags.inline),
            )
            if on
        ]
        rows.append([name, ", ".join(tags) or "-", info.summary])
    print(render_table(
        ["name", "capabilities", "description"],
        typing.cast(typing.List[typing.List[object]], rows),
        title="executor backends (select with sweep/bench/arena "
              "--backend)",
    ))
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    if not args.cache_dir:
        raise SystemExit("cache needs a --cache-dir")
    if args.max_age_days is not None and args.max_age_days < 0:
        raise SystemExit(
            f"--max-age-days must be >= 0, got {args.max_age_days:g}"
        )
    if args.max_entries is not None and args.max_entries < 0:
        raise SystemExit(
            f"--max-entries must be >= 0, got {args.max_entries}"
        )
    cache = ResultCache(args.cache_dir)
    pruning = args.max_age_days is not None or args.max_entries is not None
    if pruning:
        report = cache.gc(
            max_age_s=(
                args.max_age_days * 86_400.0
                if args.max_age_days is not None
                else None
            ),
            max_entries=args.max_entries,
            dry_run=args.dry_run,
        )
        verb = "would prune" if args.dry_run else "pruned"
        print(f"[cache] {verb} {report['pruned']} of "
              f"{report['examined']} entr(ies), keeping {report['kept']}")
    elif args.dry_run:
        raise SystemExit(
            "--dry-run needs --max-age-days and/or --max-entries"
        )
    stats = cache.stats()
    print(render_table(
        ["metric", "value"],
        [
            ["root", stats["root"]],
            ["entries", stats["entries"]],
            ["total bytes", stats["total_bytes"]],
            [
                "oldest age (s)",
                stats["oldest_age_s"]
                if stats["oldest_age_s"] is not None
                else "-",
            ],
            [
                "newest age (s)",
                stats["newest_age_s"]
                if stats["newest_age_s"] is not None
                else "-",
            ],
        ],
        title="result cache",
    ))
    return 0


def _command_worker_pool(args: argparse.Namespace) -> int:
    if args.poll <= 0:
        raise SystemExit(f"--poll must be > 0, got {args.poll:g}")
    if args.lease <= 0:
        raise SystemExit(f"--lease must be > 0, got {args.lease:g}")
    if args.idle_exit is not None and args.idle_exit < 0:
        raise SystemExit(
            f"--idle-exit must be >= 0, got {args.idle_exit:g}"
        )
    if args.max_tasks is not None and args.max_tasks < 1:
        raise SystemExit(f"--max-tasks must be >= 1, got {args.max_tasks}")
    if args.janitor_every is not None and args.janitor_every <= 0:
        raise SystemExit(
            f"--janitor-every must be > 0, got {args.janitor_every:g}"
        )
    if args.done_max_age < 0:
        raise SystemExit(
            f"--done-max-age must be >= 0, got {args.done_max_age:g}"
        )
    if args.janitor:
        counts = janitor_sweep(
            args.spool,
            lease_s=args.lease,
            done_max_age_s=args.done_max_age,
        )
        print(f"[worker-pool] janitor swept {args.spool}: "
              f"{counts['done_removed']} stale result(s), "
              f"{counts['claims_removed']} expired claim(s), "
              f"{counts['owners_removed']} orphaned sidecar(s), "
              f"{counts['temps_removed']} temp file(s) removed")
        return 0
    print(f"[worker-pool] serving spool {args.spool} "
          f"(lease={args.lease:g}s; Ctrl-C to stop)", flush=True)
    try:
        processed = worker_pool_loop(
            args.spool,
            poll_s=args.poll,
            lease_s=args.lease,
            idle_exit_s=args.idle_exit,
            max_tasks=args.max_tasks,
            janitor_every_s=args.janitor_every,
            done_max_age_s=args.done_max_age,
        )
    except KeyboardInterrupt:
        print("[worker-pool] interrupted", file=sys.stderr)
        return 130
    print(f"[worker-pool] done: {processed} run(s) executed")
    return 0


def _command_schedulers() -> int:
    rows = [
        [
            entry.name,
            entry.family,
            "yes" if entry.grid else "no",
            entry.description,
        ]
        for entry in entries()
    ]
    print(render_table(
        ["name", "family", "in grids", "description"],
        typing.cast(typing.List[typing.List[object]], rows),
        title="registered schedulers (parameterised forms: LOW(K=n), "
              "DGCC(B=n), CAR(Q=n), PRED(T=x))",
    ))
    return 0


def _command_experiments() -> int:
    print(render_table(
        ["id", "regenerates"],
        [[eid, description] for eid, description in _EXPERIMENT_HELP],
        title="paper tables/figures (run: python examples/reproduce_paper.py"
              " --only <id>)",
    ))
    return 0


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "report":
            return _command_report(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "history":
            return _command_history(args)
        if args.command == "watch":
            return _command_watch(args)
        if args.command == "runs":
            return _command_runs(args)
        if args.command == "tail":
            return _command_tail(args)
        if args.command == "arena":
            return _command_arena(args)
        if args.command == "explain":
            return _command_explain(args)
        if args.command == "backends":
            return _command_backends()
        if args.command == "cache":
            return _command_cache(args)
        if args.command == "worker-pool":
            return _command_worker_pool(args)
        if args.command == "schedulers":
            return _command_schedulers()
        return _command_experiments()
    except BrokenPipeError:  # output piped into head etc.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
