"""Discrete-event simulation kernel.

A small, self-contained, generator-based discrete-event simulation engine
in the style of simpy (which is not available in this environment).  The
paper's simulator runs in integer "clocks" of 1 ms; this kernel keeps time
as a float but all built-in machine models use millisecond units.

Public surface:

- :class:`Environment` -- event loop, clock, process spawning.
- :class:`Event` / :class:`Timeout` / :class:`AllOf` / :class:`AnyOf` --
  awaitable events yielded from process generators.
- :class:`Process` -- a running generator; itself awaitable.
- :class:`Interrupt` -- exception thrown into an interrupted process.
- :class:`Resource` -- FIFO multi-server resource (used for CPUs).
- :class:`Store` -- FIFO message queue between processes.
- :class:`RandomStreams` -- named, independently-seeded RNG streams.
- :class:`monitor` -- time-weighted and tally statistics collectors.
"""

from repro.des.engine import Environment, StopSimulation
from repro.des.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.des.process import Process
from repro.des.resources import Request, Resource, Store
from repro.des.rng import RandomStreams
from repro.des.monitor import Counter, Tally, TimeWeighted

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "StopSimulation",
    "Store",
    "Tally",
    "TimeWeighted",
    "Timeout",
]
