"""Shared resources: FIFO servers and message stores.

:class:`Resource` models a server pool (e.g. the control node's CPU) with
FIFO granting.  :class:`Store` is an unbounded FIFO hand-off queue between
processes (e.g. a node's inbox).
"""

from __future__ import annotations

import collections
import typing

from repro.des.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment


class Request(Event):
    """Pending claim on a :class:`Resource`; fires when granted.

    Usable as a context manager so that ``with resource.request() as req:``
    releases the claim on exit even if the process body raises.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw an ungranted claim (no-op if already granted)."""
        self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical servers granted in FIFO order.

    A *named* resource reports its waiting-line depth to the
    environment's trace recorder (``res.queue`` events) whenever the
    queue length changes; anonymous resources never trace.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        name: typing.Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._trace = env.trace
        self._waiting: typing.Deque[Request] = collections.deque()
        self._granted: typing.Set[Request] = set()

    def _trace_queue(self) -> None:
        self._trace.emit(
            self.env.now, "res.queue", name=self.name, depth=len(self._waiting)
        )

    @property
    def in_use(self) -> int:
        """Number of servers currently held."""
        return len(self._granted)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a server."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a server; the returned event fires when granted."""
        req = Request(self)
        if len(self._granted) < self.capacity:
            self._granted.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
            if self._trace.enabled and self.name is not None:
                self._trace_queue()
        return req

    def release(self, request: Request) -> None:
        """Return a server to the pool and grant the next waiter."""
        if request in self._granted:
            self._granted.remove(request)
            self._grant_next()
        else:
            # Releasing an ungranted request withdraws it from the queue.
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        drained = False
        while self._waiting and len(self._granted) < self.capacity:
            nxt = self._waiting.popleft()
            drained = True
            if nxt.triggered:  # withdrawn/poisoned requests are skipped
                continue
            self._granted.add(nxt)
            nxt.succeed()
        if drained and self._trace.enabled and self.name is not None:
            self._trace_queue()


class Store:
    """Unbounded FIFO queue of items passed between processes."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: typing.Deque[object] = collections.deque()
        self._getters: typing.Deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event firing with the oldest item (immediately if available)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
