"""Seeded random-number streams.

A simulation draws from several logically independent random sources
(inter-arrival times, file choices, declaration errors...).  Giving each
source its own stream, derived deterministically from a master seed and the
stream's name, keeps results reproducible and decorrelates the sources:
adding draws to one stream does not perturb another.
"""

from __future__ import annotations

import hashlib
import random
import typing


class RandomStreams:
    """Factory of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: typing.Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive_seed(name))
            self._streams[name] = rng
        return rng

    def _derive_seed(self, name: str) -> int:
        payload = f"{self.master_seed}:{name}".encode()
        return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")

    # -- common distributions ----------------------------------------------

    def exponential(self, name: str, rate: float) -> float:
        """One draw from Exp(rate); ``rate`` is events per time unit."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self.stream(name).expovariate(rate)

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """One integer drawn uniformly from [low, high] inclusive."""
        return self.stream(name).randint(low, high)

    def gauss(self, name: str, mean: float, stddev: float) -> float:
        """One draw from N(mean, stddev**2)."""
        return self.stream(name).gauss(mean, stddev)

    def sample_without_replacement(
        self, name: str, population: typing.Sequence[int], k: int
    ) -> typing.List[int]:
        """Draw ``k`` distinct elements from ``population``.

        ``population`` is consumed as-is when it is already a sequence
        (``range`` included) -- this runs once per transaction, so the
        old per-draw ``list`` copy was a hot-path allocation.  The draw
        only depends on ``len(population)`` and indexing, so results are
        identical to sampling from a materialised copy.
        """
        if not isinstance(population, (list, tuple, range)):
            population = tuple(population)
        return self.stream(name).sample(population, k)
