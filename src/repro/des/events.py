"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot future scheduled on an
:class:`~repro.des.engine.Environment`.  Processes yield events; the
environment resumes the process when the event fires.  Events succeed with
an optional value or fail with an exception.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter passed
    to :meth:`repro.des.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* -> *triggered* (scheduled on the event queue) ->
    *processed* (callbacks ran).  An event may only be triggered once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    #: sentinel distinguishing "no value yet" from a ``None`` value
    _PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: typing.List[typing.Callable[["Event"], None]] = []
        self._value: object = Event._PENDING
        self._ok = True
        self._triggered = False
        self._processed = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value; raises if the event has not yet fired."""
        if self._value is Event._PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire by raising ``exception`` in waiters."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env.schedule(self)
        return self

    def _mark_processed(self) -> None:
        self._processed = True

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # slots are assigned directly (not via Event.__init__): timeouts
        # are the single most-constructed object in a run
        self.env = env
        self.callbacks = []
        self._processed = False
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env.schedule(self, delay=delay)


class ConditionValue:
    """Mapping-like container with the values of fired sub-events."""

    __slots__ = ("events",)

    def __init__(self, events: typing.List[Event]) -> None:
        self.events = events

    def __getitem__(self, event: Event) -> object:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> typing.List[object]:
        return [event.value for event in self.events]


class Condition(Event):
    """Composite event that fires when ``evaluate`` says enough fired.

    Used through the :class:`AllOf` / :class:`AnyOf` conveniences.  A
    failure of any sub-event fails the condition immediately.
    """

    __slots__ = ("_events", "_evaluate", "_fired_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: typing.Callable[[typing.List[Event], int], bool],
        events: typing.Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._fired_count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one environment")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.processed:
                self._on_sub_event(event)
            else:
                event.callbacks.append(self._on_sub_event)

    def _on_sub_event(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(typing.cast(BaseException, event.value))
            return
        self._fired_count += 1
        if self._evaluate(self._events, self._fired_count):
            fired = [e for e in self._events if e.triggered and e.ok]
            self.succeed(ConditionValue(fired))


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: typing.Iterable[Event]) -> None:
        super().__init__(env, lambda evs, count: count >= len(evs), events)


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: typing.Iterable[Event]) -> None:
        super().__init__(env, lambda evs, count: count >= 1, events)
