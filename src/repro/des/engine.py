"""The event loop: a time-ordered heap of triggered events.

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (a monotonically increasing sequence number breaks
ties), so a simulation with a fixed RNG seed replays identically.
"""

from __future__ import annotations

import heapq
import typing
from time import perf_counter as _perf_counter

_heappush = heapq.heappush
_heappop = heapq.heappop

from repro.des.events import AllOf, AnyOf, Event, Timeout
from repro.obs.profile import NULL_PROFILER, SimProfiler
from repro.des.process import Process, ProcessGenerator
from repro.obs.recorder import NULL_RECORDER, TraceRecorder

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.timeseries import TimeSeriesSampler


class StopSimulation(Exception):
    """Raised by :meth:`Environment.run` internals to end the run early."""


class Environment:
    """Simulation environment: clock, event heap and process factory."""

    #: scheduling priority for "urgent" events (interrupts)
    PRIORITY_URGENT = 0
    #: default scheduling priority
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0, strict: bool = True) -> None:
        self._now = float(initial_time)
        #: (time, key, event) with key = (priority << 62) | seq -- one
        #: packed int keeps entries at three slots while preserving the
        #: (time, priority, seq) order exactly, and the unique seq means
        #: Event objects are never compared
        self._queue: typing.List[typing.Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: typing.Optional[Process] = None
        #: when True, exceptions escaping a process propagate out of run()
        self.strict = strict
        #: the trace sink every model component checks before emitting;
        #: stays the shared no-op recorder unless a run installs a real
        #: one *before* building components (they cache the reference)
        self.trace: TraceRecorder = NULL_RECORDER
        #: the wall-clock self-profiler; same install-before-build
        #: contract as ``trace`` (components cache the reference)
        self.profile: SimProfiler = NULL_PROFILER
        #: optional time-series sampler, consulted once per event pop
        self.sampler: typing.Optional["TimeSeriesSampler"] = None
        #: events fired so far (simulator throughput accounting)
        self.events_processed = 0
        #: optional live-progress hook ``hook(now_ms, events_processed)``
        #: invoked every ``progress_every`` events -- the telemetry
        #: heartbeat rides this; observation only, and the disabled path
        #: costs one attribute load + None test per step
        self.progress_hook: typing.Optional[
            typing.Callable[[float, int], None]
        ] = None
        self.progress_every: int = 4096
        self._progress_next = 0

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> typing.Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: typing.Optional[str] = None
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Event firing once every event in ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Event firing once any event in ``events`` fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue a triggered event to fire ``delay`` from now."""
        self._seq += 1
        entry = (self._now + delay, (priority << 62) | self._seq, event)
        profile = self.profile
        if profile.enabled:
            start = _perf_counter()
            _heappush(self._queue, entry)
            profile.span("des.heap", start, _perf_counter())
        else:
            _heappush(self._queue, entry)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Fire the single next event (advancing the clock to it)."""
        if not self._queue:
            raise StopSimulation("event queue is empty")
        profile = self.profile
        if profile.enabled:
            start = _perf_counter()
            when, _key, event = _heappop(self._queue)
            profile.span("des.heap", start, _perf_counter())
        else:
            when, _key, event = _heappop(self._queue)
        sampler = self.sampler
        if sampler is not None and when >= sampler.next_due:
            # sample every boundary the clock is about to cross, before
            # the events at the new time fire (sample-and-hold)
            sampler.advance_to(when)
        self._now = when
        self.events_processed += 1
        progress = self.progress_hook
        if progress is not None and self.events_processed >= self._progress_next:
            self._progress_next = self.events_processed + self.progress_every
            progress(self._now, self.events_processed)
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for callback in callbacks:
            callback(event)

    # -- run loop ------------------------------------------------------------

    def run(self, until: typing.Optional[typing.Union[float, Event]] = None) -> object:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until the event queue drains;
        - a number: run until the clock reaches that time (the clock is set
          to exactly that time on return).  The end is *exclusive*, as in
          simpy: events scheduled at exactly ``until`` do not fire, so a
          measurement window ``[0, until)`` never counts boundary events
          twice across adjacent windows;
        - an :class:`Event`: run until that event fires, returning its
          value (or raising its exception).
        """
        if until is None:
            stop_at = float("inf")
            stop_event: typing.Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise typing.cast(BaseException, stop_event.value)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )

        queue = self._queue
        step = self.step
        if stop_event is None:
            while queue and queue[0][0] < stop_at:
                step()
        else:
            while queue:
                if stop_event._processed:
                    break
                if queue[0][0] >= stop_at:
                    break
                step()

        if stop_event is not None:
            if not stop_event.processed:
                raise RuntimeError(
                    "run(until=event) exhausted the queue before the event fired"
                )
            if stop_event.ok:
                return stop_event.value
            raise typing.cast(BaseException, stop_event.value)

        if stop_at != float("inf"):
            sampler = self.sampler
            if sampler is not None and stop_at >= sampler.next_due:
                # boundaries between the last event and the horizon:
                # state is frozen, so sample-and-hold extends to the end
                sampler.advance_to(stop_at)
            self._now = stop_at
        return None
