"""Statistics collectors for simulation outputs.

Three collectors cover the paper's metrics:

- :class:`Tally` -- sample statistics over discrete observations
  (per-transaction response times).
- :class:`TimeWeighted` -- time-average of a piecewise-constant signal
  (resource utilisation, queue lengths).
- :class:`Counter` -- monotone event counts (commits, aborts, restarts).

All collectors support a *warm-up reset*: statistics gathered before the
reset are discarded so steady-state metrics exclude the ramp-up transient.
"""

from __future__ import annotations

import math
import random
import typing

#: default bound on retained samples: exact percentiles up to this many
#: observations, reservoir-sampled (still unbiased) beyond it.  Chosen so
#: a paper-horizon run (~3k commits) stays exact while an unbounded
#: production run cannot grow memory without limit.
DEFAULT_SAMPLE_CAP = 16_384


class Tally:
    """Streaming mean/variance/min/max over observed samples (Welford)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: typing.Optional[typing.List[float]] = None
        self._sample_cap: typing.Optional[int] = None
        self._reservoir_rng: typing.Optional[random.Random] = None

    def keep_samples(
        self, cap: typing.Optional[int] = DEFAULT_SAMPLE_CAP
    ) -> "Tally":
        """Retain raw samples (enables percentiles); returns self.

        At most ``cap`` samples are kept: once more than ``cap`` values
        have been observed the retained set degrades to a uniform
        reservoir (algorithm R) so percentiles stay statistically sound
        while memory is bounded over arbitrarily long runs.  ``cap=None``
        keeps every sample (the pre-existing unbounded behaviour).
        """
        if cap is not None and cap < 1:
            raise ValueError(f"sample cap must be >= 1 or None, got {cap}")
        if self._samples is None:
            self._samples = []
        self._sample_cap = cap
        if cap is not None and self._reservoir_rng is None:
            # seeded from the tally name only: deterministic across runs
            # and independent of the host process
            self._reservoir_rng = random.Random(f"tally-reservoir:{self.name}")
        return self

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self._samples is not None:
            if self._sample_cap is None or len(self._samples) < self._sample_cap:
                self._samples.append(value)
            else:
                # reservoir step: the i-th observation replaces a random
                # slot with probability cap/i, keeping a uniform sample
                slot = self._reservoir_rng.randrange(self.count)
                if slot < self._sample_cap:
                    self._samples[slot] = value

    def reset(self) -> None:
        """Discard everything observed so far (warm-up cutoff)."""
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        if self._samples is not None:
            self._samples = []
        if self._sample_cap is not None:
            # re-seed so post-reset draws depend only on post-reset input
            self._reservoir_rng = random.Random(f"tally-reservoir:{self.name}")

    @property
    def mean(self) -> float:
        """Sample mean, NaN when empty."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance, NaN for fewer than two samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def is_exact(self) -> bool:
        """True while percentiles are exact (reservoir never kicked in).

        Once more observations arrive than ``keep_samples`` retains, the
        sample set degrades to a uniform reservoir: percentiles are
        still unbiased *estimates* but no longer exact order statistics.
        Consumers reporting percentiles should surface this flag instead
        of letting estimated numbers read as exact.
        """
        return self._sample_cap is None or self.count <= self._sample_cap

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) by nearest-rank; needs keep_samples().

        Exact while at most ``cap`` values were observed, estimated from
        the uniform reservoir beyond that (see :attr:`is_exact`).
        """
        if self._samples is None:
            raise RuntimeError("call keep_samples() before percentile()")
        if not self._samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def __repr__(self) -> str:
        return f"<Tally {self.name!r} n={self.count} mean={self.mean:.4g}>"


class TimeWeighted:
    """Time-average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the integral of the
    signal over time accumulates between updates.
    """

    def __init__(self, now: float, value: float = 0.0, name: str = "") -> None:
        self.name = name
        self._value = value
        self._last_change = now
        self._area = 0.0
        self._start = now
        self.maximum = value

    @property
    def value(self) -> float:
        """Current signal level."""
        return self._value

    def update(self, now: float, value: float) -> None:
        """Set the signal to ``value`` as of time ``now``."""
        if now < self._last_change:
            raise ValueError("time went backwards in TimeWeighted.update")
        self._area += self._value * (now - self._last_change)
        self._last_change = now
        self._value = value
        if value > self.maximum:
            self.maximum = value

    def increment(self, now: float, delta: float = 1.0) -> None:
        """Adjust the signal by ``delta`` at time ``now``."""
        self.update(now, self._value + delta)

    def reset(self, now: float) -> None:
        """Restart averaging at ``now``, keeping the current level."""
        self._area = 0.0
        self._start = now
        self._last_change = now
        self.maximum = self._value

    def integral(self, now: float) -> float:
        """Area under the signal over [reset-time, now].

        ``now`` may lie ahead of the last update: the signal is
        piecewise-constant, so the current level simply extends.  The
        time-series sampler diffs consecutive integrals to report
        per-window means without touching the signal itself.
        """
        return self._area + self._value * (now - self._last_change)

    def time_average(self, now: float) -> float:
        """Average level over [reset-time, now]; NaN on a zero window."""
        span = now - self._start
        if span <= 0:
            return math.nan
        return self.integral(now) / span

    def __repr__(self) -> str:
        return f"<TimeWeighted {self.name!r} value={self._value:.4g}>"


class Counter:
    """A named monotone counter with warm-up reset."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.total = 0

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (must be non-negative) to the count."""
        if by < 0:
            raise ValueError("Counter is monotone; use a TimeWeighted signal")
        self.total += by

    def reset(self) -> None:
        """Zero the counter (warm-up cutoff)."""
        self.total = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name!r} total={self.total}>"
