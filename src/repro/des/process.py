"""Process abstraction: a generator driven by the event loop.

A process is created from a Python generator that yields
:class:`~repro.des.events.Event` objects.  Each yield suspends the process
until the yielded event fires; the event's value is sent back into the
generator (or its exception thrown in).  A process is itself an event that
fires when the generator returns, which lets processes wait on each other.
"""

from __future__ import annotations

import typing

from repro.des.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment

ProcessGenerator = typing.Generator[Event, object, object]


class Process(Event):
    """A running simulation process wrapping a generator."""

    __slots__ = ("generator", "name", "_target")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: typing.Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"expected a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None when ready)
        self._target: typing.Optional[Event] = None

        # Kick the process off via an immediately-firing bootstrap event.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error; interrupting a process
        blocked on an event detaches it from that event first.
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        failed = Event(self.env)
        failed.callbacks.append(self._resume)
        failed._ok = False
        failed._value = Interrupt(cause)
        failed._triggered = True
        self.env.schedule(failed, priority=0)

    # -- engine plumbing ---------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_target = self.generator.send(event._value)
            else:
                next_target = self.generator.throw(
                    typing.cast(BaseException, event._value)
                )
        except StopIteration as stop:
            self._target = None
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            env._active_process = None
            if env.strict:
                raise
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(next_target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {next_target!r}, "
                "which is not an Event"
            )
        if next_target.env is not env:
            raise ValueError("yielded event belongs to another environment")
        self._target = next_target
        if next_target._processed:
            # Already fired and processed: resume on the next scheduling slot.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            relay._ok = next_target.ok
            relay._value = next_target._value
            relay._triggered = True
            self.env.schedule(relay)
        else:
            next_target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} ({status})>"
