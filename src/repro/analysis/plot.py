"""ASCII line charts for the paper's figures (no plotting dependency).

Renders a set of named series over a shared x axis as a monospace
scatter/line chart, close enough to eyeball the shapes the paper plots.
Used by ``examples/reproduce_paper.py`` output files and handy in a
terminal: ``print(ascii_chart(...))``.
"""

from __future__ import annotations

import math
import typing

#: glyphs assigned to series in order
_GLYPHS = "*o+x#@%&"


def ascii_chart(
    xs: typing.Sequence[float],
    series: typing.Mapping[str, typing.Sequence[float]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``series`` (name -> y values over ``xs``) as ASCII art.

    NaN points are skipped.  The y axis starts at 0 (the paper's figures
    all do); the x axis spans the data.
    """
    if not xs:
        raise ValueError("need at least one x value")
    if width < 16 or height < 4:
        raise ValueError("chart too small to draw")
    points: typing.List[typing.Tuple[float, float, str]] = []
    for index, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            if y is None or (isinstance(y, float) and math.isnan(y)):
                continue
            points.append((float(x), float(y), glyph))
    if not points:
        raise ValueError("no plottable points")

    x_lo, x_hi = min(xs), max(xs)
    y_hi = max(p[1] for p in points)
    if y_hi <= 0:
        y_hi = 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        column = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((1.0 - min(y, y_hi) / y_hi) * (height - 1)))
        grid[row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"[{legend}]")
    top_label = f"{y_hi:.3g} {y_label}"
    lines.append(top_label)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_lo:g}{' ' * max(1, width - len(f'{x_lo:g}') - len(f'{x_hi:g}'))}{x_hi:g}  ({x_label})")
    return "\n".join(lines)
