"""The scheduler arena: a pinned head-to-head matrix with a report.

The paper compares six 1991 schedulers; the arena re-asks its question
-- how much does concurrency control cost, and how much does parallelism
buy back -- across the full registered roster, modern families included.
A pinned ``scheduler x rate x DD`` matrix fans out through the cached
:class:`~repro.runner.ParallelRunner`; the outcome is a JSON artifact
(machine-checkable, schema-versioned) plus a markdown head-to-head
report, both written under ``results/arena/`` by ``python -m repro
arena``.

Two passes feed one report:

1. **Metrics pass** -- ``run_batch`` over the matrix (byte-deterministic
   and cache-served on repeats): throughput, response times, abort rate,
   contention counters, utilisation.
2. **Phase pass** (optional) -- ``run_bench`` over the same specs: the
   self-profiler's per-phase wall-clock split, answering *where* each
   scheduler spends its time (scheduler decisions vs. lock manager vs.
   machine scan).
3. **Explain pass** (optional) -- traced re-runs of the same specs
   folded through :func:`repro.obs.attrib.fold_trace_path`: the
   simulated time budget (queued / blocked / executing / wasted
   transaction-seconds), answering *why* each scheduler's response
   times look the way they do.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.core.registry import FAMILIES, family_of, grid_schedulers
from repro.runner.spec import RunSpec, WorkloadSpec

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runner.runner import ParallelRunner
    from repro.sim.metrics import SimulationResult

#: bump when the arena artifact layout changes incompatibly
ARENA_SCHEMA_VERSION = 1

#: the pinned default matrix axes
DEFAULT_RATES = (0.8, 1.2)
DEFAULT_DDS = (1, 4)
DEFAULT_DURATION_MS = 150_000.0
DEFAULT_WARMUP_MS = 30_000.0

#: per-cell metric fields every artifact must carry
CELL_FIELDS = (
    "scheduler",
    "family",
    "rate_tps",
    "dd",
    "seed",
    "completed",
    "throughput_tps",
    "mean_response_s",
    "p95_response_s",
    "abort_rate",
    "blocks",
    "delays",
    "restarts",
    "admission_rejections",
    "cn_utilisation",
    "dpn_utilisation",
)

#: fields an optional per-cell ``time_budget`` mapping must carry
TIME_BUDGET_FIELDS = (
    "queued_ms",
    "blocked_ms",
    "executing_ms",
    "wasted_ms",
    "total_ms",
    "fractions",
)


def scheduler_family(name: str) -> str:
    """Family tag for a (possibly parameterised) scheduler name:
    ``DGCC(B=16)`` resolves through its base name ``DGCC``."""
    return family_of(name.split("(", 1)[0])


def arena_specs(
    schedulers: typing.Sequence[str],
    rates: typing.Sequence[float] = DEFAULT_RATES,
    dds: typing.Sequence[int] = DEFAULT_DDS,
    *,
    workload: str = "exp1",
    num_files: int = 16,
    sigma: float = 1.0,
    seed: int = 0,
    duration_ms: float = DEFAULT_DURATION_MS,
    warmup_ms: float = DEFAULT_WARMUP_MS,
) -> typing.List[RunSpec]:
    """The matrix as RunSpecs, in (rate, dd, scheduler) order."""

    def _workload(rate: float) -> WorkloadSpec:
        if workload == "exp2":
            return WorkloadSpec.make("exp2", rate)
        if workload == "exp3":
            return WorkloadSpec.make(
                "exp3", rate, sigma=sigma, num_files=num_files
            )
        return WorkloadSpec.make("exp1", rate, num_files=num_files)

    from repro.machine.config import MachineConfig

    return [
        RunSpec(
            scheduler=scheduler,
            workload=_workload(rate),
            config=MachineConfig(dd=dd, num_files=num_files),
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
        )
        for rate in rates
        for dd in dds
        for scheduler in schedulers
    ]


def _abort_rate(result: "SimulationResult") -> float:
    attempts = result.completed + result.restarts
    return result.restarts / attempts if attempts else 0.0


def _phase_summary(
    row: typing.Optional[typing.Dict[str, typing.Any]],
) -> typing.Optional[typing.Dict[str, float]]:
    """Per-phase wall-second split of one bench row (None -> no pass)."""
    if row is None:
        return None
    profile = row.get("profile", {})
    phases = {
        name: data["seconds"]
        for name, data in profile.get("phases", {}).items()
    }
    if "other_s" in profile:
        phases["other"] = profile["other_s"]
    return phases


def _budget_summary(
    budget: typing.Optional[typing.Dict[str, typing.Any]],
) -> typing.Optional[typing.Dict[str, typing.Any]]:
    """Slim an :meth:`Attribution.budget` dict down to the per-cell
    ``time_budget`` mapping (None -> no explain pass for this cell)."""
    if budget is None:
        return None
    return {
        "queued_ms": round(budget["queued_ms"], 3),
        "blocked_ms": round(budget["blocked_ms"], 3),
        "executing_ms": round(budget["executing_ms"], 3),
        "wasted_ms": round(budget["wasted_ms"], 3),
        "total_ms": round(budget["total_ms"], 3),
        "fractions": {
            bucket: round(value, 6)
            for bucket, value in budget["fractions"].items()
        },
    }


def arena_payload(
    specs: typing.Sequence[RunSpec],
    results: typing.Sequence[typing.Optional["SimulationResult"]],
    bench_rows: typing.Optional[
        typing.Sequence[typing.Optional[typing.Dict[str, typing.Any]]]
    ] = None,
    *,
    time_budgets: typing.Optional[
        typing.Sequence[typing.Optional[typing.Dict[str, typing.Any]]]
    ] = None,
    git_sha: typing.Optional[str] = None,
    created: typing.Optional[str] = None,
) -> typing.Dict[str, typing.Any]:
    """Assemble the schema-versioned arena artifact.

    ``results`` aligns with ``specs`` (None marks a failed cell, which
    is dropped with a note); ``bench_rows`` optionally aligns too and
    contributes the per-phase cost split; ``time_budgets`` (dicts in
    the shape of :meth:`Attribution.budget`, from the traced explain
    pass) aligns as well and contributes the why columns.
    """
    if len(results) != len(specs):
        raise ValueError(
            f"results/specs length mismatch: {len(results)} vs {len(specs)}"
        )
    if bench_rows is not None and len(bench_rows) != len(specs):
        raise ValueError(
            f"bench_rows/specs length mismatch: "
            f"{len(bench_rows)} vs {len(specs)}"
        )
    if time_budgets is not None and len(time_budgets) != len(specs):
        raise ValueError(
            f"time_budgets/specs length mismatch: "
            f"{len(time_budgets)} vs {len(specs)}"
        )
    cells = []
    failed = 0
    for index, (spec, result) in enumerate(zip(specs, results)):
        if result is None:
            failed += 1
            continue
        cell: typing.Dict[str, typing.Any] = {
            "scheduler": spec.scheduler,
            "family": scheduler_family(spec.scheduler),
            "workload": spec.workload.kind,
            "rate_tps": spec.workload.rate_tps,
            "dd": spec.config.dd,
            "seed": spec.seed,
            "duration_ms": spec.duration_ms,
            "warmup_ms": spec.warmup_ms,
            "completed": result.completed,
            "throughput_tps": round(result.throughput_tps, 6),
            "mean_response_s": round(result.mean_response_s, 6),
            "p95_response_s": round(result.p95_response_ms / 1000.0, 6),
            "abort_rate": round(_abort_rate(result), 6),
            "blocks": result.blocks,
            "delays": result.delays,
            "restarts": result.restarts,
            "admission_rejections": result.admission_rejections,
            "cn_utilisation": round(result.cn_utilisation, 6),
            "dpn_utilisation": round(result.dpn_utilisation, 6),
        }
        phase = _phase_summary(
            bench_rows[index] if bench_rows is not None else None
        )
        if phase is not None:
            cell["phase_cost_s"] = phase
        budget = _budget_summary(
            time_budgets[index] if time_budgets is not None else None
        )
        if budget is not None:
            cell["time_budget"] = budget
        cells.append(cell)
    payload: typing.Dict[str, typing.Any] = {
        "schema_version": ARENA_SCHEMA_VERSION,
        "schema": ARENA_SCHEMA_VERSION,
        "kind": "arena",
        "cells": cells,
        "failed_cells": failed,
    }
    if git_sha:
        payload["git_sha"] = git_sha
    if created:
        payload["created"] = created
    return payload


def validate_arena(payload: typing.Dict[str, typing.Any]) -> int:
    """Schema-check an arena artifact; returns the cell count.

    Raises ``ValueError`` with a pinpointed message on the first
    violation (the arena-smoke CI job runs this against a fresh
    artifact).
    """
    if payload.get("kind") != "arena":
        raise ValueError(f"kind must be 'arena', got {payload.get('kind')!r}")
    version = payload.get("schema_version", payload.get("schema"))
    if version is None:
        raise ValueError(
            "arena artifact carries no schema_version (nor the legacy "
            "schema) stamp"
        )
    if version != ARENA_SCHEMA_VERSION:
        raise ValueError(
            f"unknown arena schema_version {version!r}; this build "
            f"supports {ARENA_SCHEMA_VERSION}"
        )
    legacy = payload.get("schema")
    if "schema_version" in payload and legacy not in (None, version):
        raise ValueError(
            f"schema_version {version!r} contradicts schema {legacy!r}"
        )
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("cells must be a non-empty list")
    for index, cell in enumerate(cells):
        for field in CELL_FIELDS:
            if field not in cell:
                raise ValueError(f"cell {index} is missing {field!r}")
        if cell["family"] not in FAMILIES:
            raise ValueError(
                f"cell {index} has unknown family {cell['family']!r}"
            )
        phases = cell.get("phase_cost_s")
        if phases is not None and not isinstance(phases, dict):
            raise ValueError(f"cell {index} phase_cost_s must be a mapping")
        budget = cell.get("time_budget")
        if budget is not None:
            if not isinstance(budget, dict):
                raise ValueError(
                    f"cell {index} time_budget must be a mapping"
                )
            for field in TIME_BUDGET_FIELDS:
                if field not in budget:
                    raise ValueError(
                        f"cell {index} time_budget is missing {field!r}"
                    )
            if not isinstance(budget["fractions"], dict):
                raise ValueError(
                    f"cell {index} time_budget fractions must be a mapping"
                )
    return len(cells)


def _groups(
    cells: typing.Sequence[typing.Dict[str, typing.Any]],
) -> typing.List[
    typing.Tuple[
        typing.Tuple[str, float, int],
        typing.List[typing.Dict[str, typing.Any]],
    ]
]:
    """Cells grouped by (workload, rate, dd), in first-seen order."""
    order: typing.List[typing.Tuple[str, float, int]] = []
    grouped: typing.Dict[
        typing.Tuple[str, float, int],
        typing.List[typing.Dict[str, typing.Any]],
    ] = {}
    for cell in cells:
        key = (cell["workload"], cell["rate_tps"], cell["dd"])
        if key not in grouped:
            order.append(key)
            grouped[key] = []
        grouped[key].append(cell)
    return [(key, grouped[key]) for key in order]


def _hot_phase(cell: typing.Dict[str, typing.Any]) -> str:
    phases = cell.get("phase_cost_s")
    if not phases:
        return "-"
    name, seconds = max(phases.items(), key=lambda item: item[1])
    total = sum(phases.values())
    share = 100.0 * seconds / total if total > 0 else 0.0
    return f"{name} ({share:.0f}%)"


def _why_columns(cell: typing.Dict[str, typing.Any]) -> str:
    """The queued/blocked/executing/wasted share cells ('-' quartet
    when the cell has no explain pass)."""
    budget = cell.get("time_budget")
    if not budget:
        return "- | - | - | -"
    fractions = budget["fractions"]
    return " | ".join(
        f"{100.0 * fractions.get(bucket, 0.0):.0f}%"
        for bucket in ("queued", "blocked", "executing", "wasted")
    )


def render_arena_markdown(payload: typing.Dict[str, typing.Any]) -> str:
    """The head-to-head report as a markdown document."""
    lines = ["# Scheduler arena", ""]
    meta_bits = []
    if payload.get("created"):
        meta_bits.append(f"generated {payload['created']}")
    if payload.get("git_sha"):
        meta_bits.append(f"commit `{payload['git_sha']}`")
    meta_bits.append(f"{len(payload['cells'])} cells")
    if payload.get("failed_cells"):
        meta_bits.append(f"{payload['failed_cells']} failed cell(s) dropped")
    lines.append("*" + ", ".join(meta_bits) + "*")
    lines.append("")

    wins: typing.Dict[str, int] = {}
    for (workload, rate, dd), cells in _groups(payload["cells"]):
        lines.append(f"## {workload} @ {rate:g} TPS, DD={dd}")
        lines.append("")
        lines.append(
            "| scheduler | family | TPS | mean RT (s) | p95 RT (s) "
            "| abort rate | blocks | delays | CN util "
            "| %queued | %blocked | %exec | %wasted | hot phase |"
        )
        lines.append("|---|---|---|---|---|---|---|---|---|---|---|---|"
                     "---|---|")
        best = max(cells, key=lambda c: c["throughput_tps"])
        wins[best["scheduler"]] = wins.get(best["scheduler"], 0) + 1
        for cell in cells:
            marker = " **(best)**" if cell is best else ""
            lines.append(
                f"| {cell['scheduler']}{marker} "
                f"| {cell['family']} "
                f"| {cell['throughput_tps']:.3f} "
                f"| {cell['mean_response_s']:.2f} "
                f"| {cell['p95_response_s']:.2f} "
                f"| {cell['abort_rate']:.3f} "
                f"| {cell['blocks']} "
                f"| {cell['delays']} "
                f"| {cell['cn_utilisation']:.3f} "
                f"| {_why_columns(cell)} "
                f"| {_hot_phase(cell)} |"
            )
        lines.append("")

    lines.append("## Head-to-head")
    lines.append("")
    lines.append("| scheduler | family | group wins (by TPS) |")
    lines.append("|---|---|---|")
    for name in sorted(wins, key=lambda n: (-wins[n], n)):
        lines.append(
            f"| {name} | {scheduler_family(name)} | {wins[name]} |"
        )
    lines.append("")
    return "\n".join(lines)


def write_arena(
    payload: typing.Dict[str, typing.Any],
    out_dir: typing.Union[str, pathlib.Path],
) -> typing.Tuple[pathlib.Path, pathlib.Path]:
    """Write ``ARENA.json`` + ``ARENA.md`` under ``out_dir``."""
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "ARENA.json"
    md_path = directory / "ARENA.md"
    json_path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    md_path.write_text(render_arena_markdown(payload), encoding="utf-8")
    return json_path, md_path


def load_arena(
    path: typing.Union[str, pathlib.Path],
) -> typing.Dict[str, typing.Any]:
    """Read and schema-check an arena artifact."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    validate_arena(payload)
    return payload


def default_arena_schedulers() -> typing.Tuple[str, ...]:
    """The pinned line-up: every grid-eligible paper + modern scheduler."""
    return grid_schedulers(("paper", "modern"))
