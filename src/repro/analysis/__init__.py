"""Reporting helpers: text tables, figure-as-series rendering, CSV."""

from repro.analysis import paper_data
from repro.analysis.compare import ordering_agreement, ratio_spread
from repro.analysis.plot import ascii_chart
from repro.analysis.report import format_cell, render_series, render_table, to_csv

__all__ = ["ascii_chart", "ordering_agreement", "paper_data", "ratio_spread", "format_cell", "render_series", "render_table", "to_csv"]
