"""The paper's published numbers (Tables 2-5), as data.

Used by the comparison helpers and the benchmark suite to check
measured results against the 1991 publication without hand-copying
numbers into every test.
"""

from __future__ import annotations

#: Table 2 -- throughput (TPS) at RT = 70 s, DD = 1, by NumFiles
TABLE2 = {
    8: {"NODC": 1.02, "ASL": 0.45, "GOW": 0.44, "LOW": 0.44, "C2PL": 0.25, "OPT": 0.16},
    16: {"NODC": 1.04, "ASL": 0.72, "GOW": 0.67, "LOW": 0.65, "C2PL": 0.35, "OPT": 0.24},
    32: {"NODC": 1.04, "ASL": 0.90, "GOW": 0.86, "LOW": 0.83, "C2PL": 0.50, "OPT": 0.30},
    64: {"NODC": 1.04, "ASL": 0.96, "GOW": 0.95, "LOW": 0.94, "C2PL": 0.62, "OPT": 0.38},
}

#: Table 3 -- response time (s) at lambda = 1.2 TPS, NumFiles = 16, by DD
TABLE3 = {
    1: {"NODC": 141, "ASL": 387, "GOW": 429, "LOW": 430, "C2PL+M": 669, "OPT": 783},
    2: {"NODC": 103, "ASL": 183, "GOW": 233, "LOW": 245, "C2PL+M": 479, "OPT": 555},
    4: {"NODC": 74, "ASL": 83, "GOW": 102, "LOW": 107, "C2PL+M": 250, "OPT": 494},
    8: {"NODC": 58, "ASL": 48, "GOW": 47, "LOW": 47, "C2PL+M": 50, "OPT": 490},
}

#: Table 4 -- hot-set throughput (TPS at RT = 70 s) by DD
TABLE4_THROUGHPUT = {
    1: {"NODC": 1.10, "ASL": 0.40, "GOW": 0.57, "LOW": 0.77, "C2PL": 0.70, "OPT": 0.38},
    2: {"NODC": 1.11, "ASL": 0.70, "GOW": 0.88, "LOW": 1.01, "C2PL": 0.92, "OPT": 0.55},
    4: {"NODC": 1.13, "ASL": 1.03, "GOW": 1.10, "LOW": 1.12, "C2PL": 1.09, "OPT": 0.85},
}

#: Table 4 -- hot-set response time (s) at lambda = 1.2 TPS by DD
TABLE4_RESPONSE = {
    1: {"NODC": 112, "ASL": 611, "GOW": 500, "LOW": 321, "C2PL": 432, "OPT": 751},
    2: {"NODC": 97, "ASL": 380, "GOW": 252, "LOW": 133, "C2PL": 242, "OPT": 746},
    4: {"NODC": 87, "ASL": 116, "GOW": 80, "LOW": 57, "C2PL": 118, "OPT": 457},
}

#: Table 5 -- degradation ratio (%) TPS(sigma=10)/TPS(sigma=0) by DD
TABLE5 = {
    "GOW": {1: 94.0, 2: 96.0, 4: 97.5},
    "LOW": {1: 77.0, 2: 84.0, 4: 93.0},
}
