"""`repro explain`: the EXPLAIN artifact over a folded trace.

:mod:`repro.obs.attrib` turns a trace stream into span timelines; this
module turns that attribution into a durable, schema-versioned artifact
pair -- ``EXPLAIN.json`` (machine-checkable) and ``EXPLAIN.md`` (the
human report) -- mirroring how the arena publishes ``ARENA.json`` +
``ARENA.md``.  The JSON payload carries the batch time budget, the
lock-hotspot table, the makespan critical path, the blocking-graph
edges, anomaly flags, and one summary row per logical transaction;
:func:`validate_explain` re-checks the conservation invariant on every
committed row, so a hand-edited artifact cannot silently lie about
where the time went.
"""

from __future__ import annotations

import json
import math
import pathlib
import typing

from repro.obs.attrib import (
    CONSERVATION_ABS_TOL,
    CONSERVATION_REL_TOL,
    Attribution,
    fold_trace,
    fold_trace_path,
)

PathLike = typing.Union[str, pathlib.Path]

#: bump when the EXPLAIN payload layout changes incompatibly
EXPLAIN_SCHEMA_VERSION = 1

#: buckets of the batch time budget, in render order
BUDGET_BUCKETS = ("queued", "blocked", "executing", "wasted")

#: top-level payload fields every artifact must carry
EXPLAIN_FIELDS = (
    "schema",
    "kind",
    "source",
    "budget",
    "hotspots",
    "critical_path",
    "blocking_edges",
    "anomalies",
    "transactions",
)

#: per-transaction-row fields
TXN_FIELDS = (
    "txn",
    "label",
    "status",
    "attempts",
    "arrival_ms",
    "end_ms",
    "queued_ms",
    "blocked_ms",
    "executing_ms",
    "wasted_ms",
)


def explain_attribution(
    attribution: Attribution,
    source: typing.Optional[typing.Mapping[str, typing.Any]] = None,
) -> typing.Dict[str, typing.Any]:
    """Assemble the EXPLAIN payload from a folded attribution.

    ``source`` defaults to the trace's own meta record (scheduler, seed,
    workload identity); pass extra keys to record where the trace came
    from (e.g. the artifact path).
    """
    merged_source = dict(attribution.meta)
    if source:
        merged_source.update(source)
    rows = []
    for root in sorted(attribution.transactions):
        timeline = attribution.transactions[root]
        totals = timeline.totals()
        row: typing.Dict[str, typing.Any] = {
            "txn": root,
            "label": timeline.label,
            "status": timeline.status,
            "attempts": len(timeline.attempts),
            "arrival_ms": timeline.arrival,
            "end_ms": timeline.end,
            "queued_ms": totals["queued"],
            "blocked_ms": totals["blocked"],
            "executing_ms": totals["executing"],
            "wasted_ms": totals["wasted"],
        }
        if timeline.response_ms is not None:
            row["response_ms"] = timeline.response_ms
        rows.append(row)
    return {
        "schema": EXPLAIN_SCHEMA_VERSION,
        "kind": "explain",
        "source": merged_source,
        "budget": attribution.budget(),
        "hotspots": attribution.hotspots(),
        "critical_path": attribution.critical_path(),
        "blocking_edges": attribution.blocking_edges(),
        "anomalies": attribution.anomalies(),
        "transactions": rows,
    }


def explain_payload(
    events: typing.Iterable[typing.Mapping[str, typing.Any]],
    source: typing.Optional[typing.Mapping[str, typing.Any]] = None,
) -> typing.Dict[str, typing.Any]:
    """Fold an event stream and assemble its EXPLAIN payload."""
    return explain_attribution(fold_trace(events), source=source)


def explain_trace_path(path: PathLike) -> typing.Dict[str, typing.Any]:
    """Fold a JSONL trace artifact into its EXPLAIN payload."""
    return explain_attribution(
        fold_trace_path(path), source={"trace": str(path)}
    )


def validate_explain(payload: typing.Mapping[str, typing.Any]) -> int:
    """Schema-check an EXPLAIN payload; returns the transaction count.

    Beyond shape checks this re-verifies the conservation invariant on
    every committed transaction row: the four budget buckets must sum to
    the recorded response time (float round-off tolerance only).
    """
    if payload.get("kind") != "explain":
        raise ValueError(
            f"kind must be 'explain', got {payload.get('kind')!r}"
        )
    if payload.get("schema") != EXPLAIN_SCHEMA_VERSION:
        raise ValueError(
            f"schema must be {EXPLAIN_SCHEMA_VERSION}, "
            f"got {payload.get('schema')!r}"
        )
    for field in EXPLAIN_FIELDS:
        if field not in payload:
            raise ValueError(f"payload is missing {field!r}")
    budget = payload["budget"]
    for bucket in BUDGET_BUCKETS:
        if f"{bucket}_ms" not in budget:
            raise ValueError(f"budget is missing {bucket}_ms")
        if bucket not in budget.get("fractions", {}):
            raise ValueError(f"budget fractions are missing {bucket!r}")
    rows = payload["transactions"]
    if not isinstance(rows, list):
        raise ValueError("transactions must be a list")
    for index, row in enumerate(rows):
        for field in TXN_FIELDS:
            if field not in row:
                raise ValueError(f"transaction row {index} is missing {field!r}")
        if row["status"] == "committed":
            if "response_ms" not in row:
                raise ValueError(
                    f"committed row {index} has no response_ms"
                )
            attributed = (
                row["queued_ms"] + row["blocked_ms"]
                + row["executing_ms"] + row["wasted_ms"]
            )
            if not math.isclose(
                attributed,
                row["response_ms"],
                rel_tol=CONSERVATION_REL_TOL,
                abs_tol=CONSERVATION_ABS_TOL,
            ):
                raise ValueError(
                    f"row {index} (T{row['txn']}): attributed "
                    f"{attributed} ms != response {row['response_ms']} ms"
                )
    return len(rows)


# -- rendering ----------------------------------------------------------------


def render_budget_line(budget: typing.Mapping[str, typing.Any]) -> str:
    """One-line time-budget headline (used by ``repro report`` too)."""
    fractions = budget.get("fractions", {})
    parts = [
        f"{bucket} {100.0 * fractions.get(bucket, 0.0):.1f}%"
        for bucket in BUDGET_BUCKETS
    ]
    return (
        f"time budget ({budget.get('total_ms', 0.0) / 1000.0:.1f} "
        f"txn-seconds): " + " | ".join(parts)
    )


def _budget_bar(
    fractions: typing.Mapping[str, float], width: int = 40
) -> str:
    """An ASCII strip chart of the four budget buckets."""
    glyphs = {"queued": "q", "blocked": "#", "executing": "=",
              "wasted": "x"}
    bar = ""
    for bucket in BUDGET_BUCKETS:
        cells = int(round(width * fractions.get(bucket, 0.0)))
        bar += glyphs[bucket] * cells
    return f"[{bar[:width]:<{width}}]"


def _fmt_ms(value: float) -> str:
    return f"{value / 1000.0:.2f}s" if value >= 1000 else f"{value:.1f}ms"


def render_explain_markdown(
    payload: typing.Mapping[str, typing.Any], top: int = 10
) -> str:
    """The EXPLAIN report as a markdown document."""
    source = payload.get("source", {})
    budget = payload["budget"]
    fractions = budget.get("fractions", {})
    title_bits = [
        str(source[key])
        for key in ("scheduler", "workload", "rate_tps", "dd")
        if key in source
    ]
    lines = ["# Explain: where the time went", ""]
    if title_bits:
        lines[0] = f"# Explain: {' / '.join(title_bits)}"
    if source:
        described = ", ".join(
            f"{key}={source[key]}" for key in sorted(source)
        )
        lines.append(f"*{described}*")
        lines.append("")

    lines.append("## Time budget")
    lines.append("")
    lines.append(f"`{_budget_bar(fractions)}`")
    lines.append("")
    lines.append("| bucket | txn-seconds | share |")
    lines.append("|---|---|---|")
    for bucket in BUDGET_BUCKETS:
        lines.append(
            f"| {bucket} | {budget.get(f'{bucket}_ms', 0.0) / 1000.0:.2f} "
            f"| {100.0 * fractions.get(bucket, 0.0):.1f}% |"
        )
    lines.append("")
    lines.append(
        f"{budget.get('transactions', 0)} transaction(s): "
        f"{budget.get('committed', 0)} committed, "
        f"{budget.get('restarts', 0)} restart(s), "
        f"{budget.get('in_flight', 0)} still in flight; "
        f"makespan {_fmt_ms(budget.get('makespan_ms', 0.0))}, "
        f"mean response {_fmt_ms(budget.get('mean_response_ms', 0.0))}."
    )
    lines.append("")

    lines.append("## Lock hotspots")
    lines.append("")
    hotspots = payload["hotspots"]
    if hotspots:
        lines.append("| file | blocked | waits | max convoy | top blockers |")
        lines.append("|---|---|---|---|---|")
        for row in hotspots[:top]:
            blockers = ", ".join(
                f"T{b['txn']} ({_fmt_ms(b['ms'])})"
                for b in row.get("top_blockers", [])
            ) or "-"
            lines.append(
                f"| F{row['file']} | {_fmt_ms(row['blocked_ms'])} "
                f"| {row['waits']} | {row['max_convoy']} | {blockers} |"
            )
    else:
        lines.append("(no lock waits observed)")
    lines.append("")

    lines.append("## Critical path (makespan tail)")
    lines.append("")
    path = payload["critical_path"]
    if path:
        shown = path[-top:] if len(path) > top else path
        if len(path) > top:
            lines.append(
                f"({len(path) - top} earlier segment(s) elided)"
            )
            lines.append("")
        for segment in shown:
            where = f" on F{segment['file']}" if "file" in segment else ""
            lines.append(
                f"- T{segment['txn']}"
                f"[{segment['attempt']}] {segment['kind']}{where}: "
                f"{segment['start']:.1f} -> {segment['end']:.1f} ms "
                f"({_fmt_ms(segment['end'] - segment['start'])})"
            )
    else:
        lines.append("(empty trace)")
    lines.append("")

    lines.append("## Anomalies")
    lines.append("")
    anomalies = payload["anomalies"]
    if anomalies:
        for flag in anomalies:
            if flag["kind"] == "starvation":
                lines.append(
                    f"- **starvation** T{flag['txn']}: response "
                    f"{_fmt_ms(flag['response_ms'])} "
                    f"({flag['wait_share']:.0%} waiting; batch median "
                    f"{_fmt_ms(flag['median_response_ms'])})"
                )
            else:
                lines.append(
                    f"- **convoy** F{flag['file']}: queue depth "
                    f"{flag['max_convoy']}, "
                    f"{_fmt_ms(flag['blocked_ms'])} blocked "
                    f"({flag['blocked_share']:.0%} of all blocking)"
                )
    else:
        lines.append("(none flagged)")
    lines.append("")

    lines.append("## Slowest transactions")
    lines.append("")
    rows = [
        row for row in payload["transactions"]
        if row["status"] == "committed"
    ]
    rows.sort(key=lambda r: -r.get("response_ms", 0.0))
    if rows:
        lines.append(
            "| txn | label | attempts | response | queued | blocked "
            "| executing | wasted |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        for row in rows[:top]:
            lines.append(
                f"| T{row['txn']} | {row['label']} | {row['attempts']} "
                f"| {_fmt_ms(row.get('response_ms', 0.0))} "
                f"| {_fmt_ms(row['queued_ms'])} "
                f"| {_fmt_ms(row['blocked_ms'])} "
                f"| {_fmt_ms(row['executing_ms'])} "
                f"| {_fmt_ms(row['wasted_ms'])} |"
            )
    else:
        lines.append("(no committed transactions)")
    lines.append("")
    return "\n".join(lines)


def render_txn_markdown(
    attribution: Attribution, txn_id: int
) -> str:
    """The per-transaction deep dive behind ``repro explain --txn``."""
    timeline = attribution.transactions.get(txn_id)
    if timeline is None:
        for candidate in attribution.transactions.values():
            if any(a.txn_id == txn_id for a in candidate.attempts):
                timeline = candidate
                break
    if timeline is None:
        raise KeyError(f"transaction {txn_id} not in trace")
    totals = timeline.totals()
    lines = [
        f"# Transaction T{timeline.root} ({timeline.label})",
        "",
        f"status **{timeline.status}**, {len(timeline.attempts)} "
        f"attempt(s), arrival {timeline.arrival:.1f} ms, "
        f"end {timeline.end:.1f} ms"
        + (
            f", response {_fmt_ms(timeline.response_ms)}"
            if timeline.response_ms is not None
            else ""
        ),
        "",
        f"queued {_fmt_ms(totals['queued'])} | "
        f"blocked {_fmt_ms(totals['blocked'])} | "
        f"executing {_fmt_ms(totals['executing'])} | "
        f"wasted {_fmt_ms(totals['wasted'])}",
        "",
    ]
    for attempt in timeline.attempts:
        ending = (
            f"{attempt.outcome}"
            + (f" ({attempt.reason})" if attempt.reason else "")
        )
        lines.append(
            f"## Attempt {attempt.index} (T{attempt.txn_id}): {ending}"
        )
        lines.append("")
        for span in attempt.spans:
            where = f" on F{span.file}" if span.file is not None else ""
            flavor = f" [{span.flavor}]" if span.flavor else ""
            lines.append(
                f"- {span.kind}{where}{flavor}: {span.start:.1f} -> "
                f"{span.end:.1f} ms ({_fmt_ms(span.duration)})"
            )
        if attempt.steps:
            steps = ", ".join(
                f"step {step} F{file_id} {_fmt_ms(end - start)}"
                for file_id, step, start, end in attempt.steps
            )
            lines.append(f"- scans: {steps}")
        lines.append("")
    return "\n".join(lines)


# -- artifacts ----------------------------------------------------------------


def write_explain(
    payload: typing.Mapping[str, typing.Any],
    out_dir: PathLike,
) -> typing.Tuple[pathlib.Path, pathlib.Path]:
    """Write ``EXPLAIN.json`` + ``EXPLAIN.md`` under ``out_dir``."""
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "EXPLAIN.json"
    md_path = directory / "EXPLAIN.md"
    json_path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    md_path.write_text(
        render_explain_markdown(payload), encoding="utf-8"
    )
    return json_path, md_path


def load_explain(path: PathLike) -> typing.Dict[str, typing.Any]:
    """Read and schema-check an EXPLAIN artifact."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    validate_explain(payload)
    return payload


def time_budget_of_trace(
    path: PathLike,
) -> typing.Dict[str, typing.Any]:
    """Fold one trace artifact down to just its batch time budget
    (the arena's why-columns use this)."""
    return fold_trace_path(path).budget()
