"""Trend analytics over the :mod:`repro.obs.history` store.

Where ``repro bench --compare`` answers "did this commit regress
against that one?", this module answers the longitudinal questions the
history store exists for:

- **per-cell and aggregate series** -- every ``events_per_s`` sample a
  matrix cell has ever produced, in snapshot order, plus the
  aggregate-throughput trajectory across snapshots;
- **regression detection** -- the latest snapshot's cells against the
  median of a trailing window of prior snapshots, verdicted with the
  same noise-hardening as ``compare_bench`` (per-cell tolerance, an
  aggregate-speed rule, and a quorum so one flaky cell can't fail the
  check);
- **scheduler-ranking drift** -- for every (workload, rate, DD) group,
  whether the throughput ranking of schedulers flipped between the
  trailing window and the latest snapshot (the regime-dependent
  crossovers the arena exists to surface) -- flagged, never failed,
  because a genuine crossover is a *finding*, not a bug;
- **memory growth** -- peak-RSS trajectories from bench rows and
  telemetry peaks, flagged against their own (looser) tolerance.

Reports are **deterministic**: ``HISTORY.json`` is derived purely from
the store contents and the analysis parameters -- no wall-clock
timestamps, stable ordering, rounded floats -- so re-running ``repro
history report`` over an unchanged store is byte-identical, and the
artifact can be committed or diffed in CI.

Snapshots are ordered by their artifact ``created`` stamp, falling back
to store append order for artifacts that carry none (telemetry streams,
EXPLAIN payloads).  Bench cells are keyed by (scheduler, workload,
rate_tps, dd) *without* seed or duration: ``events_per_s`` is
horizon-independent, so runs of the same cell at different horizons are
samples of the same quantity (the longest horizon wins when one
snapshot holds several).
"""

from __future__ import annotations

import json
import math
import pathlib
import statistics
import typing

from repro.bench import (
    DEFAULT_MEM_TOLERANCE,
    DEFAULT_TOLERANCE,
    REGRESSION_QUORUM,
)
from repro.obs.history import HistoryStore, HistorySchemaError

PathLike = typing.Union[str, pathlib.Path]

#: bump when the HISTORY.json layout changes incompatibly
TRENDS_SCHEMA_VERSION = 1

#: how many prior snapshots the trailing-median baseline spans
DEFAULT_WINDOW = 5

#: a cell needs this many samples before it contributes to the verdict
MIN_SAMPLES = 2

CellKey = typing.Tuple[str, str, float, int]


# -- snapshot assembly --------------------------------------------------------


def order_snapshots(
    records: typing.Sequence[typing.Mapping[str, typing.Any]],
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Group records by snapshot digest and order snapshots for trends.

    Ordering is by (``created`` stamp, first-seen store position):
    artifacts without a stamp sort before stamped ones at the same
    store position only via the empty-string fallback, and ties break
    on append order -- both stable, neither wall-clock dependent.
    """
    by_digest: typing.Dict[str, typing.Dict[str, typing.Any]] = {}
    for index, record in enumerate(records):
        digest = record["snapshot"]
        entry = by_digest.get(digest)
        if entry is None:
            entry = {
                "snapshot": digest,
                "source": record["source"],
                "family": record["family"],
                "created": record.get("created"),
                "git_sha": record.get("git_sha"),
                "host": record.get("host"),
                "first_seen": index,
                "records": [],
            }
            by_digest[digest] = entry
        if entry["created"] is None and record.get("created"):
            entry["created"] = record["created"]
        if entry["git_sha"] is None and record.get("git_sha"):
            entry["git_sha"] = record["git_sha"]
        entry["records"].append(record)
    return sorted(
        by_digest.values(),
        key=lambda entry: (entry["created"] or "", entry["first_seen"]),
    )


def cell_key(
    cell: typing.Mapping[str, typing.Any],
) -> typing.Optional[CellKey]:
    """The duration/seed-free identity a bench cell is tracked under."""
    scheduler = cell.get("scheduler")
    workload = cell.get("workload")
    rate = cell.get("rate_tps")
    dd = cell.get("dd")
    if scheduler is None or workload is None or rate is None or dd is None:
        return None
    return (str(scheduler), str(workload), float(rate), int(dd))


def _cell_label(key: CellKey) -> str:
    scheduler, workload, rate, dd = key
    rate_text = f"{rate:g}"
    return f"{scheduler}/{workload}@{rate_text}tps dd={dd}"


def _pick_bench_sample(
    rows: typing.Sequence[typing.Mapping[str, typing.Any]],
) -> typing.Mapping[str, typing.Any]:
    """When one snapshot holds several runs of a cell (different
    horizons/seeds), keep the longest-horizon, fastest row."""

    def rank(row: typing.Mapping[str, typing.Any]) -> typing.Tuple[float, float]:
        cell = row.get("cell") or {}
        return (
            float(cell.get("duration_ms") or 0.0),
            float(row["metrics"].get("events_per_s") or 0.0),
        )

    return max(rows, key=rank)


def build_cell_series(
    snapshots: typing.Sequence[typing.Mapping[str, typing.Any]],
    record_kind: str = "bench.cell",
    metric: str = "events_per_s",
) -> typing.Dict[CellKey, typing.List[typing.Dict[str, typing.Any]]]:
    """Per-cell sample series across ``snapshots``, in snapshot order.

    Each sample is ``{"snapshot", "created", "git_sha", "value", ...}``
    with ``maxrss_kb`` and ``throughput_tps`` carried along when the
    source records have them.
    """
    series: typing.Dict[CellKey, typing.List[typing.Dict[str, typing.Any]]] = {}
    for snapshot in snapshots:
        grouped: typing.Dict[CellKey, typing.List[typing.Mapping[str, typing.Any]]] = {}
        for record in snapshot["records"]:
            if record["kind"] != record_kind:
                continue
            key = cell_key(record.get("cell") or {})
            if key is None or record["metrics"].get(metric) is None:
                continue
            grouped.setdefault(key, []).append(record)
        for key, rows in grouped.items():
            row = _pick_bench_sample(rows)
            series.setdefault(key, []).append({
                "snapshot": snapshot["snapshot"],
                "created": snapshot["created"],
                "git_sha": snapshot["git_sha"],
                "value": float(row["metrics"][metric]),
                "maxrss_kb": row["metrics"].get("maxrss_kb"),
                "throughput_tps": row["metrics"].get("throughput_tps"),
            })
    return series


# -- regression detection -----------------------------------------------------


def _trailing_median(
    values: typing.Sequence[float], window: int
) -> typing.Optional[float]:
    """Median of the last ``window`` values before the final one."""
    prior = values[:-1][-window:]
    if not prior:
        return None
    return statistics.median(prior)


def detect_regressions(
    series: typing.Mapping[CellKey, typing.Sequence[typing.Mapping[str, typing.Any]]],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    mem_tolerance: float = DEFAULT_MEM_TOLERANCE,
    window: int = DEFAULT_WINDOW,
) -> typing.Dict[str, typing.Any]:
    """Verdict the latest snapshot of every cell against its trailing
    window, with ``compare_bench``-style noise hardening.

    A cell *regresses* when its latest ``events_per_s`` falls below the
    trailing-window median by more than ``tolerance``; memory *grows*
    when latest ``maxrss_kb`` exceeds the trailing median by more than
    ``mem_tolerance``.  The overall verdict fails only on the
    median-of-ratios aggregate or a ≥quorum count of regressed cells --
    a single noisy cell cannot fail the check.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if mem_tolerance <= 0.0:
        raise ValueError(f"mem_tolerance must be positive, got {mem_tolerance}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")

    cells = []
    speed_ratios = []
    mem_ratios = []
    regressions = 0
    mem_growth = 0
    evaluated = 0
    mem_evaluated = 0
    for key in sorted(series):
        samples = series[key]
        values = [sample["value"] for sample in samples]
        entry: typing.Dict[str, typing.Any] = {
            "cell": _cell_label(key),
            "scheduler": key[0],
            "workload": key[1],
            "rate_tps": key[2],
            "dd": key[3],
            "samples": len(values),
            "latest": round(values[-1], 2),
            "status": "insufficient",
        }
        baseline = _trailing_median(values, window)
        if len(values) >= MIN_SAMPLES and baseline:
            evaluated += 1
            ratio = values[-1] / baseline
            speed_ratios.append(ratio)
            entry["baseline"] = round(baseline, 2)
            entry["ratio"] = round(ratio, 4)
            if ratio < 1.0 - tolerance:
                entry["status"] = "regression"
                regressions += 1
            else:
                entry["status"] = "ok"
        rss = [
            float(sample["maxrss_kb"])
            for sample in samples
            if sample.get("maxrss_kb")
        ]
        if len(rss) >= MIN_SAMPLES:
            mem_baseline = _trailing_median(rss, window)
            if mem_baseline:
                mem_evaluated += 1
                mem_ratio = rss[-1] / mem_baseline
                mem_ratios.append(mem_ratio)
                entry["mem_ratio"] = round(mem_ratio, 4)
                if mem_ratio > 1.0 + mem_tolerance:
                    entry["mem_status"] = "growth"
                    mem_growth += 1
                else:
                    entry["mem_status"] = "ok"
        cells.append(entry)

    # same quorum rule as compare_bench: ceil(quorum_fraction * n), floor 1
    quorum = max(1, math.ceil(REGRESSION_QUORUM * evaluated)) if evaluated else 1
    mem_quorum = max(1, math.ceil(REGRESSION_QUORUM * mem_evaluated)) if mem_evaluated else 1
    aggregate = statistics.median(speed_ratios) if speed_ratios else None
    mem_aggregate = statistics.median(mem_ratios) if mem_ratios else None

    reasons = []
    if aggregate is not None and aggregate < 1.0 - tolerance:
        reasons.append(
            f"median speed ratio {aggregate:.3f} below {1.0 - tolerance:.2f}"
        )
    if evaluated and regressions >= quorum:
        reasons.append(
            f"{regressions} of {evaluated} evaluated cell(s) regressed "
            f"(quorum {quorum})"
        )
    if mem_aggregate is not None and mem_aggregate > 1.0 + mem_tolerance:
        reasons.append(
            f"median memory ratio {mem_aggregate:.3f} above "
            f"{1.0 + mem_tolerance:.2f}"
        )
    if mem_evaluated and mem_growth >= mem_quorum:
        reasons.append(
            f"{mem_growth} of {mem_evaluated} memory-tracked cell(s) grew "
            f"beyond the memory tolerance (quorum {mem_quorum})"
        )

    return {
        "tolerance": tolerance,
        "mem_tolerance": mem_tolerance,
        "window": window,
        "evaluated": evaluated,
        "regressions": regressions,
        "quorum": quorum,
        "mem_evaluated": mem_evaluated,
        "mem_growth": mem_growth,
        "mem_quorum": mem_quorum,
        "aggregate_ratio": round(aggregate, 4) if aggregate is not None else None,
        "mem_aggregate_ratio": (
            round(mem_aggregate, 4) if mem_aggregate is not None else None
        ),
        "cells": cells,
        "ok": not reasons,
        "reasons": reasons,
    }


# -- ranking drift ------------------------------------------------------------


def _ranking(
    latest: typing.Mapping[str, float],
) -> typing.List[str]:
    """Schedulers best-first; throughput desc, name asc for stability."""
    return [
        name
        for name, _ in sorted(
            latest.items(), key=lambda item: (-item[1], item[0])
        )
    ]


def detect_ranking_drift(
    series: typing.Mapping[CellKey, typing.Sequence[typing.Mapping[str, typing.Any]]],
    *,
    window: int = DEFAULT_WINDOW,
    metric: str = "throughput_tps",
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Flag (workload, rate, DD) groups whose scheduler ranking flipped
    between the trailing window and the latest snapshot.

    These are the regime-dependent crossovers the arena exists to
    surface; they are reported as *flags*, never as check failures.
    """
    groups: typing.Dict[
        typing.Tuple[str, float, int],
        typing.Dict[str, typing.Sequence[typing.Mapping[str, typing.Any]]],
    ] = {}
    for key, samples in series.items():
        scheduler, workload, rate, dd = key
        groups.setdefault((workload, rate, dd), {})[scheduler] = samples

    flags = []
    for group_key in sorted(groups):
        per_scheduler = groups[group_key]
        latest: typing.Dict[str, float] = {}
        trailing: typing.Dict[str, float] = {}
        for scheduler, samples in per_scheduler.items():
            values = [
                float(s[metric]) if s.get(metric) is not None else float(s["value"])
                for s in samples
            ]
            if len(values) < MIN_SAMPLES:
                continue
            baseline = _trailing_median(values, window)
            if baseline is None:
                continue
            latest[scheduler] = values[-1]
            trailing[scheduler] = baseline
        if len(latest) < 2:
            continue
        now = _ranking(latest)
        before = _ranking(trailing)
        if now != before:
            workload, rate, dd = group_key
            flags.append({
                "workload": workload,
                "rate_tps": rate,
                "dd": dd,
                "before": before,
                "after": now,
            })
    return flags


# -- memory trajectory --------------------------------------------------------


def memory_trajectory(
    snapshots: typing.Sequence[typing.Mapping[str, typing.Any]],
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Peak ``maxrss_kb`` per snapshot, across bench rows and telemetry
    peaks; snapshots with no memory data are omitted."""
    trajectory = []
    for snapshot in snapshots:
        peak: typing.Optional[float] = None
        for record in snapshot["records"]:
            rss = record["metrics"].get("maxrss_kb")
            if rss and (peak is None or float(rss) > peak):
                peak = float(rss)
        if peak is not None:
            trajectory.append({
                "snapshot": snapshot["snapshot"],
                "created": snapshot["created"],
                "family": snapshot["family"],
                "peak_kb": peak,
            })
    return trajectory


# -- the report ---------------------------------------------------------------


def history_report(
    store: HistoryStore,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    mem_tolerance: float = DEFAULT_MEM_TOLERANCE,
    window: int = DEFAULT_WINDOW,
) -> typing.Dict[str, typing.Any]:
    """The full deterministic trends payload over ``store``."""
    records = store.records()
    snapshots = order_snapshots(records)
    series = build_cell_series(snapshots)
    verdict = detect_regressions(
        series,
        tolerance=tolerance,
        mem_tolerance=mem_tolerance,
        window=window,
    )
    drift = detect_ranking_drift(series, window=window)
    memory = memory_trajectory(snapshots)

    aggregate_series = []
    for snapshot in snapshots:
        digest = snapshot["snapshot"]
        values = [
            sample["value"]
            for samples in series.values()
            for sample in samples
            if sample["snapshot"] == digest
        ]
        if values:
            aggregate_series.append({
                "snapshot": snapshot["snapshot"],
                "created": snapshot["created"],
                "git_sha": snapshot["git_sha"],
                "cells": len(values),
                "events_per_s_sum": round(sum(values), 2),
                "events_per_s_median": round(statistics.median(values), 2),
            })

    serialised_series = [
        {
            "cell": _cell_label(key),
            "scheduler": key[0],
            "workload": key[1],
            "rate_tps": key[2],
            "dd": key[3],
            "samples": [
                {
                    "snapshot": sample["snapshot"],
                    "created": sample["created"],
                    "git_sha": sample["git_sha"],
                    "events_per_s": round(sample["value"], 2),
                    "maxrss_kb": sample["maxrss_kb"],
                }
                for sample in series[key]
            ],
        }
        for key in sorted(series)
    ]

    return {
        "schema_version": TRENDS_SCHEMA_VERSION,
        "store": str(store.path),
        "parameters": {
            "tolerance": tolerance,
            "mem_tolerance": mem_tolerance,
            "window": window,
        },
        "snapshots": [
            {
                "snapshot": snapshot["snapshot"],
                "source": snapshot["source"],
                "family": snapshot["family"],
                "created": snapshot["created"],
                "git_sha": snapshot["git_sha"],
                "host": snapshot["host"],
                "records": len(snapshot["records"]),
            }
            for snapshot in snapshots
        ],
        "aggregate": aggregate_series,
        "series": serialised_series,
        "memory": memory,
        "ranking_drift": drift,
        "verdict": verdict,
    }


def validate_history_payload(
    payload: typing.Mapping[str, typing.Any],
) -> None:
    """Schema-check a HISTORY.json payload (e.g. before trusting one
    loaded from disk)."""
    if not isinstance(payload, dict):
        raise HistorySchemaError("HISTORY payload must be an object")
    version = payload.get("schema_version")
    if version != TRENDS_SCHEMA_VERSION:
        raise HistorySchemaError(
            f"unknown HISTORY schema_version {version!r}; this build "
            f"supports {TRENDS_SCHEMA_VERSION}"
        )
    for field in ("snapshots", "series", "verdict"):
        if field not in payload:
            raise HistorySchemaError(f"HISTORY payload missing {field!r}")
    verdict = payload["verdict"]
    if not isinstance(verdict, dict) or "ok" not in verdict:
        raise HistorySchemaError("HISTORY verdict must carry an 'ok' flag")


def render_history_markdown(
    payload: typing.Mapping[str, typing.Any],
    *,
    spark_width: int = 24,
) -> str:
    """The HISTORY.md dashboard: sparkline trends per cell, aggregate
    trajectory, memory trajectory, drift flags, and the verdict."""
    from repro.obs.timeseries import sparkline

    validate_history_payload(payload)
    verdict = payload["verdict"]
    lines = ["# Metrics history", ""]
    lines.append(
        f"Store: `{payload['store']}` — {len(payload['snapshots'])} "
        f"snapshot(s), window {verdict['window']}, tolerance "
        f"{verdict['tolerance'] * 100:.0f}% speed / "
        f"{verdict['mem_tolerance'] * 100:.0f}% memory."
    )
    lines.append("")

    lines.append("## Snapshots")
    lines.append("")
    lines.append("| snapshot | family | created | git | records |")
    lines.append("|---|---|---|---|---|")
    for snapshot in payload["snapshots"]:
        git_sha = (snapshot.get("git_sha") or "")[:9] or "—"
        lines.append(
            f"| `{snapshot['snapshot']}` | {snapshot['family']} "
            f"| {snapshot.get('created') or '—'} | {git_sha} "
            f"| {snapshot['records']} |"
        )
    lines.append("")

    if payload["aggregate"]:
        lines.append("## Aggregate events/s")
        lines.append("")
        sums = [entry["events_per_s_sum"] for entry in payload["aggregate"]]
        lines.append(f"`{sparkline(sums, width=spark_width)}`")
        lines.append("")
        lines.append("| snapshot | cells | sum events/s | median events/s |")
        lines.append("|---|---|---|---|")
        for entry in payload["aggregate"]:
            lines.append(
                f"| `{entry['snapshot']}` | {entry['cells']} "
                f"| {entry['events_per_s_sum']:.0f} "
                f"| {entry['events_per_s_median']:.0f} |"
            )
        lines.append("")

    if payload["series"]:
        lines.append("## Per-cell events/s trends")
        lines.append("")
        lines.append("| cell | n | trend | latest | baseline | ratio | status |")
        lines.append("|---|---|---|---|---|---|---|")
        verdict_by_cell = {
            entry["cell"]: entry for entry in verdict["cells"]
        }
        for entry in payload["series"]:
            values = [sample["events_per_s"] for sample in entry["samples"]]
            cell_verdict = verdict_by_cell.get(entry["cell"], {})
            status = cell_verdict.get("status", "insufficient")
            if cell_verdict.get("mem_status") == "growth":
                status += " +mem"
            ratio = cell_verdict.get("ratio")
            baseline = cell_verdict.get("baseline")
            lines.append(
                f"| {entry['cell']} | {len(values)} "
                f"| `{sparkline(values, width=spark_width)}` "
                f"| {values[-1]:.0f} "
                f"| {baseline if baseline is not None else '—'} "
                f"| {f'{ratio:.3f}' if ratio is not None else '—'} "
                f"| {status} |"
            )
        lines.append("")

    if payload["memory"]:
        lines.append("## Peak RSS trajectory")
        lines.append("")
        peaks = [entry["peak_kb"] for entry in payload["memory"]]
        lines.append(f"`{sparkline(peaks, width=spark_width)}`")
        lines.append("")
        lines.append("| snapshot | family | peak RSS |")
        lines.append("|---|---|---|")
        for entry in payload["memory"]:
            lines.append(
                f"| `{entry['snapshot']}` | {entry['family']} "
                f"| {entry['peak_kb'] / 1024:.1f} MiB |"
            )
        lines.append("")

    lines.append("## Scheduler-ranking drift")
    lines.append("")
    if payload["ranking_drift"]:
        for flag in payload["ranking_drift"]:
            lines.append(
                f"- {flag['workload']}@{flag['rate_tps']:g}tps "
                f"dd={flag['dd']}: {' > '.join(flag['before'])} → "
                f"{' > '.join(flag['after'])}"
            )
        lines.append("")
        lines.append(
            "_Drift is a finding, not a failure: regime-dependent "
            "crossovers are exactly what the arena tracks._"
        )
    else:
        lines.append("No ranking changes against the trailing window.")
    lines.append("")

    lines.append("## Verdict")
    lines.append("")
    if verdict["ok"]:
        detail = (
            f"{verdict['regressions']} of {verdict['evaluated']} cell(s) "
            f"below tolerance (quorum {verdict['quorum']}), "
            f"{verdict['mem_growth']} of {verdict['mem_evaluated']} "
            f"memory-tracked cell(s) grew (quorum {verdict['mem_quorum']})"
        )
        lines.append(f"**OK** — {detail}.")
    else:
        lines.append("**REGRESSION**")
        for reason in verdict["reasons"]:
            lines.append(f"- {reason}")
    if verdict["aggregate_ratio"] is not None:
        lines.append("")
        lines.append(
            f"Aggregate latest-vs-trailing-median speed ratio: "
            f"{verdict['aggregate_ratio']:.3f}."
        )
    lines.append("")
    return "\n".join(lines)


def write_history(
    payload: typing.Mapping[str, typing.Any],
    json_path: PathLike,
    md_path: typing.Optional[PathLike] = None,
) -> None:
    """Write the HISTORY.json / HISTORY.md artifact pair."""
    validate_history_payload(payload)
    json_path = pathlib.Path(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    if md_path is not None:
        md_path = pathlib.Path(md_path)
        md_path.parent.mkdir(parents=True, exist_ok=True)
        md_path.write_text(render_history_markdown(payload), encoding="utf-8")


def load_history(path: PathLike) -> typing.Dict[str, typing.Any]:
    """Load and validate a HISTORY.json payload."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    validate_history_payload(payload)
    return payload
