"""Paper-vs-measured agreement metrics.

The reproduction targets the paper's *shape*, not its absolute numbers.
These helpers quantify shape agreement:

- :func:`ordering_agreement` -- Kendall-style concordance of pairwise
  orderings between a measured and a reference ranking;
- :func:`ratio_spread` -- how far a uniform rescaling can bring the
  measured values onto the reference (geometric spread of the
  per-entry ratios).
"""

from __future__ import annotations

import itertools
import math
import typing

Mapping = typing.Mapping[str, float]


def ordering_agreement(measured: Mapping, reference: Mapping) -> float:
    """Fraction of concordant pairs between the two value maps (0..1).

    Compares every unordered key pair present in both maps; ties in
    either map count as half-concordant.  1.0 means the measured values
    rank the schedulers exactly as the paper does.
    """
    keys = sorted(set(measured) & set(reference))
    if len(keys) < 2:
        raise ValueError("need at least two common keys to compare")
    concordant = 0.0
    pairs = 0
    for a, b in itertools.combinations(keys, 2):
        pairs += 1
        measured_sign = _sign(measured[a] - measured[b])
        reference_sign = _sign(reference[a] - reference[b])
        if measured_sign == reference_sign:
            concordant += 1.0
        elif measured_sign == 0 or reference_sign == 0:
            concordant += 0.5
    return concordant / pairs


def _sign(value: float) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def ratio_spread(measured: Mapping, reference: Mapping) -> float:
    """Geometric spread of measured/reference ratios (>= 1.0).

    1.0 means a single scale factor maps the measured values exactly
    onto the reference; 2.0 means per-entry ratios span a factor of two
    around their geometric mean.  Entries with non-positive or NaN
    values are skipped.
    """
    ratios = []
    for key in set(measured) & set(reference):
        m, r = measured[key], reference[key]
        if m > 0 and r > 0 and not (math.isnan(m) or math.isnan(r)):
            ratios.append(m / r)
    if not ratios:
        raise ValueError("no comparable entries")
    logs = [math.log(r) for r in ratios]
    centre = sum(logs) / len(logs)
    worst = max(abs(value - centre) for value in logs)
    return math.exp(worst)
