"""Plain-text rendering of result tables (paper-style reporting)."""

from __future__ import annotations

import math
import typing

Row = typing.Sequence[object]


def format_cell(value: object, precision: int = 2) -> str:
    """Render numbers compactly; NaN as '-'."""
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "inf"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: typing.Sequence[str],
    rows: typing.Iterable[Row],
    title: str = "",
    precision: int = 2,
) -> str:
    """Aligned monospace table with a separator under the header."""
    rendered_rows = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: typing.Sequence[object],
    series: typing.Mapping[str, typing.Sequence[float]],
    title: str = "",
    precision: int = 2,
) -> str:
    """A figure as a table: one x column, one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: typing.List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=title, precision=precision)


def to_csv(
    headers: typing.Sequence[str], rows: typing.Iterable[Row]
) -> str:
    """Minimal CSV (no quoting needed for our numeric tables)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(format_cell(c, precision=6) for c in row))
    return "\n".join(lines) + "\n"
