"""The Weighted Transaction-Precedence Graph (WTPG) of Section 3.1.

Nodes are the active (declared, uncommitted) transactions plus the virtual
initial transaction T0 (and conceptually the final Tf, whose edges all
weigh 0 and are never materialised, as in the paper).

Edges between two general transactions Ti, Tj that declared conflicting
accesses start as an undirected *conflict edge* (Ti, Tj).  When the
serializable order between them becomes determined the conflict edge is
replaced by a directed *precedence edge* Ti -> Tj.

Weights (fixed at declaration time, per the paper):

- ``w(Ti -> Tj)``: the I/O Tj must still access from its first step that
  conflicts with Ti through its commitment -- the remaining work of Tj
  once Ti stops blocking it.
- ``w(T0 -> Ti)``: Ti's remaining declared I/O *now*; this is the only
  weight that is adjusted as the schedule proceeds, so it is computed on
  demand from the transaction's live progress.

The critical path is the longest T0-to-Tf path over precedence edges.

Scale notes.  Under overload an MPL-unlimited scheduler (plain C2PL in
Fig. 8's unstable region) accumulates thousands of active transactions,
so this structure maintains everything incrementally:

- per-file reader/writer indexes make conflict discovery at declaration
  O(conflicting pairs) instead of O(all pairs);
- successor/predecessor adjacency is maintained, never rebuilt;
- every node carries a *topological level* with the invariant
  ``level(u) < level(v)`` for each precedence edge u -> v, so cycle and
  path queries prune to the (usually tiny) level window between the two
  endpoints -- the classic incremental-cycle-detection bound.
"""

from __future__ import annotations

import math
import typing

from repro.txn.transaction import BatchTransaction


class ConflictEdge(typing.NamedTuple):
    """Undetermined serialization order between two transactions.

    ``weight_ab`` is the weight the edge would carry if oriented a -> b
    (and symmetrically for ``weight_ba``); both are fixed when the later
    transaction declares itself.
    """

    a: int
    b: int
    weight_ab: float
    weight_ba: float

    def weight(self, src: int, dst: int) -> float:
        if (src, dst) == (self.a, self.b):
            return self.weight_ab
        if (src, dst) == (self.b, self.a):
            return self.weight_ba
        raise KeyError(f"edge ({self.a},{self.b}) asked for ({src},{dst})")


class WTPG:
    """Weighted transaction-precedence graph over active transactions."""

    def __init__(self) -> None:
        self._txns: typing.Dict[int, BatchTransaction] = {}
        #: undetermined edges keyed by frozenset({i, j}); weights are
        #: computed lazily (None until first read) -- C2PL never reads
        #: them, and eager computation is O(pairs) per declaration
        self._conflicts: typing.Dict[
            typing.FrozenSet[int], typing.Optional[ConflictEdge]
        ] = {}
        #: determined edges (i, j) -> weight of i -> j
        self._precedence: typing.Dict[typing.Tuple[int, int], float] = {}
        #: maintained adjacency over precedence edges
        self._succ: typing.Dict[int, typing.Set[int]] = {}
        self._pred: typing.Dict[int, typing.Set[int]] = {}
        #: maintained adjacency over conflict edges
        self._conflict_adj: typing.Dict[int, typing.Set[int]] = {}
        #: per-file declared readers/writers (conflict discovery index)
        self._readers: typing.Dict[int, typing.Set[int]] = {}
        self._writers: typing.Dict[int, typing.Set[int]] = {}
        #: topological level: level(u) < level(v) for every edge u -> v
        self._level: typing.Dict[int, int] = {}

    # -- membership ------------------------------------------------------------

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._txns

    def __len__(self) -> int:
        return len(self._txns)

    @property
    def txn_ids(self) -> typing.List[int]:
        return sorted(self._txns)

    def transaction(self, txn_id: int) -> BatchTransaction:
        return self._txns[txn_id]

    def add_transaction(self, txn: BatchTransaction) -> None:
        """Declare ``txn``: add its node and conflict edges vs all actives."""
        if txn.txn_id in self._txns:
            raise ValueError(f"T{txn.txn_id} already in WTPG")
        opponents: typing.Set[int] = set()
        for file_id in txn.files:
            opponents |= self._writers.get(file_id, set())
            if txn.writes(file_id):
                opponents |= self._readers.get(file_id, set())
        opponents.discard(txn.txn_id)
        for other_id in opponents:
            self._conflicts[frozenset((other_id, txn.txn_id))] = None
            self._conflict_adj.setdefault(other_id, set()).add(txn.txn_id)
            self._conflict_adj.setdefault(txn.txn_id, set()).add(other_id)
        self._txns[txn.txn_id] = txn
        self._succ.setdefault(txn.txn_id, set())
        self._pred.setdefault(txn.txn_id, set())
        self._conflict_adj.setdefault(txn.txn_id, set())
        self._level.setdefault(txn.txn_id, 0)
        for file_id in txn.files:
            index = self._writers if txn.writes(file_id) else self._readers
            index.setdefault(file_id, set()).add(txn.txn_id)

    def remove_transaction(self, txn_id: int) -> None:
        """Drop a committed/aborted transaction and its incident edges.

        Other nodes' levels stay valid: removing edges only relaxes the
        level invariant.
        """
        txn = self._txns.pop(txn_id, None)
        if txn is None:
            raise KeyError(f"T{txn_id} not in WTPG")
        for other_id in self._conflict_adj.pop(txn_id, set()):
            self._conflicts.pop(frozenset((txn_id, other_id)), None)
            self._conflict_adj[other_id].discard(txn_id)
        for succ in self._succ.pop(txn_id, set()):
            self._pred[succ].discard(txn_id)
            del self._precedence[(txn_id, succ)]
        for pred in self._pred.pop(txn_id, set()):
            self._succ[pred].discard(txn_id)
            del self._precedence[(pred, txn_id)]
        for file_id in txn.files:
            index = self._writers if txn.writes(file_id) else self._readers
            holders = index.get(file_id)
            if holders is not None:
                holders.discard(txn_id)
                if not holders:
                    del index[file_id]
        self._level.pop(txn_id, None)

    @staticmethod
    def _blocked_weight(
        blocker: BatchTransaction, blocked: BatchTransaction
    ) -> float:
        """w(blocker -> blocked): blocked's I/O from its blocked step on."""
        step = blocked.blocked_step_against(blocker)
        return blocked.declared_cost_from_step(step)

    # -- edge queries --------------------------------------------------------

    def conflict_edges(self) -> typing.List[ConflictEdge]:
        return [self._materialise(key) for key in list(self._conflicts)]

    def has_conflict_edge(self, i: int, j: int) -> bool:
        return frozenset((i, j)) in self._conflicts

    def conflict_edge(self, i: int, j: int) -> ConflictEdge:
        key = frozenset((i, j))
        if key not in self._conflicts:
            raise KeyError(f"no conflict edge between T{i} and T{j}")
        return self._materialise(key)

    def _materialise(self, key: typing.FrozenSet[int]) -> ConflictEdge:
        """Compute (once) the weights of a lazily-created conflict edge."""
        edge = self._conflicts[key]
        if edge is None:
            a, b = sorted(key)
            ta, tb = self._txns[a], self._txns[b]
            edge = ConflictEdge(
                a=a,
                b=b,
                weight_ab=self._blocked_weight(blocker=ta, blocked=tb),
                weight_ba=self._blocked_weight(blocker=tb, blocked=ta),
            )
            self._conflicts[key] = edge
        return edge

    def precedence_edges(self) -> typing.Dict[typing.Tuple[int, int], float]:
        return dict(self._precedence)

    def has_precedence(self, i: int, j: int) -> bool:
        return (i, j) in self._precedence

    def neighbors(self, txn_id: int) -> typing.Set[int]:
        """Transactions joined to ``txn_id`` by any (conflict or
        precedence) edge -- the adjacency the chain-form test inspects."""
        return (
            self._conflict_adj.get(txn_id, set())
            | self._succ.get(txn_id, set())
            | self._pred.get(txn_id, set())
        )

    def t0_weight(self, txn_id: int) -> float:
        """w(T0 -> Ti): remaining declared I/O of the transaction now."""
        return self._txns[txn_id].remaining_declared_cost()

    def level_of(self, txn_id: int) -> int:
        """The node's maintained topological level (for tests/metrics)."""
        return self._level[txn_id]

    # -- grant-driven precedence fixing ----------------------------------------

    def conflicting_declarers(
        self, txn_id: int, file_id: int
    ) -> typing.List[int]:
        """Active transactions whose declared access to the file
        conflicts with ``txn_id``'s declared access to it."""
        txn = self._txns[txn_id]
        opponents = set(self._writers.get(file_id, ()))
        if txn.writes(file_id):
            opponents |= self._readers.get(file_id, set())
        opponents.discard(txn_id)
        return sorted(opponents)

    def fixes_for_grant(
        self, txn_id: int, file_id: int
    ) -> typing.List[typing.Tuple[int, int]]:
        """Precedence determinations implied by granting ``file_id`` to T.

        Granting puts T's access to the file before every other declared
        conflicting access, so the serialization order T -> other becomes
        determined for every active transaction with a conflicting
        declaration on the file.  Pairs already determined in the *other*
        direction are included too: for them the returned "fix" is a
        contradiction that :meth:`creates_cycle` reports as a deadlock.
        """
        return [
            (txn_id, other_id)
            for other_id in self.conflicting_declarers(txn_id, file_id)
            if (txn_id, other_id) not in self._precedence
        ]

    def creates_cycle(
        self, fixes: typing.Iterable[typing.Tuple[int, int]]
    ) -> bool:
        """Would adding these precedence edges create a cycle (deadlock)?

        Grant-driven fixes all share one source T: the (acyclic) graph
        gains a cycle iff some fix target already reaches T.  The level
        invariant prunes the search: a path j ~> T needs
        ``level(j) < level(T)`` and only passes through levels below
        T's.  Mixed-source fix sets fall back to a full cycle test.
        """
        extra = list(fixes)
        if not extra:
            return False
        sources = {i for i, _ in extra}
        if len(sources) == 1:
            (source,) = sources
            targets = {j for _, j in extra}
            if source in targets:
                return True
            return self._any_reaches(targets, source)
        adjacency = {node: set(succ) for node, succ in self._succ.items()}
        for i, j in extra:
            adjacency.setdefault(i, set()).add(j)
        return self._has_cycle(adjacency)

    def _any_reaches(self, starts: typing.Set[int], goal: int) -> bool:
        """Is there a precedence path from any of ``starts`` to ``goal``?"""
        goal_level = self._level[goal]
        stack = [s for s in starts if self._level.get(s, 0) < goal_level]
        seen = set(stack)
        while stack:
            node = stack.pop()
            for nxt in self._succ.get(node, ()):
                if nxt == goal:
                    return True
                if nxt not in seen and self._level[nxt] < goal_level:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def apply_fix(self, i: int, j: int) -> None:
        """Replace conflict edge (i, j) by precedence edge i -> j."""
        key = frozenset((i, j))
        if key not in self._conflicts:
            if (i, j) in self._precedence:
                return  # already determined in this direction
            raise KeyError(f"no conflict edge between T{i} and T{j}")
        edge = self._materialise(key)
        del self._conflicts[key]
        self._conflict_adj[i].discard(j)
        self._conflict_adj[j].discard(i)
        self._precedence[(i, j)] = edge.weight(i, j)
        self._succ.setdefault(i, set()).add(j)
        self._pred.setdefault(j, set()).add(i)
        self._raise_level(i, j)

    def _raise_level(self, source: int, target: int) -> None:
        """Restore ``level(u) < level(v)`` after adding source -> target.

        Standard forward relabelling; callers must have excluded cycles
        (a cycle would send the walk back into ``source``, which raises).
        """
        if self._level[target] > self._level[source]:
            return
        self._level[target] = self._level[source] + 1
        stack = [target]
        while stack:
            node = stack.pop()
            node_level = self._level[node]
            for nxt in self._succ.get(node, ()):
                if self._level[nxt] <= node_level:
                    if nxt == source:
                        raise ValueError(
                            f"precedence cycle through T{source} -> T{target}"
                        )
                    self._level[nxt] = node_level + 1
                    stack.append(nxt)

    def propagate_transitive_fixes(self) -> typing.List[typing.Tuple[int, int]]:
        """Resolve conflict edges forced by existing precedence paths.

        When a precedence path Ti ~> Tj exists, the conflict edge (Ti, Tj)
        can only legally be oriented Ti -> Tj (Fig. 6's T4 -> T7 example);
        fix all such edges until none remain.  Returns the fixes applied.
        """
        applied = []
        changed = True
        while changed:
            changed = False
            for key in list(self._conflicts):
                if key not in self._conflicts:
                    continue  # resolved by an earlier fix this sweep
                i, j = tuple(key)
                if self.has_path(i, j):
                    self.apply_fix(i, j)
                    applied.append((i, j))
                    changed = True
                elif self.has_path(j, i):
                    self.apply_fix(j, i)
                    applied.append((j, i))
                    changed = True
        return applied

    def grant(
        self, txn_id: int, file_id: int, propagate: bool = True
    ) -> typing.List[typing.Tuple[int, int]]:
        """Apply all precedence consequences of a lock grant.

        Returns the fixes applied (direct + transitive).  Raises if the
        grant would create a cycle -- schedulers must test first.

        ``propagate=False`` skips the transitive conflict-edge resolution:
        schedulers that never read edge weights (C2PL) can resolve those
        edges lazily -- a later grant against a forced order still fails
        the cycle test -- and skipping keeps large graphs affordable.
        """
        fixes = self.fixes_for_grant(txn_id, file_id)
        if self.creates_cycle(fixes):
            raise ValueError(
                f"granting F{file_id} to T{txn_id} creates a precedence cycle"
            )
        for i, j in fixes:
            self.apply_fix(i, j)
        if not propagate:
            return fixes
        return fixes + self.propagate_transitive_fixes()

    # -- path / cycle machinery ---------------------------------------------

    def has_path(self, src: int, dst: int) -> bool:
        """Is there a directed precedence path src ~> dst?"""
        if src == dst:
            return True
        if self._level.get(src, 0) >= self._level.get(dst, 0):
            return False
        return self._any_reaches({src}, dst)

    @staticmethod
    def _has_cycle(adjacency: typing.Dict[int, typing.Set[int]]) -> bool:
        WHITE, GREY, BLACK = 0, 1, 2
        colour: typing.Dict[int, int] = {}
        nodes = set(adjacency)
        for targets in adjacency.values():
            nodes |= targets

        # iterative DFS (overloaded graphs are deeper than the C stack)
        def visit(root: int) -> bool:
            stack: typing.List[typing.Tuple[int, typing.Iterator[int]]] = [
                (root, iter(adjacency.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for nxt in children:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        return True
                    if state == WHITE:
                        colour[nxt] = GREY
                        stack.append((nxt, iter(adjacency.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
            return False

        return any(
            colour.get(node, WHITE) == WHITE and visit(node) for node in nodes
        )

    def critical_path_length(self) -> float:
        """Longest T0-to-Tf path over precedence edges (conflicts ignored).

        Returns ``inf`` when the precedence edges contain a cycle (a state
        the schedulers treat as deadlock).
        """
        indegree = {t: len(self._pred.get(t, ())) for t in self._txns}
        order: typing.List[int] = [t for t, d in indegree.items() if d == 0]
        queue = list(order)
        while queue:
            node = queue.pop()
            for nxt in self._succ.get(node, ()):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    order.append(nxt)
                    queue.append(nxt)
        if len(order) < len(self._txns):
            return math.inf  # a cycle kept some node's indegree positive
        dist = {t: self.t0_weight(t) for t in self._txns}
        for node in order:
            for nxt in self._succ.get(node, ()):
                candidate = dist[node] + self._precedence[(node, nxt)]
                if candidate > dist[nxt]:
                    dist[nxt] = candidate
        return max(dist.values(), default=0.0)

    # -- hypothetical evaluation (LOW's E function) -----------------------------

    def hypothetical_grant_critical_path(
        self, txn_id: int, file_id: int
    ) -> float:
        """E(q) of Fig. 5: critical path after granting q, or inf on deadlock.

        The evaluation works on a scratch copy; the real graph is
        untouched.
        """
        scratch = self._scratch_copy()
        fixes = scratch.fixes_for_grant(txn_id, file_id)
        if scratch.creates_cycle(fixes):
            return math.inf
        for i, j in fixes:
            scratch.apply_fix(i, j)
        scratch.propagate_transitive_fixes()
        return scratch.critical_path_length()

    def _scratch_copy(self) -> "WTPG":
        """Copy sharing transactions but with private edge/level state.

        Subclass-aware: extension WTPGs (e.g. the resource-aware variant)
        keep their extra weighting state in hypothetical evaluations.
        """
        copy = type(self).__new__(type(self))
        copy.__dict__.update(self.__dict__)
        copy._txns = dict(self._txns)
        copy._conflicts = dict(self._conflicts)
        copy._precedence = dict(self._precedence)
        copy._succ = {k: set(v) for k, v in self._succ.items()}
        copy._pred = {k: set(v) for k, v in self._pred.items()}
        copy._conflict_adj = {
            k: set(v) for k, v in self._conflict_adj.items()
        }
        copy._readers = {k: set(v) for k, v in self._readers.items()}
        copy._writers = {k: set(v) for k, v in self._writers.items()}
        copy._level = dict(self._level)
        return copy

    def check_invariants(self) -> None:
        """Assert internal consistency (test hook).

        Verifies adjacency mirrors the edge dicts and that every
        precedence edge satisfies the level invariant.
        """
        for (i, j) in self._precedence:
            assert j in self._succ.get(i, set()), (i, j)
            assert i in self._pred.get(j, set()), (i, j)
            assert self._level[i] < self._level[j], (
                i,
                j,
                self._level[i],
                self._level[j],
            )
        for key in self._conflicts:
            i, j = tuple(key)
            assert j in self._conflict_adj.get(i, set())
            assert i in self._conflict_adj.get(j, set())
        for node, succ in self._succ.items():
            for s in succ:
                assert (node, s) in self._precedence

    def __repr__(self) -> str:
        return (
            f"<WTPG txns={len(self._txns)} conflicts={len(self._conflicts)} "
            f"precedence={len(self._precedence)}>"
        )
