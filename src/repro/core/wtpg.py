"""The Weighted Transaction-Precedence Graph (WTPG) of Section 3.1.

Nodes are the active (declared, uncommitted) transactions plus the virtual
initial transaction T0 (and conceptually the final Tf, whose edges all
weigh 0 and are never materialised, as in the paper).

Edges between two general transactions Ti, Tj that declared conflicting
accesses start as an undirected *conflict edge* (Ti, Tj).  When the
serializable order between them becomes determined the conflict edge is
replaced by a directed *precedence edge* Ti -> Tj.

Weights (fixed at declaration time, per the paper):

- ``w(Ti -> Tj)``: the I/O Tj must still access from its first step that
  conflicts with Ti through its commitment -- the remaining work of Tj
  once Ti stops blocking it.
- ``w(T0 -> Ti)``: Ti's remaining declared I/O *now*; this is the only
  weight that is adjusted as the schedule proceeds, so it is computed on
  demand from the transaction's live progress.

The critical path is the longest T0-to-Tf path over precedence edges.

Scale notes.  Under overload an MPL-unlimited scheduler (plain C2PL in
Fig. 8's unstable region) accumulates thousands of active transactions,
so this structure maintains everything incrementally:

- per-file reader/writer indexes make conflict discovery at declaration
  O(conflicting pairs) instead of O(all pairs);
- successor/predecessor adjacency is maintained, never rebuilt;
- every node carries a *topological level* with the invariant
  ``level(u) < level(v)`` for each precedence edge u -> v, so cycle and
  path queries prune to the (usually tiny) level window between the two
  endpoints -- the classic incremental-cycle-detection bound.

Incremental maintenance invariants (the kernel-speed campaign):

- ``_longest[t]`` is the *suffix distance* L(t): the largest sum of
  precedence-edge weights along any directed path starting at t, i.e.
  ``L(t) = max(0, max over successors s of w(t -> s) + L(s))``.  Because
  precedence-edge weights are fixed at declaration time, L only changes
  when an edge is inserted (:meth:`apply_fix` raises ancestors along
  ``w + L(target)``) or a node is removed (:meth:`remove_transaction`
  recomputes affected ancestors deepest-level-first).  The critical path
  is then ``max over t of t0_weight(t) + L(t)`` with no per-call graph
  traversal; only the drifting T0 weights are read fresh.  The maintained
  values are bit-exact against a backward recompute because every stored
  L is literally ``w + L(succ)`` for some successor whose own L satisfies
  the same property (``check_invariants`` asserts this).
- Acyclicity is certified by the maintained levels: if
  ``level(i) < level(j)`` holds for every precedence edge, the graph is
  provably acyclic, so :meth:`critical_path_length` replaces its old
  Kahn toposort with a single O(E) certificate scan (returning ``inf``
  when the certificate fails, preserving the deadlock contract).
- Hypothetical evaluation (LOW's E function) no longer copies the graph:
  mutations made while ``_journal`` is active append undo records
  (conflict-edge deletion, precedence insertion, level raise, L raise)
  that :meth:`_rollback` replays in reverse, restoring the structure --
  including the structure version, so topology caches stay valid.
- Transitive propagation is restricted to candidates that a *new* edge
  could force: any new path i ~> j passes through a just-inserted edge
  (s, t) with i an ancestor of s and j a descendant of t, so
  ``propagate_transitive_fixes(touched=...)`` scans only conflict edges
  whose endpoints fall in those ancestor/descendant closures.  This is
  complete in one sweep because propagation's own fixes parallel
  existing paths and never change reachability.
"""

from __future__ import annotations

import heapq
import math
import typing

from repro.txn.transaction import BatchTransaction


class ConflictEdge(typing.NamedTuple):
    """Undetermined serialization order between two transactions.

    ``weight_ab`` is the weight the edge would carry if oriented a -> b
    (and symmetrically for ``weight_ba``); both are fixed when the later
    transaction declares itself.
    """

    a: int
    b: int
    weight_ab: float
    weight_ba: float

    def weight(self, src: int, dst: int) -> float:
        if (src, dst) == (self.a, self.b):
            return self.weight_ab
        if (src, dst) == (self.b, self.a):
            return self.weight_ba
        raise KeyError(f"edge ({self.a},{self.b}) asked for ({src},{dst})")


class WTPG:
    """Weighted transaction-precedence graph over active transactions."""

    def __init__(self) -> None:
        self._txns: typing.Dict[int, BatchTransaction] = {}
        #: undetermined edges keyed by frozenset({i, j}); weights are
        #: computed lazily (None until first read) -- C2PL never reads
        #: them, and eager computation is O(pairs) per declaration
        self._conflicts: typing.Dict[
            typing.FrozenSet[int], typing.Optional[ConflictEdge]
        ] = {}
        #: determined edges (i, j) -> weight of i -> j
        self._precedence: typing.Dict[typing.Tuple[int, int], float] = {}
        #: maintained adjacency over precedence edges
        self._succ: typing.Dict[int, typing.Set[int]] = {}
        self._pred: typing.Dict[int, typing.Set[int]] = {}
        #: maintained adjacency over conflict edges
        self._conflict_adj: typing.Dict[int, typing.Set[int]] = {}
        #: per-file declared readers/writers (conflict discovery index)
        self._readers: typing.Dict[int, typing.Set[int]] = {}
        self._writers: typing.Dict[int, typing.Set[int]] = {}
        #: topological level: level(u) < level(v) for every edge u -> v
        self._level: typing.Dict[int, int] = {}
        #: maintained suffix distance L(t) over precedence edges
        self._longest: typing.Dict[int, float] = {}
        #: undo log; non-None only inside hypothetical evaluation
        self._journal: typing.Optional[typing.List[typing.Tuple]] = None
        #: bumped on every structural mutation (nodes/edges), restored on
        #: hypothetical rollback; topology caches key off this
        self.structure_version = 0
        #: chain-component cache slot owned by repro.core.chain
        self._chain_cache: typing.Optional[
            typing.Tuple[int, typing.List[typing.List[int]]]
        ] = None

    # -- membership ------------------------------------------------------------

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._txns

    def __len__(self) -> int:
        return len(self._txns)

    @property
    def txn_ids(self) -> typing.List[int]:
        return sorted(self._txns)

    def transaction(self, txn_id: int) -> BatchTransaction:
        return self._txns[txn_id]

    def conflict_opponents(self, txn: BatchTransaction) -> typing.Set[int]:
        """Active transactions whose declarations conflict with ``txn``'s.

        ``txn`` need not be in the graph (declaration-time discovery and
        GOW's admission test share this index lookup).
        """
        opponents: typing.Set[int] = set()
        writers = self._writers
        readers = self._readers
        write_set = txn.write_set
        for file_id in txn.files:
            held = writers.get(file_id)
            if held:
                opponents |= held
            if file_id in write_set:
                held = readers.get(file_id)
                if held:
                    opponents |= held
        opponents.discard(txn.txn_id)
        return opponents

    def add_transaction(self, txn: BatchTransaction) -> None:
        """Declare ``txn``: add its node and conflict edges vs all actives."""
        if txn.txn_id in self._txns:
            raise ValueError(f"T{txn.txn_id} already in WTPG")
        for other_id in self.conflict_opponents(txn):
            self._conflicts[frozenset((other_id, txn.txn_id))] = None
            self._conflict_adj.setdefault(other_id, set()).add(txn.txn_id)
            self._conflict_adj.setdefault(txn.txn_id, set()).add(other_id)
        self._txns[txn.txn_id] = txn
        self._succ.setdefault(txn.txn_id, set())
        self._pred.setdefault(txn.txn_id, set())
        self._conflict_adj.setdefault(txn.txn_id, set())
        self._level.setdefault(txn.txn_id, 0)
        self._longest.setdefault(txn.txn_id, 0.0)
        for file_id in txn.files:
            index = self._writers if txn.writes(file_id) else self._readers
            index.setdefault(file_id, set()).add(txn.txn_id)
        self.structure_version += 1

    def remove_transaction(self, txn_id: int) -> None:
        """Drop a committed/aborted transaction and its incident edges.

        Other nodes' levels stay valid: removing edges only relaxes the
        level invariant.  Suffix distances of the (former) predecessors
        can only shrink and are recomputed deepest-level-first.
        """
        txn = self._txns.pop(txn_id, None)
        if txn is None:
            raise KeyError(f"T{txn_id} not in WTPG")
        for other_id in self._conflict_adj.pop(txn_id, set()):
            self._conflicts.pop(frozenset((txn_id, other_id)), None)
            self._conflict_adj[other_id].discard(txn_id)
        for succ in self._succ.pop(txn_id, set()):
            self._pred[succ].discard(txn_id)
            del self._precedence[(txn_id, succ)]
        preds = self._pred.pop(txn_id, set())
        for pred in preds:
            self._succ[pred].discard(txn_id)
            del self._precedence[(pred, txn_id)]
        for file_id in txn.files:
            index = self._writers if txn.writes(file_id) else self._readers
            holders = index.get(file_id)
            if holders is not None:
                holders.discard(txn_id)
                if not holders:
                    del index[file_id]
        self._level.pop(txn_id, None)
        self._longest.pop(txn_id, None)
        if preds:
            self._lower_longest(preds)
        self.structure_version += 1

    @staticmethod
    def _blocked_weight(
        blocker: BatchTransaction, blocked: BatchTransaction
    ) -> float:
        """w(blocker -> blocked): blocked's I/O from its blocked step on."""
        step = blocked.blocked_step_against(blocker)
        return blocked.declared_cost_from_step(step)

    # -- edge queries --------------------------------------------------------

    def conflict_edges(self) -> typing.List[ConflictEdge]:
        return [self._materialise(key) for key in list(self._conflicts)]

    def conflict_pairs(self) -> typing.List[typing.Tuple[int, int]]:
        """Endpoint pairs of all conflict edges, *without* materialising
        the lazy weights -- the accessor for topology-only callers."""
        return [tuple(sorted(key)) for key in self._conflicts]

    def has_conflict_edge(self, i: int, j: int) -> bool:
        return frozenset((i, j)) in self._conflicts

    def conflict_edge(self, i: int, j: int) -> ConflictEdge:
        key = frozenset((i, j))
        if key not in self._conflicts:
            raise KeyError(f"no conflict edge between T{i} and T{j}")
        return self._materialise(key)

    def _materialise(self, key: typing.FrozenSet[int]) -> ConflictEdge:
        """Compute (once) the weights of a lazily-created conflict edge."""
        edge = self._conflicts[key]
        if edge is None:
            a, b = sorted(key)
            ta, tb = self._txns[a], self._txns[b]
            edge = ConflictEdge(
                a=a,
                b=b,
                weight_ab=self._blocked_weight(blocker=ta, blocked=tb),
                weight_ba=self._blocked_weight(blocker=tb, blocked=ta),
            )
            self._conflicts[key] = edge
        return edge

    def precedence_edges(self) -> typing.Dict[typing.Tuple[int, int], float]:
        return dict(self._precedence)

    def has_precedence(self, i: int, j: int) -> bool:
        return (i, j) in self._precedence

    def precedence_weight(self, i: int, j: int) -> float:
        """Weight of the determined edge i -> j (KeyError when absent)."""
        return self._precedence[(i, j)]

    def neighbors(self, txn_id: int) -> typing.Set[int]:
        """Transactions joined to ``txn_id`` by any (conflict or
        precedence) edge -- the adjacency the chain-form test inspects."""
        return (
            self._conflict_adj.get(txn_id, set())
            | self._succ.get(txn_id, set())
            | self._pred.get(txn_id, set())
        )

    def degree(self, txn_id: int) -> int:
        """Undirected degree over conflict + precedence edges (O(1);
        the three incident sets are disjoint in an acyclic graph)."""
        return (
            len(self._conflict_adj.get(txn_id, ()))
            + len(self._succ.get(txn_id, ()))
            + len(self._pred.get(txn_id, ()))
        )

    def t0_weight(self, txn_id: int) -> float:
        """w(T0 -> Ti): remaining declared I/O of the transaction now."""
        return self._txns[txn_id].remaining_declared_cost()

    def level_of(self, txn_id: int) -> int:
        """The node's maintained topological level (for tests/metrics)."""
        return self._level[txn_id]

    # -- grant-driven precedence fixing ----------------------------------------

    def conflicting_declarers(
        self, txn_id: int, file_id: int
    ) -> typing.List[int]:
        """Active transactions whose declared access to the file
        conflicts with ``txn_id``'s declared access to it."""
        txn = self._txns[txn_id]
        return sorted(
            self.declared_conflicters(
                file_id, txn.mode_for(file_id), exclude=txn_id
            )
        )

    def declared_conflicters(
        self,
        file_id: int,
        mode: "typing.Any",
        exclude: typing.Optional[int] = None,
    ) -> typing.Set[int]:
        """Ids of active transactions whose declared access to ``file_id``
        conflicts with an access in ``mode`` (index lookup: declared
        writers always conflict; declared readers only against a write)."""
        opponents = set(self._writers.get(file_id, ()))
        if mode.is_write:
            readers = self._readers.get(file_id)
            if readers:
                opponents |= readers
        if exclude is not None:
            opponents.discard(exclude)
        return opponents

    def declared_conflict_count(self, txn_id: int, file_id: int) -> int:
        """|C(p)| for the declared access of active ``txn_id`` on the file.

        Size of :meth:`declared_conflicters` for that access without
        building the set: the per-file writer and reader indexes are
        disjoint, so the union size is plain arithmetic.  A declared
        writer conflicts with every other declarer; a declared reader
        only with the writers.
        """
        writers = self._writers.get(file_id)
        nwriters = len(writers) if writers else 0
        if writers and txn_id in writers:
            readers = self._readers.get(file_id)
            return nwriters - 1 + (len(readers) if readers else 0)
        return nwriters

    def fixes_for_grant(
        self, txn_id: int, file_id: int
    ) -> typing.List[typing.Tuple[int, int]]:
        """Precedence determinations implied by granting ``file_id`` to T.

        Granting puts T's access to the file before every other declared
        conflicting access, so the serialization order T -> other becomes
        determined for every active transaction with a conflicting
        declaration on the file.  Pairs already determined in the *other*
        direction are included too: for them the returned "fix" is a
        contradiction that :meth:`creates_cycle` reports as a deadlock.
        """
        return [
            (txn_id, other_id)
            for other_id in self.conflicting_declarers(txn_id, file_id)
            if (txn_id, other_id) not in self._precedence
        ]

    def creates_cycle(
        self, fixes: typing.Iterable[typing.Tuple[int, int]]
    ) -> bool:
        """Would adding these precedence edges create a cycle (deadlock)?

        Grant-driven fixes all share one source T: the (acyclic) graph
        gains a cycle iff some fix target already reaches T.  The level
        invariant prunes the search: a path j ~> T needs
        ``level(j) < level(T)`` and only passes through levels below
        T's.  Mixed-source fix sets fall back to a full cycle test.
        """
        extra = list(fixes)
        if not extra:
            return False
        sources = {i for i, _ in extra}
        if len(sources) == 1:
            (source,) = sources
            targets = {j for _, j in extra}
            if source in targets:
                return True
            return self._any_reaches(targets, source)
        adjacency = {node: set(succ) for node, succ in self._succ.items()}
        for i, j in extra:
            adjacency.setdefault(i, set()).add(j)
        return self._has_cycle(adjacency)

    def _any_reaches(self, starts: typing.Set[int], goal: int) -> bool:
        """Is there a precedence path from any of ``starts`` to ``goal``?"""
        goal_level = self._level[goal]
        stack = [s for s in starts if self._level.get(s, 0) < goal_level]
        seen = set(stack)
        while stack:
            node = stack.pop()
            for nxt in self._succ.get(node, ()):
                if nxt == goal:
                    return True
                if nxt not in seen and self._level[nxt] < goal_level:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def apply_fix(self, i: int, j: int) -> None:
        """Replace conflict edge (i, j) by precedence edge i -> j."""
        key = frozenset((i, j))
        if key not in self._conflicts:
            if (i, j) in self._precedence:
                return  # already determined in this direction
            raise KeyError(f"no conflict edge between T{i} and T{j}")
        edge = self._materialise(key)
        journal = self._journal
        if journal is not None:
            journal.append(("conflict", key, edge))
        del self._conflicts[key]
        self._conflict_adj[i].discard(j)
        self._conflict_adj[j].discard(i)
        weight = edge.weight(i, j)
        self._precedence[(i, j)] = weight
        self._succ.setdefault(i, set()).add(j)
        self._pred.setdefault(j, set()).add(i)
        if journal is not None:
            journal.append(("edge", i, j))
        self._raise_level(i, j)
        self._raise_longest(i, weight + self._longest[j])
        self.structure_version += 1

    def _raise_level(self, source: int, target: int) -> None:
        """Restore ``level(u) < level(v)`` after adding source -> target.

        Standard forward relabelling; callers must have excluded cycles
        (a cycle would send the walk back into ``source``, which raises).
        """
        if self._level[target] > self._level[source]:
            return
        journal = self._journal
        if journal is not None:
            journal.append(("level", target, self._level[target]))
        self._level[target] = self._level[source] + 1
        stack = [target]
        while stack:
            node = stack.pop()
            node_level = self._level[node]
            for nxt in self._succ.get(node, ()):
                if self._level[nxt] <= node_level:
                    if nxt == source:
                        raise ValueError(
                            f"precedence cycle through T{source} -> T{target}"
                        )
                    if journal is not None:
                        journal.append(("level", nxt, self._level[nxt]))
                    self._level[nxt] = node_level + 1
                    stack.append(nxt)

    def _raise_longest(self, node: int, candidate: float) -> None:
        """Propagate a new suffix-distance candidate up the ancestors."""
        longest = self._longest
        journal = self._journal
        precedence = self._precedence
        stack = [(node, candidate)]
        while stack:
            n, cand = stack.pop()
            if cand <= longest[n]:
                continue
            if journal is not None:
                journal.append(("longest", n, longest[n]))
            longest[n] = cand
            for p in self._pred.get(n, ()):
                stack.append((p, precedence[(p, n)] + cand))

    def _lower_longest(self, seeds: typing.Iterable[int]) -> None:
        """Recompute suffix distances that may have shrunk.

        Processes deepest level first so every successor is final before
        its predecessors are recomputed; propagation stops where the
        recomputed value is unchanged.
        """
        longest = self._longest
        level = self._level
        pending = {n for n in seeds if n in longest}
        heap = [(-level[n], n) for n in pending]
        heapq.heapify(heap)
        while heap:
            _, node = heapq.heappop(heap)
            if node not in pending:
                continue
            pending.discard(node)
            best = 0.0
            for s in self._succ.get(node, ()):
                cand = self._precedence[(node, s)] + longest[s]
                if cand > best:
                    best = cand
            if best != longest[node]:
                longest[node] = best
                for p in self._pred.get(node, ()):
                    if p not in pending:
                        pending.add(p)
                        heapq.heappush(heap, (-level[p], p))

    def propagate_transitive_fixes(
        self,
        touched: typing.Optional[
            typing.Iterable[typing.Tuple[int, int]]
        ] = None,
    ) -> typing.List[typing.Tuple[int, int]]:
        """Resolve conflict edges forced by existing precedence paths.

        When a precedence path Ti ~> Tj exists, the conflict edge (Ti, Tj)
        can only legally be oriented Ti -> Tj (Fig. 6's T4 -> T7 example);
        fix all such edges.  Returns the fixes applied.

        ``touched`` (the just-inserted precedence edges) restricts the
        sweep: a conflict edge can only be *newly* forced along a path
        through one of those edges, so only pairs with one endpoint among
        the new sources' ancestors and the other among the new targets'
        descendants are candidates.  Callers that kept the graph
        propagated (every grant/declaration since the last sweep) get the
        identical applied list in a single sweep; ``touched=None`` runs
        the original full fixpoint scan.
        """
        if touched is not None:
            return self._propagate_touched(list(touched))
        applied = []
        changed = True
        while changed:
            changed = False
            for key in list(self._conflicts):
                if key not in self._conflicts:
                    continue  # resolved by an earlier fix this sweep
                i, j = tuple(key)
                if self.has_path(i, j):
                    self.apply_fix(i, j)
                    applied.append((i, j))
                    changed = True
                elif self.has_path(j, i):
                    self.apply_fix(j, i)
                    applied.append((j, i))
                    changed = True
        return applied

    def _propagate_touched(
        self, new_edges: typing.List[typing.Tuple[int, int]]
    ) -> typing.List[typing.Tuple[int, int]]:
        """One restricted sweep over conflict edges a new path could force."""
        if not new_edges or not self._conflicts:
            return []
        above = self._closure({i for i, _ in new_edges}, self._pred)
        below = self._closure({j for _, j in new_edges}, self._succ)
        applied = []
        for key in list(self._conflicts):
            i, j = tuple(key)
            if i in above and j in below and self.has_path(i, j):
                self.apply_fix(i, j)
                applied.append((i, j))
            elif j in above and i in below and self.has_path(j, i):
                self.apply_fix(j, i)
                applied.append((j, i))
        return applied

    @staticmethod
    def _closure(
        starts: typing.Set[int],
        adjacency: typing.Dict[int, typing.Set[int]],
    ) -> typing.Set[int]:
        """``starts`` plus everything reachable through ``adjacency``."""
        seen = set(starts)
        stack = list(starts)
        while stack:
            node = stack.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def grant(
        self,
        txn_id: int,
        file_id: int,
        propagate: bool = True,
        fixes: typing.Optional[typing.List[typing.Tuple[int, int]]] = None,
        precheck: bool = True,
    ) -> typing.List[typing.Tuple[int, int]]:
        """Apply all precedence consequences of a lock grant.

        Returns the fixes applied (direct + transitive).  Raises if the
        grant would create a cycle -- schedulers must test first.

        ``propagate=False`` skips the transitive conflict-edge resolution:
        schedulers that never read edge weights (C2PL) can resolve those
        edges lazily -- a later grant against a forced order still fails
        the cycle test -- and skipping keeps large graphs affordable.

        ``fixes``/``precheck`` let a scheduler that already computed the
        fix list and ran the cycle test (atomically, with no intervening
        yields) skip the recomputation.
        """
        if fixes is None:
            fixes = self.fixes_for_grant(txn_id, file_id)
        if precheck and self.creates_cycle(fixes):
            raise ValueError(
                f"granting F{file_id} to T{txn_id} creates a precedence cycle"
            )
        for i, j in fixes:
            self.apply_fix(i, j)
        if not propagate:
            return fixes
        return fixes + self.propagate_transitive_fixes(touched=fixes)

    # -- path / cycle machinery ---------------------------------------------

    def has_path(self, src: int, dst: int) -> bool:
        """Is there a directed precedence path src ~> dst?"""
        if src == dst:
            return True
        if self._level.get(src, 0) >= self._level.get(dst, 0):
            return False
        return self._any_reaches({src}, dst)

    @staticmethod
    def _has_cycle(adjacency: typing.Dict[int, typing.Set[int]]) -> bool:
        WHITE, GREY, BLACK = 0, 1, 2
        colour: typing.Dict[int, int] = {}
        nodes = set(adjacency)
        for targets in adjacency.values():
            nodes |= targets

        # iterative DFS (overloaded graphs are deeper than the C stack)
        def visit(root: int) -> bool:
            stack: typing.List[typing.Tuple[int, typing.Iterator[int]]] = [
                (root, iter(adjacency.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for nxt in children:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        return True
                    if state == WHITE:
                        colour[nxt] = GREY
                        stack.append((nxt, iter(adjacency.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
            return False

        return any(
            colour.get(node, WHITE) == WHITE and visit(node) for node in nodes
        )

    def critical_path_length(self) -> float:
        """Longest T0-to-Tf path over precedence edges (conflicts ignored).

        Returns ``inf`` when the precedence edges contain a cycle (a state
        the schedulers treat as deadlock).  The maintained levels certify
        acyclicity in one O(E) scan -- ``level(i) < level(j)`` for every
        edge proves there is no cycle -- and the maintained suffix
        distances reduce the longest path to one pass over the (drifting)
        T0 weights.
        """
        level = self._level
        for i, j in self._precedence:
            if level[i] >= level[j]:
                return math.inf
        longest = self._longest
        t0_weight = self.t0_weight
        best = 0.0
        for txn_id in self._txns:
            value = t0_weight(txn_id) + longest[txn_id]
            if value > best:
                best = value
        return best

    def _recompute_longest(self) -> typing.Dict[int, float]:
        """Reference backward recompute of all suffix distances."""
        result: typing.Dict[int, float] = {}
        for node in sorted(self._txns, key=self._level.__getitem__, reverse=True):
            best = 0.0
            for s in self._succ.get(node, ()):
                cand = self._precedence[(node, s)] + result[s]
                if cand > best:
                    best = cand
            result[node] = best
        return result

    # -- hypothetical evaluation (LOW's E function) -----------------------------

    def hypothetical_grant_critical_path(
        self, txn_id: int, file_id: int
    ) -> float:
        """E(q) of Fig. 5: critical path after granting q, or inf on deadlock.

        The fixes (direct and transitive) are applied against the live
        structure under an undo journal and rolled back before returning;
        the graph the caller sees is untouched.
        """
        fixes = self.fixes_for_grant(txn_id, file_id)
        if self.creates_cycle(fixes):
            return math.inf
        if self._journal is not None:
            raise RuntimeError("nested hypothetical evaluation")
        journal: typing.List[typing.Tuple] = []
        self._journal = journal
        version = self.structure_version
        try:
            for i, j in fixes:
                self.apply_fix(i, j)
            self.propagate_transitive_fixes(touched=fixes)
            return self.critical_path_length()
        finally:
            self._journal = None
            self._rollback(journal)
            self.structure_version = version

    def _rollback(self, journal: typing.List[typing.Tuple]) -> None:
        """Undo journaled mutations in reverse order."""
        for entry in reversed(journal):
            kind = entry[0]
            if kind == "longest":
                self._longest[entry[1]] = entry[2]
            elif kind == "level":
                self._level[entry[1]] = entry[2]
            elif kind == "edge":
                _, i, j = entry
                del self._precedence[(i, j)]
                self._succ[i].discard(j)
                self._pred[j].discard(i)
            else:  # "conflict"
                _, key, edge = entry
                self._conflicts[key] = edge
                i, j = tuple(key)
                self._conflict_adj[i].add(j)
                self._conflict_adj[j].add(i)

    def _scratch_copy(self) -> "WTPG":
        """Copy sharing transactions but with private edge/level state.

        Subclass-aware: extension WTPGs (e.g. the resource-aware variant)
        keep their extra weighting state in hypothetical evaluations.
        Kept as the reference evaluation path (tests compare it against
        the journal-based one).
        """
        copy = type(self).__new__(type(self))
        copy.__dict__.update(self.__dict__)
        copy._txns = dict(self._txns)
        copy._conflicts = dict(self._conflicts)
        copy._precedence = dict(self._precedence)
        copy._succ = {k: set(v) for k, v in self._succ.items()}
        copy._pred = {k: set(v) for k, v in self._pred.items()}
        copy._conflict_adj = {
            k: set(v) for k, v in self._conflict_adj.items()
        }
        copy._readers = {k: set(v) for k, v in self._readers.items()}
        copy._writers = {k: set(v) for k, v in self._writers.items()}
        copy._level = dict(self._level)
        copy._longest = dict(self._longest)
        copy._journal = None
        copy._chain_cache = None
        return copy

    def check_invariants(self) -> None:
        """Assert internal consistency (test hook).

        Verifies adjacency mirrors the edge dicts, that every precedence
        edge satisfies the level invariant, and that the maintained
        suffix distances match a full backward recompute bit-for-bit.
        """
        for (i, j) in self._precedence:
            assert j in self._succ.get(i, set()), (i, j)
            assert i in self._pred.get(j, set()), (i, j)
            assert self._level[i] < self._level[j], (
                i,
                j,
                self._level[i],
                self._level[j],
            )
        for key in self._conflicts:
            i, j = tuple(key)
            assert j in self._conflict_adj.get(i, set())
            assert i in self._conflict_adj.get(j, set())
        for node, succ in self._succ.items():
            for s in succ:
                assert (node, s) in self._precedence
        reference = self._recompute_longest()
        for node, expected in reference.items():
            assert self._longest[node] == expected, (
                node,
                self._longest[node],
                expected,
            )

    def __repr__(self) -> str:
        return (
            f"<WTPG txns={len(self._txns)} conflicts={len(self._conflicts)} "
            f"precedence={len(self._precedence)}>"
        )
