"""ASL: Atomic Static Locking (conservative two-phase locking).

"ASL is the two-phase locking where a transaction has to get all the
necessary locks at its start" (Section 4.2).  A transaction is admitted
only when *every* file it declared is simultaneously available in the
required mode; the whole set is then granted atomically.  Waiting
transactions re-try greedily whenever scheduler state changes, so a small
transaction may start ahead of an older blocked one ("ASL starts only such
the transactions without locking conflict", Section 5.1.3).

ASL therefore has no blocking chains, no deadlock and no rollback; its
weakness is admission starvation on hot files.

Table 1 gives no CPU cost for ASL's admission test, so it is free on the
CN by default (``asl_admit_cost_ms`` overrides for ablations).
"""

from __future__ import annotations

import typing

from repro.core.base import Decision, Scheduler
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class ASLScheduler(Scheduler):
    """Conservative 2PL: all locks atomically at startup."""

    name = "ASL"

    def __init__(self, *args: typing.Any, asl_admit_cost_ms: float = 0.0, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        self.asl_admit_cost_ms = asl_admit_cost_ms

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        if self.asl_admit_cost_ms:
            yield from self.control_node.consume(
                self.asl_admit_cost_ms, "cc-asl"
            )
        wanted = [(f, txn.mode_for(f)) for f in txn.files]
        if all(self.lock_table.is_compatible(f, m) for f, m in wanted):
            for f, m in wanted:
                self._grant_lock(txn, f, m)
                self.stats.grants.increment()
            return True
        return False

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        # Admission granted everything; per-step acquire must be a no-op.
        if not self.lock_table.holds(txn.txn_id, file_id):
            raise RuntimeError(
                f"ASL invariant violated: T{txn.txn_id} lacks F{file_id}"
            )
        return Decision.GRANT
        yield  # pragma: no cover - generator marker
