"""LOW-LB: resource-aware LOW (the paper's stated further work).

The conclusion of the paper suggests improving the WTPG schedulers "for
resource-level load-balancing on Shared-Nothing database machines".
This extension implements the most direct reading: the WTPG's T0-edge
weight -- a transaction's remaining *declared* I/O -- is inflated by the
scan backlog already queued on the data-processing nodes that will serve
the transaction's current step:

    w0'(Ti) = remaining_cost(Ti) + rho * mean_backlog(nodes of Ti's step)

E(q) then measures contention in *time-to-drain* rather than raw I/O
demand, so a contended lock preferentially goes to a transaction whose
work lands on idle nodes.  With ``rho = 0`` LOW-LB degenerates to LOW
exactly.

The scheduler needs sight of the machine's DPNs; the simulation binds it
after construction via :meth:`bind_machine`.
"""

from __future__ import annotations

import typing

from repro.core.low import LOWScheduler
from repro.core.wtpg import WTPG

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.machine import SharedNothingMachine


class ResourceAwareWTPG(WTPG):
    """WTPG whose T0 weights include current DPN scan backlog."""

    def __init__(
        self,
        node_backlog: typing.Callable[[int], float],
        nodes_for_file: typing.Callable[[int], typing.List[int]],
        rho: float = 1.0,
    ) -> None:
        super().__init__()
        if rho < 0:
            raise ValueError(f"rho must be >= 0, got {rho}")
        self._node_backlog = node_backlog
        self._nodes_for_file = nodes_for_file
        self._rho = rho

    def t0_weight(self, txn_id: int) -> float:
        base = super().t0_weight(txn_id)
        if self._rho == 0.0:
            return base
        txn = self.transaction(txn_id)
        if txn.finished_all_steps:
            return base
        nodes = self._nodes_for_file(txn.current_step.file_id)
        if not nodes:
            return base
        backlog = sum(self._node_backlog(n) for n in nodes) / len(nodes)
        return base + self._rho * backlog


class LOWLBScheduler(LOWScheduler):
    """LOW with resource-level load balancing in its E() estimates."""

    name = "LOW-LB"

    def __init__(
        self, *args: typing.Any, rho: float = 1.0, **kwargs: typing.Any
    ) -> None:
        super().__init__(*args, **kwargs)
        self.rho = rho
        self._machine: typing.Optional["SharedNothingMachine"] = None
        self.wtpg = ResourceAwareWTPG(
            self._backlog_of_node, self._nodes_of_file, rho=rho
        )

    def bind_machine(self, machine: "SharedNothingMachine") -> None:
        """Give the scheduler sight of the DPN queues (simulation calls
        this right after construction)."""
        self._machine = machine

    def _backlog_of_node(self, node_id: int) -> float:
        if self._machine is None:
            return 0.0
        return self._machine.data_nodes[node_id].backlog_objects

    def _nodes_of_file(self, file_id: int) -> typing.List[int]:
        if self._machine is None:
            return []
        return self._machine.placement.nodes_for(file_id)
