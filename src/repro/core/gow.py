"""GOW: the Globally-Optimized WTPG scheduler (Section 3.2, Figs. 3-4).

GOW plans globally: it computes the full serializable order W that makes
the *shortest critical path* in the current WTPG and only grants lock
requests whose precedence consequences are consistent with W.

Finding W is NP-hard in general, so GOW restricts the WTPG to *chain
form* (every general transaction conflicts only with its neighbours in a
path); the start of a transaction that would break the chain is aborted
and re-submitted later (Phase 0).  Within a chain W is computed in low
polynomial time (:mod:`repro.core.chain`).

CPU costs (Table 1): ``toptime`` (5 ms) per chain-form test, ``chaintime``
(30 ms) per W computation.
"""

from __future__ import annotations

import typing

from repro.core.base import Decision, Scheduler, WTPGSchedulerMixin
from repro.core.chain import (
    compute_optimal_order,
    keeps_chain_form_incremental,
)
from repro.core.wtpg import WTPG
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class GOWScheduler(WTPGSchedulerMixin, Scheduler):
    """Chain-form WTPG scheduler with globally-optimised serialization."""

    name = "GOW"

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        self.wtpg = WTPG()

    # -- Phase 0: chain-form admission -------------------------------------------

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        yield from self.control_node.consume(self.config.toptime_ms, "cc-gow")
        # GOW keeps the graph chain-form invariantly, so the incremental
        # test (degrees + one path walk) replaces the full re-verification.
        ok = keeps_chain_form_incremental(self.wtpg, txn)
        if self._trace.enabled:
            self._trace.emit(
                self.env.now, "sched.chain_test", txn=txn.txn_id, ok=ok
            )
        if not ok:
            return False  # start aborted; re-submitted after some delay
        self._register_in_wtpg(txn)
        return True

    # -- Phases 1-4: Fig. 4 ---------------------------------------------------------

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        # Phase 1: blocked by a held lock?
        if not self.lock_table.is_compatible(file_id, mode):
            return Decision.BLOCK
        # Phase 2: compute the optimal full serializable order W.  The
        # decision after the CPU wait is atomic; the lock may have been
        # taken while we computed, so re-check Phase 1.
        yield from self.control_node.consume(self.config.chaintime_ms, "cc-gow")
        if not self.lock_table.is_compatible(file_id, mode):
            return Decision.BLOCK
        order = compute_optimal_order(self.wtpg)
        # Phase 3: delay q if its precedence consequences contradict W.
        fixes = self.wtpg.fixes_for_grant(txn.txn_id, file_id)
        consistent = all(order.consistent_with_fix(i, j) for i, j in fixes)
        if self._trace.enabled:
            # the chain orientation GOW committed to for this decision
            self._trace.emit(
                self.env.now,
                "sched.chain_order",
                txn=txn.txn_id,
                file=file_id,
                consistent=consistent,
            )
        if not consistent:
            return Decision.DELAY
        # Granted; Phase 4 replaces newly determined conflict edges.
        self._grant_lock(txn, file_id, mode)
        applied = self.wtpg.grant(txn.txn_id, file_id, fixes=fixes)
        if self._trace.enabled:
            self._emit_wtpg_fixes(applied)
        return Decision.GRANT

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        self._deregister_from_wtpg(txn)
        return
        yield  # pragma: no cover - generator marker
