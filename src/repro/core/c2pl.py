"""C2PL: Cautious Two-Phase Locking (Nishio et al., ref. [12]).

A variation of strict two-phase locking that never aborts: it keeps an
(unweighted) transaction-precedence graph over the declared accesses and
"grants a lock-request q if and only if q is not blocked and does not
cause a deadlock" (Section 4.2).  A grant that would close a precedence
cycle is *delayed* instead.

Each evaluation pays ``ddtime`` (1 ms) of CN CPU for the deadlock test.

``C2PL+M`` -- "the best C2PL to control multiprogramming level in order to
avoid chains of blocking" -- is this same scheduler with a finite ``mpl``
in the machine config; the experiment harness sweeps a small MPL set and
reports the best, as the paper does.
"""

from __future__ import annotations

import typing

from repro.core.base import Decision, Scheduler, WTPGSchedulerMixin
from repro.core.wtpg import WTPG
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class C2PLScheduler(WTPGSchedulerMixin, Scheduler):
    """Cautious 2PL with WTPG-based deadlock prediction."""

    name = "C2PL"
    wtpg_propagate = False

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        self.wtpg = WTPG()

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        # C2PL admits unconditionally (MPL permitting); it only needs the
        # transaction's declarations in its graph.
        self._register_in_wtpg(txn)
        return True
        yield  # pragma: no cover - generator marker

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-c2pl")
        if not self.lock_table.is_compatible(file_id, mode):
            return Decision.BLOCK
        fixes = self.wtpg.fixes_for_grant(txn.txn_id, file_id)
        deadlock = self.wtpg.creates_cycle(fixes)
        if self._trace.enabled:
            self._trace.emit(
                self.env.now, "sched.cycle_test", txn=txn.txn_id,
                file=file_id, deadlock=deadlock,
            )
        if deadlock:
            return Decision.DELAY  # cautious: wait, never abort
        self._grant_lock(txn, file_id, mode)
        # fixes and the cycle test were just computed, with no yields in
        # between, so the grant can skip both recomputations
        applied = self.wtpg.grant(
            txn.txn_id, file_id, propagate=False, fixes=fixes, precheck=False
        )
        if self._trace.enabled:
            self._emit_wtpg_fixes(applied)
        return Decision.GRANT

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        self._deregister_from_wtpg(txn)
        return
        yield  # pragma: no cover - generator marker
