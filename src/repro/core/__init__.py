"""The paper's contribution: WTPG-based batch-transaction schedulers.

- :class:`WTPG` -- the Weighted Transaction-Precedence Graph (Section 3.1).
- :mod:`repro.core.chain` -- chain-form testing and the optimal
  serializable order for GOW.
- :class:`Scheduler` and the six policies: :class:`GOWScheduler`,
  :class:`LOWScheduler`, :class:`ASLScheduler`, :class:`C2PLScheduler`,
  :class:`OPTScheduler`, :class:`NODCScheduler`.
- :class:`LockTable` -- file-granule S/X locks.
- :class:`SerializabilityAuditor` -- history checking for tests.
- :func:`create` / :data:`PAPER_SCHEDULERS` -- the scheduler registry.
"""

from repro.core.asl import ASLScheduler
from repro.core.audit import SerializabilityAuditor
from repro.core.base import (
    Decision,
    Scheduler,
    SchedulerStats,
    TransactionAborted,
    WTPGSchedulerMixin,
)
from repro.core.c2pl import C2PLScheduler
from repro.core.gow import GOWScheduler
from repro.core.locks import LockError, LockTable
from repro.core.low import LOWScheduler
from repro.core.lowlb import LOWLBScheduler, ResourceAwareWTPG
from repro.core.nodc import NODCScheduler
from repro.core.opt import OPTScheduler
from repro.core.registry import PAPER_SCHEDULERS, available, create, register
from repro.core.twopl import TwoPLScheduler
from repro.core.wtpg import WTPG, ConflictEdge

__all__ = [
    "ASLScheduler",
    "C2PLScheduler",
    "ConflictEdge",
    "Decision",
    "GOWScheduler",
    "LOWLBScheduler",
    "LOWScheduler",
    "LockError",
    "LockTable",
    "NODCScheduler",
    "OPTScheduler",
    "PAPER_SCHEDULERS",
    "Scheduler",
    "SchedulerStats",
    "TransactionAborted",
    "TwoPLScheduler",
    "WTPGSchedulerMixin",
    "ResourceAwareWTPG",
    "SerializabilityAuditor",
    "WTPG",
    "available",
    "create",
    "register",
]
