"""Scheduler framework: the lock-request lifecycle shared by all policies.

A scheduler exposes three process-generator entry points that the
transaction executor drives:

- ``admit(txn)``    -- returns when the transaction may start (MPL gate
  plus the policy's admission rule, e.g. GOW's chain-form test or LOW's
  K-conflict limit).
- ``acquire(txn, file_id)`` -- returns when the lock for the step is held.
- ``commit(txn)`` / ``abort(txn)`` -- release everything and wake waiters.

Policies implement ``_try_admit`` and ``_try_acquire``; the framework
handles waiting, re-evaluation on state changes, the lock table, and
statistics.  Every policy computation consumes control-node CPU per the
paper's Table 1 costs, so concurrency control itself loads the machine.

Re-submission of blocked/delayed requests is event-driven (any grant,
commit or abort wakes all waiters) with the configurable
``retry_delay_ms`` as a fallback, implementing the paper's "aborted or
delayed lock-requests are submitted ... after some delay".
"""

from __future__ import annotations

import abc
import collections
import enum
import typing

from repro.des import Environment, Event
from repro.des.monitor import Counter
from repro.core.locks import LockTable
from repro.machine.config import MachineConfig
from repro.machine.control_node import ControlNode
from repro.obs.profile import profiled
from repro.obs.timeseries import gauge, size_hist
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction, TransactionState


class TransactionAborted(Exception):
    """Raised out of ``acquire`` when deadlock resolution picked the
    calling transaction as a victim (plain 2PL only); the executor must
    abort and restart the transaction."""


class Decision(enum.Enum):
    """Outcome of one lock-request evaluation (Figs. 4 and 7)."""

    GRANT = "grant"
    BLOCK = "block"  # conflicts with a held lock
    DELAY = "delay"  # policy decision (order/priority/deadlock avoidance)


class SchedulerStats:
    """Counters every scheduler maintains."""

    def __init__(self) -> None:
        self.admissions = Counter("admissions")
        self.admission_rejections = Counter("admission_rejections")
        self.grants = Counter("grants")
        self.blocks = Counter("blocks")
        self.delays = Counter("delays")
        self.commits = Counter("commits")
        self.aborts = Counter("aborts")  # OPT validation failures

    def reset(self) -> None:
        for counter in vars(self).values():
            counter.reset()


class Scheduler(abc.ABC):
    """Base class for all six schedulers."""

    #: short name used in result tables ("GOW", "LOW", ...)
    name: str = "base"

    def __init__(
        self,
        env: Environment,
        config: MachineConfig,
        control_node: ControlNode,
    ) -> None:
        self.env = env
        self.config = config
        self.control_node = control_node
        self.lock_table = LockTable(config.num_files)
        self.stats = SchedulerStats()
        #: trace sink (cached: the disabled path must stay one attribute
        #: check per instrumented site)
        self._trace = env.trace
        #: self-profiler, cached under the same contract as the trace
        self._profile = env.profile
        #: waiters woken by any commit (delayed requests, admissions),
        #: as (priority, event) with priority = transaction arrival time
        self._commit_waiters: typing.List[typing.Tuple[float, Event]] = []
        #: waiters woken when a specific file's lock is released
        self._file_waiters: typing.Dict[
            int, typing.List[typing.Tuple[float, Event]]
        ] = {}
        self._active_count = 0
        self._mpl_queue: typing.Deque[Event] = collections.deque()

    # -- public lifecycle ------------------------------------------------------

    def admit(self, txn: BatchTransaction) -> typing.Generator:
        """Wait until the transaction may start (MPL + policy admission)."""
        yield from self._enter_mpl_gate()
        while True:
            admitted = yield from self._evaluate(self._try_admit(txn))
            if admitted:
                self._active_count += 1
                txn.state = TransactionState.ACTIVE
                txn.start_time = self.env.now
                self.stats.admissions.increment()
                if self._trace.enabled:
                    self._trace.emit(self.env.now, "txn.admit", txn=txn.txn_id)
                return
            self.stats.admission_rejections.increment()
            if self._trace.enabled:
                self._trace.emit(
                    self.env.now, "txn.admit_reject", txn=txn.txn_id
                )
            # Admissibility (free locks, chain shape, conflict counts) can
            # only improve when a transaction leaves: wake on commit.
            yield from self._wait_for_commit(
                fallback=False, priority=txn.arrival_time
            )

    def acquire(self, txn: BatchTransaction, file_id: int) -> typing.Generator:
        """Wait until the lock needed for ``file_id`` is held.

        The mode is the strongest the transaction ever needs on the file;
        a file locked at an earlier step returns immediately.
        """
        if self._already_holds(txn, file_id):
            return
        mode = txn.mode_for(file_id)
        wait_started: typing.Optional[float] = None
        while True:
            if self._doomed_check(txn):
                raise TransactionAborted(txn.txn_id)
            decision = yield from self._evaluate(
                self._try_acquire(txn, file_id, mode)
            )
            if decision is Decision.GRANT:
                self.stats.grants.increment()
                if self._trace.enabled and wait_started is not None:
                    self._trace.emit(
                        self.env.now,
                        "txn.lock_acquired",
                        txn=txn.txn_id,
                        file=file_id,
                        wait_ms=self.env.now - wait_started,
                    )
                return
            if self._trace.enabled:
                if wait_started is None:
                    self._trace.emit(
                        self.env.now,
                        "txn.lock_wait",
                        txn=txn.txn_id,
                        file=file_id,
                        mode=mode.name,
                    )
                if decision is Decision.BLOCK:
                    self._trace.emit(
                        self.env.now,
                        "txn.block",
                        txn=txn.txn_id,
                        file=file_id,
                        holders=sorted(self.lock_table.holders(file_id)),
                    )
                else:
                    self._trace.emit(
                        self.env.now, "txn.delay", txn=txn.txn_id, file=file_id
                    )
            if wait_started is None:
                wait_started = self.env.now
            if decision is Decision.BLOCK:
                self.stats.blocks.increment()
                yield from self._wait_for_file(
                    file_id, priority=txn.arrival_time
                )
            else:
                self.stats.delays.increment()
                yield from self._wait_for_commit(priority=txn.arrival_time)

    def _evaluate(self, attempt: typing.Generator) -> typing.Generator:
        """Drive one policy evaluation, self-profiled when enabled."""
        if self._profile.enabled:
            return (
                yield from profiled(attempt, self._profile, "sched.decision")
            )
        return (yield from attempt)

    def _release_all(self, txn_id: int) -> typing.List[int]:
        """Lock-table release sweep, attributed to the lock manager."""
        profile = self._profile
        if profile.enabled:
            profile.push("lock.manager")
            released = self.lock_table.release_all(txn_id)
            profile.pop()
            return released
        return self.lock_table.release_all(txn_id)

    def commit(self, txn: BatchTransaction) -> typing.Generator:
        """Release locks, drop scheduler state, wake waiters."""
        yield from self._on_commit(txn)
        released = self._release_all(txn.txn_id)
        txn.state = TransactionState.COMMITTED
        txn.commit_time = self.env.now
        self.stats.commits.increment()
        if self._trace.enabled:
            for file_id in released:
                self._trace.emit(
                    self.env.now, "lock.release", txn=txn.txn_id, file=file_id
                )
            self._trace.emit(
                self.env.now,
                "txn.commit",
                txn=txn.txn_id,
                response_ms=txn.commit_time - txn.arrival_time,
            )
        self._leave(released)

    def abort(self, txn: BatchTransaction) -> typing.Generator:
        """Abandon an active transaction (OPT validation failure)."""
        yield from self._on_abort(txn)
        released = self._release_all(txn.txn_id)
        txn.state = TransactionState.ABORTED
        self.stats.aborts.increment()
        if self._trace.enabled:
            for file_id in released:
                self._trace.emit(
                    self.env.now, "lock.release", txn=txn.txn_id, file=file_id
                )
            self._trace.emit(
                self.env.now,
                "txn.abort",
                txn=txn.txn_id,
                reason="validation" if self.name == "OPT" else "deadlock",
            )
        self._leave(released)

    def validate_at_commit(self, txn: BatchTransaction) -> bool:
        """Certification hook; only OPT ever fails it."""
        return True

    def bind_machine(self, machine: typing.Any) -> None:
        """Give the scheduler sight of the machine (no-op by default;
        the resource-aware extension overrides it)."""

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Signals a :class:`TimeSeriesSampler` should watch on this
        scheduler.  Policies extend the base catalogue with their own
        structures (e.g. WTPG size, waits-for edges)."""
        return {
            "sched.active_mpl": {
                "probe": gauge(lambda: self._active_count),
                "unit": "txn",
                "hist": size_hist(),
            },
            "sched.blocked": {
                "probe": gauge(
                    lambda: sum(
                        len(pool) for pool in self._file_waiters.values()
                    )
                ),
                "unit": "txn",
                "hist": size_hist(),
            },
            "sched.delayed": {
                "probe": gauge(lambda: len(self._commit_waiters)),
                "unit": "txn",
                "hist": size_hist(),
            },
            "sched.mpl_queue": {
                "probe": gauge(lambda: len(self._mpl_queue)),
                "unit": "txn",
                "hist": size_hist(),
            },
            "lock.files_held": {
                "probe": gauge(self.lock_table.held_count),
                "unit": "files",
                "hist": size_hist(),
            },
            "sched.aborts.cum": {
                "probe": gauge(lambda: self.stats.aborts.total),
                "unit": "txn",
            },
        }

    # -- policy hooks ------------------------------------------------------------

    @abc.abstractmethod
    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        """One admission attempt; generator returning bool."""

    @abc.abstractmethod
    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        """One lock-request evaluation; generator returning a Decision."""

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        """Scheduler-specific commit cleanup (default: none)."""
        return
        yield  # pragma: no cover - makes this a generator

    def _on_abort(self, txn: BatchTransaction) -> typing.Generator:
        """Scheduler-specific abort cleanup (default: same as commit)."""
        yield from self._on_commit(txn)

    def _already_holds(self, txn: BatchTransaction, file_id: int) -> bool:
        return self.lock_table.holds(txn.txn_id, file_id)

    def _doomed_check(self, txn: BatchTransaction) -> bool:
        """Deadlock-victim hook; only plain 2PL ever dooms anyone."""
        return False

    # -- waiting / waking -----------------------------------------------------------

    def _wait_on(
        self,
        wake: Event,
        pool: typing.List[typing.Tuple[float, Event]],
        fallback: bool,
        priority: float,
    ) -> typing.Generator:
        """Park on ``wake``, optionally with the retry-delay fallback.

        ``priority`` (lower wakes first; we pass the transaction's
        arrival time) keeps contested wake-ups FCFS: a waiter that
        re-parks after a failed retry keeps its age instead of moving to
        the back, so old transactions win contested admissions/locks and
        measured response times reflect real queueing delay.
        """
        entry = (priority, wake)
        pool.append(entry)
        if fallback and self.config.retry_delay_ms > 0:
            yield self.env.any_of(
                [wake, self.env.timeout(self.config.retry_delay_ms)]
            )
        else:
            yield wake
        try:
            pool.remove(entry)
        except ValueError:
            pass

    def _wait_for_commit(
        self, fallback: bool = True, priority: float = 0.0
    ) -> typing.Generator:
        """Sleep until some transaction commits/aborts.

        Delayed requests keep the retry-delay fallback (their grantability
        can also change on grants, which do not wake anyone); admission
        waits don't need it.
        """
        yield from self._wait_on(
            self.env.event(), self._commit_waiters, fallback, priority
        )

    def _wait_for_file(
        self, file_id: int, priority: float = 0.0
    ) -> typing.Generator:
        """Sleep until the file's lock is released (blocked requests).

        Strict locking releases only at commit/abort, both of which
        notify, so no fallback is needed.
        """
        pool = self._file_waiters.setdefault(file_id, [])
        yield from self._wait_on(self.env.event(), pool, fallback=False, priority=priority)

    def _notify_commit(self, released_files: typing.Iterable[int]) -> None:
        """Wake commit waiters and the waiters of each released file,
        oldest transaction first (FCFS among the eligible)."""
        waiters, self._commit_waiters = self._commit_waiters, []
        for file_id in released_files:
            waiters.extend(self._file_waiters.pop(file_id, ()))
        waiters.sort(key=lambda entry: entry[0])
        for _priority, event in waiters:
            if not event.triggered:
                event.succeed()

    def _notify_all(self) -> None:
        """Wake every waiter, wherever parked (deadlock-victim delivery)."""
        self._notify_commit(list(self._file_waiters))

    # -- MPL gate --------------------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Transactions admitted and not yet committed/aborted."""
        return self._active_count

    def _enter_mpl_gate(self) -> typing.Generator:
        mpl = self.config.mpl
        if mpl is None:
            return
        while self._active_count + self._pending_mpl_grants() >= mpl:
            slot = self.env.event()
            self._mpl_queue.append(slot)
            yield slot
        return

    def _pending_mpl_grants(self) -> int:
        return 0  # slots are granted one-for-one on _leave()

    def _leave(self, released_files: typing.Iterable[int] = ()) -> None:
        self._active_count -= 1
        if self._mpl_queue:
            slot = self._mpl_queue.popleft()
            if not slot.triggered:
                slot.succeed()
        self._notify_commit(released_files)

    # -- helpers for subclasses ---------------------------------------------------------

    def _grant_lock(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> None:
        profile = self._profile
        if profile.enabled:
            profile.push("lock.manager")
            self.lock_table.grant(txn.txn_id, file_id, mode)
            profile.pop()
        else:
            self.lock_table.grant(txn.txn_id, file_id, mode)
        if self._trace.enabled:
            self._trace.emit(
                self.env.now,
                "lock.grant",
                txn=txn.txn_id,
                file=file_id,
                mode=mode.name,
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} active={self._active_count}>"


class WTPGSchedulerMixin:
    """Shared WTPG bookkeeping for GOW, LOW and C2PL.

    Besides adding the newcomer's conflict edges, declaration must
    resolve the edges whose order is *already* determined: any active
    transaction currently holding a conflicting lock on one of the
    newcomer's files accessed that file first, so holder -> newcomer is a
    precedence edge from the start.  Without this, two transactions that
    each grabbed one file before the other declared could pass every
    cycle test and deadlock as blocked waiters.
    """

    wtpg: typing.Any  # set by the concrete scheduler
    lock_table: LockTable
    env: typing.Any
    _trace: typing.Any
    #: C2PL sets this False: it never reads weights, so forced conflict
    #: edges can resolve lazily through the cycle test.
    wtpg_propagate = True

    def _emit_wtpg_fixes(
        self, fixes: typing.Iterable[typing.Tuple[int, int]]
    ) -> None:
        """Trace each precedence-edge insertion (chain orientation)."""
        for src, dst in fixes:
            self._trace.emit(self.env.now, "sched.wtpg_fix", src=src, dst=dst)

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Base catalogue plus the live WTPG node count."""
        probes = super().timeseries_probes()  # type: ignore[misc]
        probes["sched.wtpg_size"] = {
            "probe": gauge(lambda: len(self.wtpg)),
            "unit": "txn",
            "hist": size_hist(),
        }
        return probes

    def _register_in_wtpg(self, txn: BatchTransaction) -> None:
        self.wtpg.add_transaction(txn)
        direct: typing.List[typing.Tuple[int, int]] = []
        for file_id in txn.files:
            mode = txn.mode_for(file_id)
            held_mode = self.lock_table.mode_of(file_id)
            if held_mode is None or not held_mode.conflicts_with(mode):
                continue
            for holder in self.lock_table.holders(file_id):
                if holder != txn.txn_id and holder in self.wtpg:
                    self.wtpg.apply_fix(holder, txn.txn_id)
                    direct.append((holder, txn.txn_id))
                    if self._trace.enabled:
                        self._emit_wtpg_fixes([(holder, txn.txn_id)])
        if self.wtpg_propagate:
            # only paths through the just-fixed holder -> newcomer edges
            # are new, so the sweep restricts to them; with no direct
            # fixes a propagated graph has nothing new to force
            applied = self.wtpg.propagate_transitive_fixes(touched=direct)
            if self._trace.enabled:
                self._emit_wtpg_fixes(applied)

    def _deregister_from_wtpg(self, txn: BatchTransaction) -> None:
        if txn.txn_id in self.wtpg:
            self.wtpg.remove_transaction(txn.txn_id)
