"""NODC: the no-data-contention upper bound.

"NODC grants any lock at any time so that it shows upper bound of
performance" (Section 4.2).  There is no lock table interaction at all --
transactions only ever contend for machine resources (DPN bandwidth and
the CN CPU).
"""

from __future__ import annotations

import typing

from repro.core.base import Decision, Scheduler
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class NODCScheduler(Scheduler):
    """Upper bound: no concurrency control whatsoever."""

    name = "NODC"

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        return True
        yield  # pragma: no cover - generator marker

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        return Decision.GRANT
        yield  # pragma: no cover - generator marker

    def acquire(self, txn: BatchTransaction, file_id: int) -> typing.Generator:
        """Skip the lock table entirely -- any access is always allowed."""
        self.stats.grants.increment()
        return
        yield  # pragma: no cover - generator marker
