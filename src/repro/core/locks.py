"""File-granule lock table.

Mechanism only: the table tracks which transactions hold which files in
which mode and answers compatibility questions.  *Policy* -- whether a
compatible request should nevertheless be delayed -- lives in the
schedulers.

Because every transaction requests the strongest mode it will ever need on
a file at its first touch (Section 2 / Experiment 1 of the paper), lock
upgrades never occur and the table rejects them.

The table is sparse: only files someone actually holds have a
:class:`FileLock` entry, and a per-transaction holdings index makes
``files_held_by``/``release_all`` O(files held) and ``held_count`` O(1)
regardless of ``num_files`` -- the dense list-of-all-files layout scanned
the whole database per committing transaction and per time-series sample.
"""

from __future__ import annotations

import typing

from repro.txn.step import AccessMode


class LockError(RuntimeError):
    """An illegal lock-table operation (double grant, missing release...)."""


class FileLock:
    """Lock state of one file: its holders and their (common) mode."""

    __slots__ = ("file_id", "mode", "holders")

    def __init__(self, file_id: int) -> None:
        self.file_id = file_id
        self.mode: typing.Optional[AccessMode] = None
        self.holders: typing.Set[int] = set()

    @property
    def is_free(self) -> bool:
        return not self.holders

    def compatible(self, mode: AccessMode) -> bool:
        """Can a new holder in ``mode`` coexist with current holders?"""
        if self.is_free:
            return True
        assert self.mode is not None
        return not self.mode.conflicts_with(mode)

    def __repr__(self) -> str:
        mode = self.mode.value if self.mode else "-"
        return f"<FileLock F{self.file_id} {mode} held_by={sorted(self.holders)}>"


class LockTable:
    """All file locks of the control node (file-level granules only)."""

    def __init__(self, num_files: int) -> None:
        if num_files < 1:
            raise ValueError(f"num_files must be >= 1, got {num_files}")
        self.num_files = num_files
        #: held files only; a free file has no entry
        self._locks: typing.Dict[int, FileLock] = {}
        #: holdings index: txn_id -> files it holds (dropped when empty)
        self._held_by: typing.Dict[int, typing.Set[int]] = {}

    def _check_range(self, file_id: int) -> None:
        if not 0 <= file_id < self.num_files:
            raise ValueError(f"file {file_id} out of range")

    # -- queries --------------------------------------------------------------

    def is_compatible(self, file_id: int, mode: AccessMode) -> bool:
        """Would granting (file, mode) conflict with current holders?"""
        self._check_range(file_id)
        lock = self._locks.get(file_id)
        return lock is None or lock.compatible(mode)

    def holders(self, file_id: int) -> typing.Set[int]:
        """Transaction ids currently holding the file."""
        self._check_range(file_id)
        lock = self._locks.get(file_id)
        return set(lock.holders) if lock is not None else set()

    def mode_of(self, file_id: int) -> typing.Optional[AccessMode]:
        """Mode the file is held in, or None when free."""
        self._check_range(file_id)
        lock = self._locks.get(file_id)
        return lock.mode if lock is not None else None

    def holds(self, txn_id: int, file_id: int) -> bool:
        self._check_range(file_id)
        return file_id in self._held_by.get(txn_id, ())

    def held_count(self) -> int:
        """Number of files currently locked by anyone (table size)."""
        return len(self._locks)

    def files_held_by(self, txn_id: int) -> typing.List[int]:
        """All files the transaction holds (any mode), ascending."""
        return sorted(self._held_by.get(txn_id, ()))

    # -- mutations --------------------------------------------------------------

    def grant(self, txn_id: int, file_id: int, mode: AccessMode) -> None:
        """Record the grant; callers must have checked compatibility."""
        self._check_range(file_id)
        lock = self._locks.get(file_id)
        if lock is None:
            lock = FileLock(file_id)
            lock.mode = mode
            self._locks[file_id] = lock
        elif txn_id in lock.holders:
            raise LockError(
                f"T{txn_id} already holds F{file_id}; upgrades are not modelled"
            )
        elif not lock.compatible(mode):
            raise LockError(
                f"incompatible grant of F{file_id}:{mode} to T{txn_id} "
                f"(held {lock.mode} by {sorted(lock.holders)})"
            )
        elif mode.is_write:  # pragma: no cover - excluded by compatible()
            raise LockError("X grant on a held lock")
        lock.holders.add(txn_id)
        self._held_by.setdefault(txn_id, set()).add(file_id)

    def release(self, txn_id: int, file_id: int) -> None:
        """Release one file held by ``txn_id``."""
        self._check_range(file_id)
        lock = self._locks.get(file_id)
        if lock is None or txn_id not in lock.holders:
            raise LockError(f"T{txn_id} does not hold F{file_id}")
        lock.holders.remove(txn_id)
        if lock.is_free:
            del self._locks[file_id]
        held = self._held_by[txn_id]
        held.discard(file_id)
        if not held:
            del self._held_by[txn_id]

    def release_all(self, txn_id: int) -> typing.List[int]:
        """Release every file held by ``txn_id``; returns the files freed."""
        released = self.files_held_by(txn_id)
        for file_id in released:
            self.release(txn_id, file_id)
        return released
