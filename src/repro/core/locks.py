"""File-granule lock table.

Mechanism only: the table tracks which transactions hold which files in
which mode and answers compatibility questions.  *Policy* -- whether a
compatible request should nevertheless be delayed -- lives in the
schedulers.

Because every transaction requests the strongest mode it will ever need on
a file at its first touch (Section 2 / Experiment 1 of the paper), lock
upgrades never occur and the table rejects them.
"""

from __future__ import annotations

import typing

from repro.txn.step import AccessMode


class LockError(RuntimeError):
    """An illegal lock-table operation (double grant, missing release...)."""


class FileLock:
    """Lock state of one file: its holders and their (common) mode."""

    __slots__ = ("file_id", "mode", "holders")

    def __init__(self, file_id: int) -> None:
        self.file_id = file_id
        self.mode: typing.Optional[AccessMode] = None
        self.holders: typing.Set[int] = set()

    @property
    def is_free(self) -> bool:
        return not self.holders

    def compatible(self, mode: AccessMode) -> bool:
        """Can a new holder in ``mode`` coexist with current holders?"""
        if self.is_free:
            return True
        assert self.mode is not None
        return not self.mode.conflicts_with(mode)

    def __repr__(self) -> str:
        mode = self.mode.value if self.mode else "-"
        return f"<FileLock F{self.file_id} {mode} held_by={sorted(self.holders)}>"


class LockTable:
    """All file locks of the control node (file-level granules only)."""

    def __init__(self, num_files: int) -> None:
        if num_files < 1:
            raise ValueError(f"num_files must be >= 1, got {num_files}")
        self.num_files = num_files
        self._locks = [FileLock(f) for f in range(num_files)]

    def _lock(self, file_id: int) -> FileLock:
        if not 0 <= file_id < self.num_files:
            raise ValueError(f"file {file_id} out of range")
        return self._locks[file_id]

    # -- queries --------------------------------------------------------------

    def is_compatible(self, file_id: int, mode: AccessMode) -> bool:
        """Would granting (file, mode) conflict with current holders?"""
        return self._lock(file_id).compatible(mode)

    def holders(self, file_id: int) -> typing.Set[int]:
        """Transaction ids currently holding the file."""
        return set(self._lock(file_id).holders)

    def mode_of(self, file_id: int) -> typing.Optional[AccessMode]:
        """Mode the file is held in, or None when free."""
        return self._lock(file_id).mode

    def holds(self, txn_id: int, file_id: int) -> bool:
        return txn_id in self._lock(file_id).holders

    def held_count(self) -> int:
        """Number of files currently locked by anyone (table size)."""
        return sum(1 for lock in self._locks if lock.holders)

    def files_held_by(self, txn_id: int) -> typing.List[int]:
        """All files the transaction holds (any mode)."""
        return [
            lock.file_id for lock in self._locks if txn_id in lock.holders
        ]

    # -- mutations --------------------------------------------------------------

    def grant(self, txn_id: int, file_id: int, mode: AccessMode) -> None:
        """Record the grant; callers must have checked compatibility."""
        lock = self._lock(file_id)
        if txn_id in lock.holders:
            raise LockError(
                f"T{txn_id} already holds F{file_id}; upgrades are not modelled"
            )
        if not lock.compatible(mode):
            raise LockError(
                f"incompatible grant of F{file_id}:{mode} to T{txn_id} "
                f"(held {lock.mode} by {sorted(lock.holders)})"
            )
        if lock.is_free:
            lock.mode = mode
        elif mode.is_write:  # pragma: no cover - excluded by compatible()
            raise LockError("X grant on a held lock")
        lock.holders.add(txn_id)

    def release(self, txn_id: int, file_id: int) -> None:
        """Release one file held by ``txn_id``."""
        lock = self._lock(file_id)
        if txn_id not in lock.holders:
            raise LockError(f"T{txn_id} does not hold F{file_id}")
        lock.holders.remove(txn_id)
        if lock.is_free:
            lock.mode = None

    def release_all(self, txn_id: int) -> typing.List[int]:
        """Release every file held by ``txn_id``; returns the files freed."""
        released = self.files_held_by(txn_id)
        for file_id in released:
            self.release(txn_id, file_id)
        return released
