"""Scheduler registry: name -> factory.

The six schedulers of the paper (plus the C2PL+M alias and parameterised
LOW variants) are constructed through this registry so experiments and
benchmarks can sweep them by name.
"""

from __future__ import annotations

import typing

from repro.core.asl import ASLScheduler
from repro.core.base import Scheduler
from repro.core.c2pl import C2PLScheduler
from repro.core.gow import GOWScheduler
from repro.core.low import LOWScheduler
from repro.core.lowlb import LOWLBScheduler
from repro.core.nodc import NODCScheduler
from repro.core.opt import OPTScheduler
from repro.core.twopl import TwoPLScheduler
from repro.des import Environment
from repro.machine.config import MachineConfig
from repro.machine.control_node import ControlNode

SchedulerFactory = typing.Callable[
    [Environment, MachineConfig, ControlNode], Scheduler
]

#: names in the paper's reporting order
PAPER_SCHEDULERS = ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT")

_FACTORIES: typing.Dict[str, SchedulerFactory] = {}


def register(name: str, factory: SchedulerFactory) -> None:
    """Add (or replace) a named scheduler factory."""
    _FACTORIES[name.upper()] = factory


def available() -> typing.List[str]:
    """All registered scheduler names."""
    return sorted(_FACTORIES)


def create(
    name: str,
    env: Environment,
    config: MachineConfig,
    control_node: ControlNode,
) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    ``LOW(K=n)`` is accepted for arbitrary K, e.g. ``LOW(K=1)``.
    """
    key = name.upper().replace(" ", "")
    if key.startswith("LOW(K=") and key.endswith(")"):
        k = int(key[len("LOW(K=") : -1])
        scheduler = LOWScheduler(env, config, control_node, k=k)
        scheduler.name = f"LOW(K={k})"
        return scheduler
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {available()}"
        )
    return _FACTORIES[key](env, config, control_node)


register("NODC", NODCScheduler)
register("ASL", ASLScheduler)
register("GOW", GOWScheduler)
register("LOW", lambda env, cfg, cn: LOWScheduler(env, cfg, cn, k=2))
register("C2PL", C2PLScheduler)
# C2PL+M is C2PL run under a finite MPL; the harness picks the MPL.
register("C2PL+M", C2PLScheduler)
register("OPT", OPTScheduler)
# Plain strict 2PL (deadlock detection + youngest-victim restart): the
# baseline the paper dismisses up front; included for ablations.
register("2PL", TwoPLScheduler)
# Resource-aware LOW (the paper's "further work"): E() weights include
# current DPN scan backlog.
register("LOW-LB", lambda env, cfg, cn: LOWLBScheduler(env, cfg, cn, k=2))
