"""Scheduler registry: name -> (factory, family, description).

The six schedulers of the paper (plus the C2PL+M alias, the extension
variants, and the modern families from :mod:`repro.schedulers.modern`)
are constructed through this registry so experiments, benchmarks and the
arena can sweep them by name.

Families group the roster for reporting:

``paper``
    The 1991 line-up the paper compares (Section 4).
``extension``
    Variants this repository adds for ablations (plain 2PL,
    resource-aware LOW).
``modern``
    Post-1991 scheduler families (DGCC, conflict-aware reordering,
    conflict-prediction admission), registered by
    :mod:`repro.schedulers.modern` on import.
"""

from __future__ import annotations

import typing

from repro.core.asl import ASLScheduler
from repro.core.base import Scheduler
from repro.core.c2pl import C2PLScheduler
from repro.core.gow import GOWScheduler
from repro.core.low import LOWScheduler
from repro.core.lowlb import LOWLBScheduler
from repro.core.nodc import NODCScheduler
from repro.core.opt import OPTScheduler
from repro.core.twopl import TwoPLScheduler
from repro.des import Environment
from repro.machine.config import MachineConfig
from repro.machine.control_node import ControlNode

SchedulerFactory = typing.Callable[
    [Environment, MachineConfig, ControlNode], Scheduler
]

#: names in the paper's reporting order
PAPER_SCHEDULERS = ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT")

#: the modern families, in arena reporting order
MODERN_SCHEDULERS = ("DGCC", "CAR", "PRED")

#: family tags accepted by :func:`register`
FAMILIES = ("paper", "extension", "modern")


class SchedulerEntry(typing.NamedTuple):
    """One registered scheduler: how to build it and how to present it.

    ``grid`` marks entries that experiment sweeps should include by
    default; aliases that need special harness treatment (C2PL+M's MPL
    sweep) register with ``grid=False``.
    """

    name: str
    factory: SchedulerFactory
    family: str
    description: str
    grid: bool = True


_REGISTRY: typing.Dict[str, SchedulerEntry] = {}


def register(
    name: str,
    factory: SchedulerFactory,
    *,
    family: str = "paper",
    description: str = "",
    grid: bool = True,
    replace: bool = False,
) -> None:
    """Add a named scheduler factory.

    Duplicate names raise ``ValueError`` (pass ``replace=True`` to
    overwrite deliberately, e.g. when a test swaps in a stub).
    """
    key = name.upper()
    if family not in FAMILIES:
        raise ValueError(
            f"unknown family {family!r} for scheduler {name!r}; "
            f"expected one of {FAMILIES}"
        )
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"scheduler {name!r} is already registered "
            f"(as {_REGISTRY[key].name!r}); pass replace=True to overwrite"
        )
    _REGISTRY[key] = SchedulerEntry(
        name.upper(), factory, family, description, grid
    )


def unregister(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name.upper(), None)


def available() -> typing.List[str]:
    """All registered scheduler names."""
    return sorted(_REGISTRY)


def entries() -> typing.List[SchedulerEntry]:
    """All registrations, grouped paper -> extension -> modern and
    alphabetical within each family."""
    rank = {family: index for index, family in enumerate(FAMILIES)}
    return sorted(
        _REGISTRY.values(), key=lambda e: (rank[e.family], e.name)
    )


def family_of(name: str) -> str:
    """The family tag of a registered scheduler."""
    return _entry(name).family


def grid_schedulers(
    families: typing.Sequence[str] = ("paper", "modern"),
) -> typing.Tuple[str, ...]:
    """The experiment-sweep line-up, resolved from the registry.

    Grid-eligible registrations from the requested families, ordered
    paper reporting order first, then the arena order, then
    alphabetically for any later registrations.
    """
    preferred = {
        name: index
        for index, name in enumerate(PAPER_SCHEDULERS + MODERN_SCHEDULERS)
    }
    rank = {family: index for index, family in enumerate(FAMILIES)}
    chosen = [e for e in entries() if e.grid and e.family in families]
    chosen.sort(
        key=lambda e: (
            rank[e.family],
            preferred.get(e.name, len(preferred)),
            e.name,
        )
    )
    return tuple(e.name for e in chosen)


def _entry(name: str) -> SchedulerEntry:
    key = name.upper().replace(" ", "")
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {available()}"
        )
    return _REGISTRY[key]


def _parameterised(
    key: str,
    env: Environment,
    config: MachineConfig,
    control_node: ControlNode,
) -> typing.Optional[Scheduler]:
    """Build ``NAME(P=value)`` forms; None when ``key`` is not one."""
    if key.startswith("LOW(K=") and key.endswith(")"):
        k = int(key[len("LOW(K=") : -1])
        scheduler: Scheduler = LOWScheduler(env, config, control_node, k=k)
        scheduler.name = f"LOW(K={k})"
        return scheduler
    if key.startswith("DGCC(B=") and key.endswith(")"):
        from repro.schedulers.modern.dgcc import DGCCScheduler

        batch = int(key[len("DGCC(B=") : -1])
        scheduler = DGCCScheduler(env, config, control_node, batch_size=batch)
        scheduler.name = f"DGCC(B={batch})"
        return scheduler
    if key.startswith("CAR(Q=") and key.endswith(")"):
        from repro.schedulers.modern.reorder import ConflictReorderScheduler

        queues = int(key[len("CAR(Q=") : -1])
        scheduler = ConflictReorderScheduler(
            env, config, control_node, num_queues=queues
        )
        scheduler.name = f"CAR(Q={queues})"
        return scheduler
    if key.startswith("PRED(T=") and key.endswith(")"):
        from repro.schedulers.modern.predict import ConflictPredictScheduler

        threshold = float(key[len("PRED(T=") : -1])
        scheduler = ConflictPredictScheduler(
            env, config, control_node, threshold=threshold
        )
        scheduler.name = f"PRED(T={threshold:g})"
        return scheduler
    return None


def create(
    name: str,
    env: Environment,
    config: MachineConfig,
    control_node: ControlNode,
) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    Parameterised forms are accepted for the tunable policies:
    ``LOW(K=n)``, ``DGCC(B=n)``, ``CAR(Q=n)`` and ``PRED(T=x)``,
    e.g. ``LOW(K=1)`` or ``DGCC(B=16)``.
    """
    key = name.upper().replace(" ", "")
    scheduler = _parameterised(key, env, config, control_node)
    if scheduler is not None:
        return scheduler
    return _entry(key).factory(env, config, control_node)


register(
    "NODC", NODCScheduler,
    description="No concurrency control: full-batch serial execution",
)
register(
    "ASL", ASLScheduler,
    description="All locks at start; start only when every lock is free",
)
register(
    "GOW", GOWScheduler,
    description="Greedy on WTPG: admit only chain-form conflict patterns",
)
register(
    "LOW", lambda env, cfg, cn: LOWScheduler(env, cfg, cn, k=2),
    description="Least-overlapping-first on WTPG with K-conflict "
    "admission (K=2)",
)
register(
    "C2PL", C2PLScheduler,
    description="Cautious 2PL: delay any grant that predicts a deadlock",
)
# C2PL+M is C2PL run under a finite MPL; the harness picks the MPL, so
# plain sweeps must not pick it up (grid=False).
register(
    "C2PL+M", C2PLScheduler,
    description="C2PL under the best finite multiprogramming level",
    grid=False,
)
register(
    "OPT", OPTScheduler,
    description="Optimistic execution with backward validation at commit",
)
# Plain strict 2PL (deadlock detection + youngest-victim restart): the
# baseline the paper dismisses up front; included for ablations.
register(
    "2PL", TwoPLScheduler,
    family="extension",
    description="Strict 2PL with deadlock detection and youngest-victim "
    "restart",
)
# Resource-aware LOW (the paper's "further work"): E() weights include
# current DPN scan backlog.
register(
    "LOW-LB", lambda env, cfg, cn: LOWLBScheduler(env, cfg, cn, k=2),
    family="extension",
    description="Resource-aware LOW: E(q) weights include DPN scan "
    "backlog (K=2)",
)
