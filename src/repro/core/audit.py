"""Serializability auditing of simulated histories.

The auditor records every granted file access and every commit, builds
the serialization graph over *committed* transactions (conflicting
accesses to a common file ordered by time) and checks it is acyclic.
The test suite runs it against every scheduler except NODC, which is
intentionally non-serializable.

For locking schedulers writes happen in place while the lock is held, so
a write's timestamp is its scan time.  For optimistic execution writes
live in a private workspace and only become visible at commit; construct
the auditor with ``deferred_writes=True`` so write timestamps are the
writer's commit time.
"""

from __future__ import annotations

import typing

from repro.txn.step import AccessMode


class _Access(typing.NamedTuple):
    txn_id: int
    file_id: int
    mode: AccessMode
    time: float


class SerializabilityAuditor:
    """Collects a history and checks conflict-serializability."""

    def __init__(self, deferred_writes: bool = False) -> None:
        self.deferred_writes = deferred_writes
        self._accesses: typing.List[_Access] = []
        self._commit_times: typing.Dict[int, float] = {}

    # -- recording ------------------------------------------------------------

    def record_access(
        self, txn_id: int, file_id: int, mode: AccessMode, time: float
    ) -> None:
        """One granted scan of a file."""
        self._accesses.append(_Access(txn_id, file_id, mode, time))

    def record_commit(self, txn_id: int, time: float) -> None:
        """Transaction committed (aborted ones are simply never recorded)."""
        if txn_id in self._commit_times:
            raise ValueError(f"T{txn_id} committed twice")
        self._commit_times[txn_id] = time

    @property
    def committed_count(self) -> int:
        return len(self._commit_times)

    # -- graph construction --------------------------------------------------------

    def _effective_time(self, access: _Access) -> float:
        if self.deferred_writes and access.mode.is_write:
            return self._commit_times[access.txn_id]
        return access.time

    def serialization_graph(self) -> typing.Dict[int, typing.Set[int]]:
        """Adjacency of the conflict graph over committed transactions.

        Edge Ti -> Tj when they conflict on a file and Ti's (first
        conflicting) access precedes Tj's.
        """
        committed = set(self._commit_times)
        # first access per (txn, file, is_write) keeps the graph small
        first: typing.Dict[
            typing.Tuple[int, int, bool], _Access
        ] = {}
        for access in self._accesses:
            if access.txn_id not in committed:
                continue
            key = (access.txn_id, access.file_id, access.mode.is_write)
            if key not in first or access.time < first[key].time:
                first[key] = access
        by_file: typing.Dict[int, typing.List[_Access]] = {}
        for access in first.values():
            by_file.setdefault(access.file_id, []).append(access)

        graph: typing.Dict[int, typing.Set[int]] = {
            t: set() for t in committed
        }
        for accesses in by_file.values():
            for i, a in enumerate(accesses):
                for b in accesses[i + 1 :]:
                    if a.txn_id == b.txn_id:
                        continue
                    if not a.mode.conflicts_with(b.mode):
                        continue
                    ta, tb = self._effective_time(a), self._effective_time(b)
                    if ta < tb:
                        graph[a.txn_id].add(b.txn_id)
                    elif tb < ta:
                        graph[b.txn_id].add(a.txn_id)
                    else:  # simultaneous conflicting accesses: order by commit
                        if (
                            self._commit_times[a.txn_id]
                            < self._commit_times[b.txn_id]
                        ):
                            graph[a.txn_id].add(b.txn_id)
                        else:
                            graph[b.txn_id].add(a.txn_id)
        return graph

    def is_serializable(self) -> bool:
        """True when the serialization graph is acyclic."""
        return self.find_cycle() is None

    def find_cycle(self) -> typing.Optional[typing.List[int]]:
        """A cycle of transaction ids, or None when serializable."""
        graph = self.serialization_graph()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in graph}
        parent: typing.Dict[int, int] = {}

        def visit(node: int) -> typing.Optional[typing.List[int]]:
            colour[node] = GREY
            for nxt in graph[node]:
                if colour[nxt] == GREY:
                    cycle = [nxt, node]
                    current = node
                    while current != nxt:
                        current = parent[current]
                        cycle.append(current)
                    cycle.reverse()
                    return cycle
                if colour[nxt] == WHITE:
                    parent[nxt] = node
                    found = visit(nxt)
                    if found:
                        return found
            colour[node] = BLACK
            return None

        for node in graph:
            if colour[node] == WHITE:
                found = visit(node)
                if found:
                    return found
        return None
