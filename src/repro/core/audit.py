"""Serializability auditing of simulated histories.

The auditor records every granted file access and every commit, builds
the serialization graph over *committed* transactions (conflicting
accesses to a common file ordered by time) and checks it is acyclic.
The test suite runs it against every scheduler except NODC, which is
intentionally non-serializable.

For locking schedulers writes happen in place while the lock is held, so
a write's timestamp is its scan time.  For optimistic execution writes
live in a private workspace and only become visible at commit; construct
the auditor with ``deferred_writes=True`` so write timestamps are the
writer's commit time.

Memory over long runs.  The raw history grows with every access, so a
production-horizon run would accumulate it unboundedly (the same hazard
``Tally.keep_samples`` caps for response-time samples).  Passing
``compact_interval=N`` folds the *committed prefix* away every N
recorded accesses: transactions that committed before any live
transaction's first access can never gain an incoming edge from live or
future transactions (every later access is later in time), so any cycle
they participate in already exists at compaction time.  The compactor
checks the graph once, freezes a found cycle permanently, and drops the
closed transactions' accesses.  Verdicts are identical to the
uncompacted auditor's; only memory changes.
"""

from __future__ import annotations

import typing

from repro.txn.step import AccessMode


class _Access(typing.NamedTuple):
    txn_id: int
    file_id: int
    mode: AccessMode
    time: float


class SerializabilityAuditor:
    """Collects a history and checks conflict-serializability."""

    def __init__(
        self,
        deferred_writes: bool = False,
        compact_interval: typing.Optional[int] = None,
    ) -> None:
        if compact_interval is not None and compact_interval < 1:
            raise ValueError(
                f"compact_interval must be >= 1 or None, got {compact_interval}"
            )
        self.deferred_writes = deferred_writes
        self.compact_interval = compact_interval
        self._accesses: typing.List[_Access] = []
        self._commit_times: typing.Dict[int, float] = {}
        self._aborted: typing.Set[int] = set()
        self._accesses_since_compact = 0
        #: committed transactions folded away by compaction
        self._compacted_commits = 0
        #: a cycle found among transactions that were later compacted
        #: away -- the verdict is permanently non-serializable
        self._frozen_cycle: typing.Optional[typing.List[int]] = None

    # -- recording ------------------------------------------------------------

    def record_access(
        self, txn_id: int, file_id: int, mode: AccessMode, time: float
    ) -> None:
        """One granted scan of a file."""
        self._accesses.append(_Access(txn_id, file_id, mode, time))
        if self.compact_interval is not None:
            self._accesses_since_compact += 1
            if self._accesses_since_compact >= self.compact_interval:
                self.compact()

    def record_commit(self, txn_id: int, time: float) -> None:
        """Transaction committed (aborted ones are simply never recorded)."""
        if txn_id in self._commit_times:
            raise ValueError(f"T{txn_id} committed twice")
        self._commit_times[txn_id] = time

    def record_abort(self, txn_id: int) -> None:
        """Transaction aborted: its accesses never join the graph.

        Without this hint an aborted attempt would look like a live
        transaction forever and pin the compaction watermark.
        """
        self._aborted.add(txn_id)

    @property
    def committed_count(self) -> int:
        return len(self._commit_times) + self._compacted_commits

    # -- compaction -----------------------------------------------------------

    @property
    def retained_accesses(self) -> int:
        """Accesses currently buffered (memory diagnostic / tests)."""
        return len(self._accesses)

    def compact(self) -> int:
        """Fold the committed prefix out of the buffered history.

        Returns the number of transactions compacted away.  Safe at any
        time: a committed transaction is *closed* once every one of its
        access times (and, with deferred writes, its commit time) lies
        before the watermark -- the earliest first-access of any live
        (uncommitted, unaborted) transaction.  No live or future access
        can then precede a closed access, so edges *into* the closed set
        can never appear again; cycles through it either already exist
        (found and frozen here) or never will.
        """
        self._accesses_since_compact = 0
        # aborted attempts never enter the graph: drop their accesses
        if self._aborted:
            self._accesses = [
                a for a in self._accesses if a.txn_id not in self._aborted
            ]
            # an aborted attempt never records again (restarts get fresh
            # ids), so the set itself can be dropped once acted on
            self._aborted.clear()
        first_access: typing.Dict[int, float] = {}
        last_access: typing.Dict[int, float] = {}
        for access in self._accesses:
            if access.txn_id not in first_access:
                first_access[access.txn_id] = access.time
            last_access[access.txn_id] = max(
                last_access.get(access.txn_id, access.time), access.time
            )
        live = [
            t for t in first_access
            if t not in self._commit_times and t not in self._aborted
        ]
        watermark = min(
            (first_access[t] for t in live), default=float("inf")
        )
        closed = {
            t
            for t, commit_time in self._commit_times.items()
            if commit_time < watermark
            and last_access.get(t, commit_time) < watermark
        }
        if not closed:
            return 0
        # any cycle touching the closed prefix is fully visible now
        if self._frozen_cycle is None:
            self._frozen_cycle = self._find_cycle_now()
        self._accesses = [
            a for a in self._accesses if a.txn_id not in closed
        ]
        for txn_id in closed:
            del self._commit_times[txn_id]
        self._compacted_commits += len(closed)
        return len(closed)

    # -- graph construction --------------------------------------------------------

    def _effective_time(self, access: _Access) -> float:
        if self.deferred_writes and access.mode.is_write:
            return self._commit_times[access.txn_id]
        return access.time

    def serialization_graph(self) -> typing.Dict[int, typing.Set[int]]:
        """Adjacency of the conflict graph over committed transactions.

        Edge Ti -> Tj when they conflict on a file and Ti's (first
        conflicting) access precedes Tj's.
        """
        committed = set(self._commit_times)
        # first access per (txn, file, is_write) keeps the graph small
        first: typing.Dict[
            typing.Tuple[int, int, bool], _Access
        ] = {}
        for access in self._accesses:
            if access.txn_id not in committed:
                continue
            key = (access.txn_id, access.file_id, access.mode.is_write)
            if key not in first or access.time < first[key].time:
                first[key] = access
        by_file: typing.Dict[int, typing.List[_Access]] = {}
        for access in first.values():
            by_file.setdefault(access.file_id, []).append(access)

        graph: typing.Dict[int, typing.Set[int]] = {
            t: set() for t in committed
        }
        for accesses in by_file.values():
            for i, a in enumerate(accesses):
                for b in accesses[i + 1 :]:
                    if a.txn_id == b.txn_id:
                        continue
                    if not a.mode.conflicts_with(b.mode):
                        continue
                    ta, tb = self._effective_time(a), self._effective_time(b)
                    if ta < tb:
                        graph[a.txn_id].add(b.txn_id)
                    elif tb < ta:
                        graph[b.txn_id].add(a.txn_id)
                    else:  # simultaneous conflicting accesses: order by commit
                        if (
                            self._commit_times[a.txn_id]
                            < self._commit_times[b.txn_id]
                        ):
                            graph[a.txn_id].add(b.txn_id)
                        else:
                            graph[b.txn_id].add(a.txn_id)
        return graph

    def is_serializable(self) -> bool:
        """True when the serialization graph is acyclic."""
        return self.find_cycle() is None

    def find_cycle(self) -> typing.Optional[typing.List[int]]:
        """A cycle of transaction ids, or None when serializable.

        A cycle frozen by an earlier compaction is final: those
        transactions' accesses are gone, but the history already proved
        itself non-serializable.
        """
        if self._frozen_cycle is not None:
            return self._frozen_cycle
        return self._find_cycle_now()

    def _find_cycle_now(self) -> typing.Optional[typing.List[int]]:
        """Cycle search over the currently buffered history."""
        graph = self.serialization_graph()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in graph}
        parent: typing.Dict[int, int] = {}

        def visit(node: int) -> typing.Optional[typing.List[int]]:
            colour[node] = GREY
            for nxt in graph[node]:
                if colour[nxt] == GREY:
                    cycle = [nxt, node]
                    current = node
                    while current != nxt:
                        current = parent[current]
                        cycle.append(current)
                    cycle.reverse()
                    return cycle
                if colour[nxt] == WHITE:
                    parent[nxt] = node
                    found = visit(nxt)
                    if found:
                        return found
            colour[node] = BLACK
            return None

        for node in graph:
            if colour[node] == WHITE:
                found = visit(node)
                if found:
                    return found
        return None
