"""LOW: the Locally-Optimized WTPG scheduler (Section 3.3, Figs. 5-7).

LOW grants a lock-request q only when q causes the smallest degree of
contention *in the current state*: it computes E(q) -- the critical path
of the WTPG after hypothetically granting q, with remaining conflict
edges ignored and deadlock mapping to infinity -- and grants q iff
``E(q) <= E(p)`` for every declared access p conflicting with q on the
same granule (the set C(q)).

The size of C(q) is capped at K (the paper uses K = 2): a new transaction
is admitted only while no access declaration's conflict set would exceed
K.  Even at K = 1 this allows non-chain-form WTPGs, which is why LOW
runs more transactions than GOW on hot sets.

CPU cost: every E() evaluation costs ``kwtpgtime`` (10 ms) on the CN, so
one request evaluation costs ``(1 + |C(q)|) * kwtpgtime``.
"""

from __future__ import annotations

import math
import typing

from repro.core.base import Decision, Scheduler, WTPGSchedulerMixin
from repro.core.wtpg import WTPG
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class LOWScheduler(WTPGSchedulerMixin, Scheduler):
    """K-conflict locally-optimised WTPG scheduler."""

    name = "LOW"

    def __init__(self, *args: typing.Any, k: int = 2, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        if k < 0:
            raise ValueError(f"K must be >= 0, got {k}")
        self.k = k
        self.wtpg = WTPG()

    # -- admission: the K-conflict limit ----------------------------------------

    def _conflict_counts_ok(self, txn: BatchTransaction) -> bool:
        """Would admitting ``txn`` keep every |C(q)| <= K?

        For each file, the declared accesses conflicting with an access p
        are those of other active transactions whose mode clashes with
        p's.  Admission must keep the new transaction's own sets and every
        existing set within K.  The WTPG's per-file declaration indexes
        answer each set in O(declarers of the file) instead of a scan
        over every active transaction.
        """
        wtpg = self.wtpg
        for file_id in txn.files:
            mode = txn.mode_for(file_id)
            conflicting = wtpg.declared_conflicters(
                file_id, mode, exclude=txn.txn_id
            )
            # the newcomer's own C(q) on this file
            if len(conflicting) > self.k:
                return False
            # each existing conflicting access gains one conflict
            count = wtpg.declared_conflict_count
            for other_id in conflicting:
                if count(other_id, file_id) + 1 > self.k:
                    return False
        return True

    def _conflict_count(self, txn_id: int, file_id: int) -> int:
        """|C(p)| for the access of ``txn_id`` on ``file_id`` right now."""
        return self.wtpg.declared_conflict_count(txn_id, file_id)

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        ok = self._conflict_counts_ok(txn)
        if self._trace.enabled:
            self._trace.emit(
                self.env.now, "sched.kconflict", txn=txn.txn_id, ok=ok
            )
        if not ok:
            return False
        self._register_in_wtpg(txn)
        return True
        yield  # pragma: no cover - generator marker

    # -- lock requests: Fig. 7 -----------------------------------------------------

    def _conflicting_declarations(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.List[int]:
        """C(q): ids of active transactions whose declared access to the
        granule conflicts with q (excluding current lock holders, whose
        access already happened -- against them q is simply blocked)."""
        opponents = self.wtpg.declared_conflicters(
            file_id, mode, exclude=txn.txn_id
        )
        opponents -= self.lock_table.holders(file_id)
        return sorted(opponents)

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        # Phase 1: blocked by a held lock? (no E computation, no CPU cost)
        if not self.lock_table.is_compatible(file_id, mode):
            return Decision.BLOCK
        # Pay for E(q) plus one E(p) per conflicting declaration up front;
        # the decision itself must be atomic (no yields) because the CN
        # CPU wait can reorder scheduler state under us.
        evaluations = 1 + len(
            self._conflicting_declarations(txn, file_id, mode)
        )
        yield from self.control_node.consume(
            evaluations * self.config.kwtpgtime_ms, "cc-low"
        )
        if not self.lock_table.is_compatible(file_id, mode):
            return Decision.BLOCK  # lock taken while we computed
        # Phase 2: E(q); deadlock delays q.
        e_q = self.wtpg.hypothetical_grant_critical_path(txn.txn_id, file_id)
        if math.isinf(e_q):
            if self._trace.enabled:
                self._trace.emit(
                    self.env.now, "sched.e_eval", txn=txn.txn_id,
                    file=file_id, e_q=e_q, granted=False,
                )
            return Decision.DELAY
        # Phase 3: grant only if E(q) <= E(p) for every p in C(q).
        for other_id in self._conflicting_declarations(txn, file_id, mode):
            e_p = self.wtpg.hypothetical_grant_critical_path(other_id, file_id)
            if e_q > e_p:
                if self._trace.enabled:
                    self._trace.emit(
                        self.env.now, "sched.e_eval", txn=txn.txn_id,
                        file=file_id, e_q=e_q, granted=False,
                    )
                return Decision.DELAY
        if self._trace.enabled:
            self._trace.emit(
                self.env.now, "sched.e_eval", txn=txn.txn_id,
                file=file_id, e_q=e_q, granted=True,
            )
        # Granted; Phase 4 fixes newly determined precedence edges.
        self._grant_lock(txn, file_id, mode)
        applied = self.wtpg.grant(txn.txn_id, file_id)
        if self._trace.enabled:
            self._emit_wtpg_fixes(applied)
        return Decision.GRANT

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        self._deregister_from_wtpg(txn)
        return
        yield  # pragma: no cover - generator marker
