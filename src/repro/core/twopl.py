"""Strict two-phase locking with deadlock detection (extra baseline).

Not one of the paper's six schedulers: the paper dismisses "the
traditional two-phase locking protocol" up front because chains of
blocking cripple it on batch workloads, and evaluates the *cautious*
variant (C2PL) instead.  This implementation makes that dismissed
baseline measurable: locks are requested at first need with no
prediction at all; a waits-for cycle is resolved by aborting the
youngest transaction in the cycle, which restarts from scratch.

Each lock-request evaluation pays ``ddtime`` (the deadlock-detection
cost C2PL is charged in Table 1).
"""

from __future__ import annotations

import typing

from repro.core.base import Decision, Scheduler
from repro.obs.timeseries import gauge, size_hist
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class TwoPLScheduler(Scheduler):
    """Plain strict 2PL; deadlocks broken by aborting the youngest."""

    name = "2PL"

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        #: waits-for edges: waiter txn id -> ids of the holders it waits on
        self._waits_for: typing.Dict[int, typing.Set[int]] = {}
        #: transactions told to abort at their next evaluation
        self._doomed: typing.Set[int] = set()
        #: admission order, used as age for victim selection
        self._admission_order: typing.Dict[int, int] = {}
        self._admitted = 0

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        self._admitted += 1
        self._admission_order[txn.txn_id] = self._admitted
        return True
        yield  # pragma: no cover - generator marker

    def is_doomed(self, txn: BatchTransaction) -> bool:
        """True when deadlock resolution picked this transaction as the
        victim; the executor must abort and restart it."""
        return txn.txn_id in self._doomed

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        yield from self.control_node.consume(self.config.ddtime_ms, "cc-2pl")
        if txn.txn_id in self._doomed:
            # victim: report DELAY; the executor polls is_doomed() and
            # aborts (acquire would otherwise spin on the dead waiter)
            return Decision.DELAY
        if not self.lock_table.is_compatible(file_id, mode):
            holders = self.lock_table.holders(file_id) - {txn.txn_id}
            self._waits_for[txn.txn_id] = holders
            victim = self._find_deadlock_victim(txn.txn_id)
            if victim is not None:
                self._doomed.add(victim)
                if self._trace.enabled:
                    self._trace.emit(
                        self.env.now, "sched.victim", txn=victim
                    )
                self._notify_all()  # the victim may be parked anywhere
                if victim == txn.txn_id:
                    self._waits_for.pop(txn.txn_id, None)
                    return Decision.DELAY  # next loop pass raises the abort
            return Decision.BLOCK
        self._waits_for.pop(txn.txn_id, None)
        self._grant_lock(txn, file_id, mode)
        return Decision.GRANT

    def _doomed_check(self, txn: BatchTransaction) -> bool:
        return txn.txn_id in self._doomed

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Base catalogue plus the waits-for graph's live edge count."""
        probes = super().timeseries_probes()
        probes["sched.waits_for_edges"] = {
            "probe": gauge(
                lambda: sum(len(v) for v in self._waits_for.values())
            ),
            "unit": "edges",
            "hist": size_hist(),
        }
        return probes

    def _find_deadlock_victim(self, start: int) -> typing.Optional[int]:
        """DFS the waits-for graph from ``start``; on a cycle through
        ``start``, return the youngest transaction on it.

        Stack entries carry their path as a cons chain (node, parent
        entry) instead of a copied list, so a push is O(1); the chain is
        materialised only for the one entry that closes the cycle.  The
        push order -- and therefore which cycle is found first -- is
        identical to the list-copying version.
        """
        waits_for = self._waits_for
        root = (start, None)
        stack: typing.List[typing.Tuple[int, typing.Optional[tuple]]] = [
            (h, root) for h in waits_for.get(start, ())
        ]
        visited: typing.Set[int] = set()
        while stack:
            node, parent = stack.pop()
            if node == start:
                # the cycle is the path minus the final repeat of start
                cycle = []
                entry: typing.Optional[tuple] = parent
                while entry is not None:
                    cycle.append(entry[0])
                    entry = entry[1]
                return max(
                    cycle, key=lambda t: self._admission_order.get(t, 0)
                )
            if node in visited:
                continue
            visited.add(node)
            entry = (node, parent)
            for nxt in waits_for.get(node, ()):
                stack.append((nxt, entry))
        return None

    def _cleanup(self, txn: BatchTransaction) -> None:
        self._waits_for.pop(txn.txn_id, None)
        self._doomed.discard(txn.txn_id)
        self._admission_order.pop(txn.txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn.txn_id)

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        self._cleanup(txn)
        return
        yield  # pragma: no cover - generator marker

    def _on_abort(self, txn: BatchTransaction) -> typing.Generator:
        self._cleanup(txn)
        return
        yield  # pragma: no cover - generator marker
