"""Chain-form WTPGs and the optimal serializable order for GOW.

GOW (Section 3.2) keeps the WTPG in *chain form*: the undirected conflict
structure over general transactions is a disjoint union of simple paths.
Under that restriction the full serializable order W minimising the
critical path is computable in low polynomial time (the paper cites
O(n^2) from ref. [13]).

The algorithm here:

1. Orienting the edges of a path graph never creates a directed cycle, so
   every full orientation is serializable; the objective is purely the
   critical path (the longest T0-to-Tf path).
2. In an oriented path, directed paths are exactly the maximal
   same-direction *runs*; the value of a run is the maximum over its start
   nodes c of ``w0(c) + (sum of run-edge weights from c onward)``.
3. Every achievable critical-path value is therefore the value of some
   directed contiguous sub-path -- an O(n^2) candidate set.  We binary
   search the candidates with an O(n * pareto) feasibility DP
   ("is there an orientation whose every run value <= theta?") and then
   reconstruct one optimal orientation greedily, edge by edge.

Already-determined precedence edges participate as direction-constrained
edges.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import typing

from repro.core.wtpg import WTPG

#: direction labels: an edge between positions i and i+1 is oriented
#: RIGHT when node_i -> node_{i+1}, LEFT when node_{i+1} -> node_i.
RIGHT = "right"
LEFT = "left"

_DIRECTIONS = frozenset({RIGHT, LEFT})


class ChainEdge:
    """One edge of a chain component, in path position order.

    A plain slotted class rather than a frozen dataclass: components are
    rebuilt (weights re-read) on every scheduler decision, so edge
    construction sits on GOW's hot path and the per-field
    ``object.__setattr__`` of a frozen dataclass is measurable.
    """

    __slots__ = (
        "left_node", "right_node", "weight_right", "weight_left", "allowed"
    )

    def __init__(
        self,
        left_node: int,
        right_node: int,
        weight_right: float,  # weight when oriented left_node -> right_node
        weight_left: float,  # weight when oriented right_node -> left_node
        allowed: typing.FrozenSet[str],  # subset of {RIGHT, LEFT}
    ) -> None:
        if not allowed:
            raise ValueError("edge must allow at least one direction")
        if not allowed <= _DIRECTIONS:
            raise ValueError(f"bad direction set {allowed!r}")
        self.left_node = left_node
        self.right_node = right_node
        self.weight_right = weight_right
        self.weight_left = weight_left
        self.allowed = allowed

    def __repr__(self) -> str:
        return (
            f"ChainEdge({self.left_node}, {self.right_node}, "
            f"{self.weight_right}, {self.weight_left}, {self.allowed})"
        )


@dataclasses.dataclass
class ChainComponent:
    """A maximal path of the conflict structure: nodes and edges in order."""

    nodes: typing.List[int]
    node_weights: typing.List[float]  # w0 (T0-edge weight) per node
    edges: typing.List[ChainEdge]

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.node_weights):
            raise ValueError("one weight per node required")
        if len(self.edges) != max(0, len(self.nodes) - 1):
            raise ValueError("a path of k nodes has k-1 edges")


class NotChainFormError(ValueError):
    """The conflict structure is not a disjoint union of simple paths."""


# -- chain-form testing ---------------------------------------------------------


def undirected_adjacency(wtpg: WTPG) -> typing.Dict[int, typing.Set[int]]:
    """Conflict + precedence adjacency over general transactions."""
    return {t: wtpg.neighbors(t) for t in wtpg.txn_ids}


def is_union_of_paths(adjacency: typing.Mapping[int, typing.Set[int]]) -> bool:
    """True when every component is a simple path (degree <= 2, acyclic)."""
    if any(len(neigh) > 2 for neigh in adjacency.values()):
        return False
    # Acyclicity of an undirected graph: every component has
    # (#edges == #nodes - 1); with degrees <= 2 that means a path.
    seen: typing.Set[int] = set()
    for start in adjacency:
        if start in seen:
            continue
        nodes: typing.Set[int] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in nodes:
                continue
            nodes.add(node)
            stack.extend(adjacency[node] - nodes)
        seen |= nodes
        edge_count = sum(len(adjacency[n] & nodes) for n in nodes) // 2
        if edge_count != len(nodes) - 1:
            return False
    return True


def keeps_chain_form(
    wtpg: WTPG, new_txn: "typing.Any"
) -> bool:
    """GOW Phase 0: would admitting ``new_txn`` keep the WTPG a chain?

    ``new_txn`` is a BatchTransaction not yet in the graph.  This is the
    from-scratch reference test; it conflicts-scans every active
    transaction and re-verifies the whole structure.
    """
    adjacency = undirected_adjacency(wtpg)
    new_neighbors = {
        other_id
        for other_id in wtpg.txn_ids
        if new_txn.conflicts_with(wtpg.transaction(other_id))
    }
    adjacency[new_txn.txn_id] = set(new_neighbors)
    for other_id in new_neighbors:
        adjacency[other_id] = adjacency[other_id] | {new_txn.txn_id}
    return is_union_of_paths(adjacency)


def keeps_chain_form_incremental(wtpg: WTPG, new_txn: "typing.Any") -> bool:
    """Chain-form admission test for a WTPG that already *is* a chain.

    GOW maintains chain form invariantly (admissions are gated on it,
    removals only split paths, and fixing a conflict edge into a
    precedence edge leaves the undirected structure unchanged), so the
    full :func:`keeps_chain_form` re-verification is redundant at its
    admission sites.  Under that precondition the newcomer keeps the
    chain iff it has at most two conflict neighbours, each of current
    degree <= 1, and -- when there are two -- they lie on *different*
    paths (joining the ends of one path would close a cycle).  Matches
    :func:`keeps_chain_form` exactly on chain-form graphs; O(neighbours
    + one path walk) instead of O(nodes + edges).
    """
    neighbors = wtpg.conflict_opponents(new_txn)
    if len(neighbors) > 2:
        return False
    for other_id in neighbors:
        if wtpg.degree(other_id) >= 2:
            return False
    if len(neighbors) == 2:
        first, second = neighbors
        if _on_same_path(wtpg, first, second):
            return False
    return True


def _on_same_path(wtpg: WTPG, start: int, goal: int) -> bool:
    """Walk the path from endpoint ``start`` looking for ``goal``.

    ``start`` has degree <= 1, so the walk follows the unique path to
    its far end.
    """
    previous, current = None, start
    while True:
        nxt = [n for n in wtpg.neighbors(current) if n != previous]
        if not nxt:
            return False
        previous, current = current, nxt[0]
        if current == goal:
            return True


def extract_components(wtpg: WTPG) -> typing.List[ChainComponent]:
    """Split a chain-form WTPG into ordered path components.

    Raises :class:`NotChainFormError` when the structure is not a union
    of paths.

    The node ordering of the components depends only on the graph
    *structure*, so it is cached on the WTPG keyed by its structure
    version; repeated lock decisions against an unchanged graph skip the
    chain-form re-verification and the component walk entirely.  The
    (drifting) T0 weights and the direction constraints are re-read
    fresh on every call.
    """
    cache = wtpg._chain_cache
    version = wtpg.structure_version
    if cache is not None and cache[0] == version:
        node_orders = cache[1]
    else:
        node_orders = _component_node_orders(wtpg)
        wtpg._chain_cache = (version, node_orders)
    return [_build_component(wtpg, ordered) for ordered in node_orders]


def _component_node_orders(wtpg: WTPG) -> typing.List[typing.List[int]]:
    """Ordered node lists of each path component (structure only)."""
    adjacency = undirected_adjacency(wtpg)
    if not is_union_of_paths(adjacency):
        raise NotChainFormError(f"WTPG is not chain-form: {wtpg!r}")
    node_orders: typing.List[typing.List[int]] = []
    visited: typing.Set[int] = set()
    for start in sorted(adjacency):
        if start in visited:
            continue
        # walk to one end of the path
        end = start
        previous = None
        while True:
            nxt = [n for n in sorted(adjacency[end]) if n != previous]
            if not nxt:
                break
            previous, end = end, nxt[0]
            if end == start:  # defensive; cycles were excluded above
                raise NotChainFormError("cycle found during extraction")
        # walk the path from the end, recording order
        ordered = [end]
        visited.add(end)
        current, previous = end, None
        while True:
            nxt = [n for n in sorted(adjacency[current]) if n != previous]
            if not nxt:
                break
            previous, current = current, nxt[0]
            ordered.append(current)
            visited.add(current)
        node_orders.append(ordered)
    return node_orders


def _build_component(
    wtpg: WTPG, ordered: typing.List[int]
) -> ChainComponent:
    edges = []
    for left, right in zip(ordered, ordered[1:]):
        if wtpg.has_precedence(left, right):
            weight = wtpg.precedence_weight(left, right)
            edges.append(
                ChainEdge(left, right, weight, math.nan, frozenset({RIGHT}))
            )
        elif wtpg.has_precedence(right, left):
            weight = wtpg.precedence_weight(right, left)
            edges.append(
                ChainEdge(left, right, math.nan, weight, frozenset({LEFT}))
            )
        else:
            conflict = wtpg.conflict_edge(left, right)
            edges.append(
                ChainEdge(
                    left,
                    right,
                    conflict.weight(left, right),
                    conflict.weight(right, left),
                    frozenset({RIGHT, LEFT}),
                )
            )
    return ChainComponent(
        nodes=ordered,
        node_weights=[wtpg.t0_weight(t) for t in ordered],
        edges=edges,
    )


# -- optimal orientation of one component ---------------------------------------


def _candidate_values(component: ChainComponent) -> typing.List[float]:
    """All possible run values: directed contiguous sub-path lengths."""
    w0 = component.node_weights
    k = len(component.nodes)
    candidates = set(w0)
    # rightward: start c, over edges c..d-1
    for c in range(k):
        total = w0[c]
        for d in range(c, k - 1):
            weight = component.edges[d].weight_right
            if math.isnan(weight):
                break  # direction not allowed; longer right paths impossible
            total += weight
            candidates.add(total)
    # leftward: start c, descending over edges c-1..d
    for c in range(k - 1, -1, -1):
        total = w0[c]
        for d in range(c - 1, -1, -1):
            weight = component.edges[d].weight_left
            if math.isnan(weight):
                break
            total += weight
            candidates.add(total)
    return sorted(candidates)


def _pareto_reduce(
    states: typing.List[typing.Tuple[float, float]]
) -> typing.List[typing.Tuple[float, float]]:
    """Keep the non-dominated (cum, m) pairs (both coordinates minimal)."""
    states.sort()
    frontier: typing.List[typing.Tuple[float, float]] = []
    best_m = math.inf
    for cum, m in states:
        if m < best_m - 1e-12:
            frontier.append((cum, m))
            best_m = m
    return frontier


def _feasible(
    component: ChainComponent,
    theta: float,
    forced: typing.Optional[typing.Mapping[int, str]] = None,
) -> bool:
    """Is there an orientation with every run value <= theta?

    ``forced`` maps edge index -> direction, narrowing the allowed set
    (used during reconstruction).
    """
    eps = 1e-9
    w0 = component.node_weights
    k = len(component.nodes)
    if k == 1:
        return w0[0] <= theta + eps
    edges = component.edges
    bound = theta + eps

    if forced:
        def allowed(i: int) -> typing.FrozenSet[str]:
            if i in forced:
                direction = forced[i]
                if direction not in edges[i].allowed:
                    return frozenset()
                return frozenset({direction})
            return edges[i].allowed
    else:
        def allowed(i: int) -> typing.FrozenSet[str]:
            return edges[i].allowed

    right_state: typing.Optional[float] = None  # minimal h for an open R run
    left_states: typing.List[typing.Tuple[float, float]] = []  # (cum, m)

    # edge 0
    directions = allowed(0)
    edge = edges[0]
    if RIGHT in directions:
        h = w0[0] + edge.weight_right
        if h < w0[1]:
            h = w0[1]
        if h <= bound:
            right_state = h
    if LEFT in directions:
        cum = edge.weight_left
        m = w0[1] + cum
        if m < w0[0]:
            m = w0[0]
        if m <= bound:
            left_states = [(cum, m)]
    if right_state is None and not left_states:
        return False

    for i in range(1, k - 1):
        edge = edges[i]
        directions = allowed(i)
        new_right: typing.Optional[float] = None
        new_left: typing.List[typing.Tuple[float, float]] = []
        node_w = w0[i + 1]
        if RIGHT in directions:
            weight_right = edge.weight_right
            if right_state is not None:  # continue the R run
                h = right_state + weight_right
                if h < node_w:
                    h = node_w
                if h <= bound:
                    new_right = h
            if left_states:  # close an L run (already <= theta), open R
                h = w0[i] + weight_right
                if h < node_w:
                    h = node_w
                if h <= bound and (new_right is None or h < new_right):
                    new_right = h
        if LEFT in directions:
            weight_left = edge.weight_left
            for cum, m in left_states:  # continue the L run
                cum2 = cum + weight_left
                m2 = node_w + cum2
                if m2 < m:
                    m2 = m
                if m2 <= bound:
                    new_left.append((cum2, m2))
            if right_state is not None:  # close the R run, open L
                cum2 = weight_left
                m2 = node_w + cum2
                if m2 < w0[i]:
                    m2 = w0[i]
                if m2 <= bound:
                    new_left.append((cum2, m2))
            if len(new_left) > 1:
                new_left = _pareto_reduce(new_left)
        right_state, left_states = new_right, new_left
        if right_state is None and not left_states:
            return False
    return True


def solve_component(
    component: ChainComponent,
) -> typing.Tuple[float, typing.List[str]]:
    """Optimal critical-path value and one achieving orientation.

    Returns ``(value, directions)`` with one direction (RIGHT/LEFT) per
    edge.  For a single-node component the direction list is empty.
    """
    if len(component.nodes) == 1:
        return component.node_weights[0], []
    candidates = _candidate_values(component)
    lo, hi = 0, len(candidates) - 1
    if not _feasible(component, candidates[hi]):
        raise RuntimeError(
            "no feasible orientation at the maximal candidate -- "
            "this should be impossible for a path"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if _feasible(component, candidates[mid]):
            hi = mid
        else:
            lo = mid + 1
    theta = candidates[lo]

    # Greedy reconstruction: force each edge RIGHT if feasible, else LEFT.
    forced: typing.Dict[int, str] = {}
    for i in range(len(component.edges)):
        edge_allowed = component.edges[i].allowed
        if len(edge_allowed) == 1:
            forced[i] = next(iter(edge_allowed))
            continue
        forced[i] = RIGHT
        if not _feasible(component, theta, forced):
            forced[i] = LEFT
    assert _feasible(component, theta, forced), "reconstruction failed"
    return theta, [forced[i] for i in range(len(component.edges))]


def brute_force_component(
    component: ChainComponent,
) -> typing.Tuple[float, typing.List[str]]:
    """Exponential reference solver (tests and tiny components only)."""
    best_value = math.inf
    best_dirs: typing.List[str] = []
    edge_choices = [sorted(edge.allowed) for edge in component.edges]
    for directions in itertools.product(*edge_choices):
        value = _orientation_value(component, list(directions))
        if value < best_value:
            best_value = value
            best_dirs = list(directions)
    return best_value, best_dirs


def _orientation_value(
    component: ChainComponent, directions: typing.List[str]
) -> float:
    """Critical-path value of a fully-oriented component."""
    w0 = component.node_weights
    k = len(component.nodes)
    best = max(w0)
    # longest directed path ending at each node, scanning both directions
    dist_right = list(w0)  # longest path ending at i arriving rightward
    for i, direction in enumerate(directions):
        if direction == RIGHT:
            weight = component.edges[i].weight_right
            dist_right[i + 1] = max(
                w0[i + 1], dist_right[i] + weight
            )
            best = max(best, dist_right[i + 1])
    dist_left = list(w0)
    for i in range(k - 2, -1, -1):
        if directions[i] == LEFT:
            weight = component.edges[i].weight_left
            dist_left[i] = max(w0[i], dist_left[i + 1] + weight)
            best = max(best, dist_left[i])
    return best


# -- the full serializable order W ------------------------------------------------


class SerializableOrder:
    """W: an orientation for every edge of a chain-form WTPG."""

    def __init__(
        self,
        orientations: typing.Mapping[typing.FrozenSet[int], typing.Tuple[int, int]],
        critical_path: float,
    ) -> None:
        self._orientations = dict(orientations)
        self.critical_path = critical_path

    def direction(self, i: int, j: int) -> typing.Tuple[int, int]:
        """The (src, dst) W assigns to the edge between i and j."""
        return self._orientations[frozenset((i, j))]

    def consistent_with_fix(self, i: int, j: int) -> bool:
        """Would fixing precedence i -> j agree with W?

        Pairs W never saw (no edge between them) are vacuously
        consistent.
        """
        key = frozenset((i, j))
        if key not in self._orientations:
            return True
        return self._orientations[key] == (i, j)


def compute_optimal_order(wtpg: WTPG) -> SerializableOrder:
    """GOW Phase 2: the full serializable order minimising the critical path.

    Components are independent: the global critical path is the max over
    components, each minimised separately.
    """
    orientations: typing.Dict[
        typing.FrozenSet[int], typing.Tuple[int, int]
    ] = {}
    worst = 0.0
    for component in extract_components(wtpg):
        value, directions = solve_component(component)
        worst = max(worst, value)
        for edge, direction in zip(component.edges, directions):
            pair = frozenset((edge.left_node, edge.right_node))
            if direction == RIGHT:
                orientations[pair] = (edge.left_node, edge.right_node)
            else:
                orientations[pair] = (edge.right_node, edge.left_node)
    return SerializableOrder(orientations, worst)
