"""OPT: optimistic locking (Kung & Robinson, ref. [11]).

Transactions execute without any locks and are certified at commit by
backward validation: T fails when some transaction that committed during
T's lifetime wrote a file T read or wrote.  A failed transaction is
aborted and restarted from scratch -- the only scheduler in the study with
rollback, and the reason it saturates resources under contention
(Section 5.1.3, observation #2).

Table 1 gives no CPU cost for validation, so it is free on the CN by
default (``opt_validate_cost_ms`` overrides for ablations).
"""

from __future__ import annotations

import collections
import typing

from repro.core.base import Decision, Scheduler
from repro.obs.timeseries import gauge, size_hist
from repro.txn.step import AccessMode
from repro.txn.transaction import BatchTransaction


class _CommitRecord(typing.NamedTuple):
    commit_time: float
    write_set: typing.FrozenSet[int]


class OPTScheduler(Scheduler):
    """Optimistic concurrency control with backward validation."""

    name = "OPT"

    def __init__(
        self,
        *args: typing.Any,
        opt_validate_cost_ms: float = 0.0,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.opt_validate_cost_ms = opt_validate_cost_ms
        #: commit records in nondecreasing commit-time order; pruning
        #: pops from the left, validation scans the young suffix from
        #: the right
        self._commit_log: typing.Deque[_CommitRecord] = collections.deque()
        #: insertion order == admission order == nondecreasing time, so
        #: the first entry is always the oldest active start time
        self._start_times: typing.Dict[int, float] = {}

    def _try_admit(self, txn: BatchTransaction) -> typing.Generator:
        self._start_times[txn.txn_id] = self.env.now
        return True
        yield  # pragma: no cover - generator marker

    def _try_acquire(
        self, txn: BatchTransaction, file_id: int, mode: AccessMode
    ) -> typing.Generator:
        return Decision.GRANT
        yield  # pragma: no cover - generator marker

    def acquire(self, txn: BatchTransaction, file_id: int) -> typing.Generator:
        """No locks: every access proceeds immediately."""
        self.stats.grants.increment()
        return
        yield  # pragma: no cover - generator marker

    def validate_at_commit(self, txn: BatchTransaction) -> bool:
        """Backward validation against transactions committed meanwhile."""
        start = self._start_times.get(txn.txn_id)
        if start is None:
            raise RuntimeError(f"T{txn.txn_id} was never admitted")
        touched = txn.read_set | txn.write_set
        # the log is commit-time ordered: walk the suffix newer than
        # ``start`` and stop at the first record at or before it
        ok = True
        for record in reversed(self._commit_log):
            if record.commit_time <= start:
                break
            if record.write_set & touched:
                ok = False
                break
        if self._trace.enabled:
            self._trace.emit(
                self.env.now, "sched.opt_validation", txn=txn.txn_id, ok=ok
            )
        return ok

    def _on_commit(self, txn: BatchTransaction) -> typing.Generator:
        if self.opt_validate_cost_ms:
            yield from self.control_node.consume(
                self.opt_validate_cost_ms, "cc-opt"
            )
        self._commit_log.append(
            _CommitRecord(self.env.now, frozenset(txn.write_set))
        )
        self._start_times.pop(txn.txn_id, None)
        self._prune_commit_log()
        return

    def _on_abort(self, txn: BatchTransaction) -> typing.Generator:
        self._start_times.pop(txn.txn_id, None)
        self._prune_commit_log()
        return
        yield  # pragma: no cover - generator marker

    def timeseries_probes(
        self,
    ) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """Base catalogue plus the backward-validation log size."""
        probes = super().timeseries_probes()
        probes["sched.commit_log"] = {
            "probe": gauge(lambda: len(self._commit_log)),
            "unit": "records",
            "hist": size_hist(),
        }
        return probes

    def _prune_commit_log(self) -> None:
        """Drop records no active transaction could conflict with."""
        log = self._commit_log
        if not self._start_times:
            log.clear()
            return
        oldest = next(iter(self._start_times.values()))
        while log and log[0].commit_time <= oldest:
            log.popleft()
