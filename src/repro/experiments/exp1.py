"""Experiment 1 (Section 5.1): batches that are frequently blocked.

Pattern 1: ``r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)`` with F1, F2
drawn distinct from NumFiles files; X-locks from the first touch of each
file.  This experiment backs Fig. 8, Table 2, Fig. 9, Table 3, Fig. 10
and Fig. 11.

Every function here accepts an optional
:class:`~repro.runner.ParallelRunner`.  Each figure's independent cells
are batched into as few runner calls as possible, so with a pool the
whole grid fans out across worker processes (and repeat invocations are
served from the runner's cache); without a runner the same specs execute
inline, sequentially, with identical results.
"""

from __future__ import annotations

import math
import typing

from repro.experiments.common import (
    C2PLM_MPL_CANDIDATES,
    ExperimentOutput,
    QUICK,
    RunScale,
    resolve_schedulers,
)
from repro.machine.config import MachineConfig
from repro.runner.spec import RunSpec, WorkloadSpec
from repro.sim.experiment import (
    ThroughputRequest,
    best_mpl_result,
    find_throughput_batch,
    run_specs,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runner.runner import ParallelRunner

#: default arrival-rate grid for the rate sweeps (TPS)
RATE_GRID = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4)

#: the declustering degrees of the paper
DD_GRID = (1, 2, 4, 8)


def _workload(rate: float, num_files: int) -> WorkloadSpec:
    return WorkloadSpec.make("exp1", rate, num_files=num_files)


def figure8(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    rates: typing.Sequence[float] = RATE_GRID,
    num_files: int = 16,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Fig. 8: mean response time (s) vs arrival rate at DD = 1."""
    schedulers = resolve_schedulers(schedulers)
    config = MachineConfig(dd=1, num_files=num_files)
    specs = [
        RunSpec(
            scheduler=scheduler,
            workload=_workload(rate, num_files),
            config=config,
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for rate in rates
        for scheduler in schedulers
    ]
    results = iter(run_specs(specs, runner, label="fig8"))
    rows = [
        [rate] + [next(results).mean_response_s for _ in schedulers]
        for rate in rates
    ]
    return ExperimentOutput(
        experiment_id="fig8",
        title=f"Fig. 8: arrival rate vs response time (DD=1, NumFiles={num_files})",
        headers=["lambda_tps"] + list(schedulers),
        rows=typing.cast(typing.List[typing.List[object]], rows),
        paper_reference=(
            "Resources saturate at lambda_NODC = 1.04 TPS; every scheduler "
            "hits RT = 70 s below 70% of that rate (characteristic #1)."
        ),
    )


def table2(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    file_counts: typing.Sequence[int] = (8, 16, 32, 64),
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Table 2: throughput (TPS) at RT = 70 s vs NumFiles at DD = 1."""
    schedulers = resolve_schedulers(schedulers)
    requests = [
        ThroughputRequest(
            scheduler=scheduler,
            workload=_workload(1.0, num_files),
            config=MachineConfig(dd=1, num_files=num_files),
            iterations=scale.bisect_iterations,
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for num_files in file_counts
        for scheduler in schedulers
    ]
    results = iter(find_throughput_batch(requests, runner, label="table2"))
    rows = [
        [num_files] + [next(results).throughput_tps for _ in schedulers]
        for num_files in file_counts
    ]
    return ExperimentOutput(
        experiment_id="table2",
        title="Table 2: NumFiles vs throughput (TPS) at RT = 70 s, DD = 1",
        headers=["num_files"] + list(schedulers),
        rows=typing.cast(typing.List[typing.List[object]], rows),
        paper_reference=(
            "Paper values (8/16/32/64 files): NODC 1.02-1.04, ASL .45/.72/.9/.96, "
            "GOW .44/.67/.86/.95, LOW .44/.65/.83/.94, C2PL .25/.35/.5/.62, "
            "OPT .16/.24/.3/.38"
        ),
    )


def figure9(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    dds: typing.Sequence[int] = DD_GRID,
    num_files: int = 16,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Fig. 9: throughput (TPS) at RT = 70 s vs degree of declustering."""
    schedulers = resolve_schedulers(schedulers)
    requests = [
        ThroughputRequest(
            scheduler=scheduler,
            workload=_workload(1.0, num_files),
            config=MachineConfig(dd=dd, num_files=num_files),
            iterations=scale.bisect_iterations,
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for dd in dds
        for scheduler in schedulers
    ]
    results = iter(find_throughput_batch(requests, runner, label="fig9"))
    rows = [
        [dd] + [next(results).throughput_tps for _ in schedulers]
        for dd in dds
    ]
    return ExperimentOutput(
        experiment_id="fig9",
        title=f"Fig. 9: declustering vs throughput at RT = 70 s (NumFiles={num_files})",
        headers=["dd"] + list(schedulers),
        rows=typing.cast(typing.List[typing.List[object]], rows),
        paper_reference=(
            "At DD = 2, ASL/LOW/GOW reach ~85% useful resource utilisation, "
            "1.5x the throughput of C2PL; all lock-based converge by DD = 8."
        ),
    )


def table3(
    scale: RunScale = QUICK,
    seed: int = 0,
    dds: typing.Sequence[int] = DD_GRID,
    num_files: int = 16,
    rate: float = 1.2,
    mpl_candidates: typing.Sequence[int] = C2PLM_MPL_CANDIDATES,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Table 3: mean response time (s) at lambda = 1.2 TPS vs DD.

    The C2PL column is C2PL+M (the best MPL-controlled C2PL), as in the
    paper's table.
    """
    schedulers = ("NODC", "ASL", "GOW", "LOW", "OPT")
    workload = _workload(rate, num_files)
    specs = [
        RunSpec(
            scheduler=scheduler,
            workload=workload,
            config=MachineConfig(dd=dd, num_files=num_files),
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for dd in dds
        for scheduler in schedulers
    ]
    fixed_rate = iter(run_specs(specs, runner, label="table3"))
    rows = []
    for dd in dds:
        by_name = {name: next(fixed_rate) for name in schedulers}
        plus_m = best_mpl_result(
            base_config=MachineConfig(dd=dd, num_files=num_files),
            rate_tps=rate,
            mpl_candidates=mpl_candidates,
            runner=runner,
            workload_spec=workload,
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        rows.append(
            [dd]
            + [by_name[n].mean_response_s for n in ("NODC", "ASL", "GOW", "LOW")]
            + [plus_m.mean_response_s, by_name["OPT"].mean_response_s]
        )
    return ExperimentOutput(
        experiment_id="table3",
        title=f"Table 3: declustering vs response time (s) at lambda = {rate} TPS",
        headers=["dd", "NODC", "ASL", "GOW", "LOW", "C2PL+M", "OPT"],
        rows=typing.cast(typing.List[typing.List[object]], rows),
        paper_reference=(
            "Paper (DD=1/2/4/8): NODC 141/103/74/58, ASL 387/183/83/48, "
            "GOW 429/233/102/47, LOW 430/245/107/47, C2PL+M 669/479/250/50, "
            "OPT 783/555/494/490"
        ),
    )


def speedups_from_rt(output: ExperimentOutput) -> ExperimentOutput:
    """Derive response-time speedups (vs the DD = 1 row) from a
    Table-3-shaped output; this is exactly the paper's Fig. 10."""
    headers = output.headers
    base_row = output.rows[0]
    rows = []
    for row in output.rows:
        new_row: typing.List[object] = [row[0]]
        for i in range(1, len(headers)):
            base = typing.cast(float, base_row[i])
            current = typing.cast(float, row[i])
            if (
                isinstance(current, float)
                and current > 0
                and not math.isnan(current)
                and not math.isnan(base)
            ):
                new_row.append(base / current)
            else:
                new_row.append(float("nan"))
        rows.append(new_row)
    return ExperimentOutput(
        experiment_id="fig10",
        title="Fig. 10: declustering vs response-time speedup (lambda = 1.2 TPS)",
        headers=headers,
        rows=rows,
        paper_reference=(
            "ASL/LOW/GOW speed up near-linearly (4-5x at DD=4, ~9x at DD=8); "
            "C2PL+M reaches only ~2.5x at DD=4; OPT ~1.5x; NODC ~2x at DD=8."
        ),
    )


def figure10(
    scale: RunScale = QUICK,
    seed: int = 0,
    runner: typing.Optional["ParallelRunner"] = None,
    **kwargs: typing.Any,
) -> ExperimentOutput:
    """Fig. 10: response-time speedup vs DD at lambda = 1.2 TPS."""
    return speedups_from_rt(table3(scale, seed=seed, runner=runner, **kwargs))


def figure11(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    rates: typing.Sequence[float] = (0.4, 0.6, 0.8, 1.0, 1.2, 1.4),
    dd: int = 4,
    num_files: int = 16,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Fig. 11: response-time speedup (DD=1 -> DD=4) vs arrival rate."""
    schedulers = resolve_schedulers(schedulers)
    specs = [
        RunSpec(
            scheduler=scheduler,
            workload=_workload(rate, num_files),
            config=MachineConfig(dd=degree, num_files=num_files),
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for rate in rates
        for scheduler in schedulers
        for degree in (1, dd)
    ]
    results = iter(run_specs(specs, runner, label="fig11"))
    rows = []
    for rate in rates:
        row: typing.List[object] = [rate]
        for _scheduler in schedulers:
            base = next(results)
            fast = next(results)
            row.append(fast.speedup_against(base))
        rows.append(row)
    return ExperimentOutput(
        experiment_id="fig11",
        title=f"Fig. 11: arrival rate vs response-time speedup (DD={dd})",
        headers=["lambda_tps"] + list(schedulers),
        rows=rows,
        paper_reference=(
            "At heavy loads (lambda above C2PL's DD=4 throughput of ~0.85 "
            "TPS) ASL/LOW/GOW keep the best speedup; C2PL and OPT only "
            "look good at light loads."
        ),
    )
