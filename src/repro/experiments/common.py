"""Shared settings for the paper's experiments.

The paper simulates 2,000,000 clocks (2,000 s) per measured point.  A
full-fidelity reproduction is expensive across the dozens of points each
figure needs, so every experiment takes a :class:`RunScale`; the
``quick`` scale keeps wall-clock time reasonable for CI/benchmarks while
preserving every qualitative shape, and ``paper`` matches the paper's
horizon.  Set the environment variable ``REPRO_SCALE=paper`` to make the
benchmark suite run full-length simulations.
"""

from __future__ import annotations

import dataclasses
import os
import typing

from repro.core.registry import PAPER_SCHEDULERS, grid_schedulers

#: the paper's scheduler line-up and reporting order (registry-sourced)
SCHEDULERS = PAPER_SCHEDULERS

#: MPL candidates swept for C2PL+M ("the best C2PL")
C2PLM_MPL_CANDIDATES = (2, 4, 6, 8, 12, 16)


def resolve_schedulers(
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    families: typing.Sequence[str] = ("paper", "modern"),
) -> typing.Tuple[str, ...]:
    """The scheduler grid for one experiment sweep.

    ``None`` (every experiment's default) resolves **at call time** from
    the registry, so newly registered schedulers join every sweep
    without touching the experiment modules; an explicit sequence is
    passed through untouched.
    """
    if schedulers is not None:
        return tuple(schedulers)
    return grid_schedulers(families)


@dataclasses.dataclass(frozen=True)
class RunScale:
    """Simulation horizon and bisection effort for one experiment run."""

    name: str
    duration_ms: float
    warmup_ms: float
    bisect_iterations: int

    @property
    def measured_window_ms(self) -> float:
        return self.duration_ms - self.warmup_ms


#: fast: preserves orderings/shapes; used by default in benchmarks/tests
QUICK = RunScale("quick", duration_ms=400_000.0, warmup_ms=60_000.0,
                 bisect_iterations=6)

#: the paper's 2,000,000-clock horizon
PAPER = RunScale("paper", duration_ms=2_000_000.0, warmup_ms=200_000.0,
                 bisect_iterations=8)

#: minimal: smoke-testing the experiment plumbing only
SMOKE = RunScale("smoke", duration_ms=120_000.0, warmup_ms=20_000.0,
                 bisect_iterations=3)

_SCALES = {s.name: s for s in (QUICK, PAPER, SMOKE)}


def scale_from_env(default: RunScale = QUICK) -> RunScale:
    """The run scale selected by ``REPRO_SCALE`` (quick/paper/smoke)."""
    name = os.environ.get("REPRO_SCALE", default.name).lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@dataclasses.dataclass
class ExperimentOutput:
    """One regenerated table or figure.

    ``headers``/``rows`` carry the data; ``paper_reference`` restates what
    the paper reported so EXPERIMENTS.md can be written from the output.
    """

    experiment_id: str
    title: str
    headers: typing.List[str]
    rows: typing.List[typing.List[object]]
    paper_reference: str = ""

    def column(self, header: str) -> typing.List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def as_dict(self) -> typing.Dict[str, typing.List[object]]:
        return {h: self.column(h) for h in self.headers}
