"""Experiment 3 (Section 5.3): sensitivity to inexact I/O declarations.

Pattern 1 with declared costs ``C = C0 * (1 + x)``, ``x ~ N(0, sigma)``
(clamped to 0 below x = -1).  GOW and LOW schedule from the erroneous
declarations while the actual scans use the exact costs.  Backs Fig. 13
and Table 5; C2PL (which cannot avoid blocking chains at all) is the
lower bound the paper compares against.

Both functions accept an optional
:class:`~repro.runner.ParallelRunner`; every (scheduler, DD, sigma)
bisection of Fig. 13 -- the C2PL floors included -- runs as one lockstep
batch, which is where the parallel runner pays off most.
"""

from __future__ import annotations

import math
import typing

from repro.experiments.common import (
    ExperimentOutput,
    QUICK,
    RunScale,
    resolve_schedulers,
)
from repro.machine.config import MachineConfig
from repro.runner.spec import WorkloadSpec
from repro.sim.experiment import ThroughputRequest, find_throughput_batch

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runner.runner import ParallelRunner

#: the error levels plotted in Fig. 13
SIGMA_GRID = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0)


def _workload(sigma: float, num_files: int) -> WorkloadSpec:
    return WorkloadSpec.make("exp3", 1.0, sigma=sigma, num_files=num_files)


def figure13(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    sigmas: typing.Sequence[float] = SIGMA_GRID,
    dds: typing.Sequence[int] = (1, 2, 4),
    num_files: int = 16,
    include_c2pl_floor: bool = True,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Fig. 13: throughput at RT = 70 s vs declaration-error sigma.

    One column per (scheduler, DD) pair; optionally a C2PL floor column
    per DD (C2PL ignores declarations entirely, so its throughput is
    sigma-independent -- the paper plots it as the lower bound).

    The default grid is the declaration-driven line-up: the paper's GOW
    and LOW plus every registered modern scheduler (all three exploit
    the same declarations the error model perturbs).
    """
    if schedulers is None:
        schedulers = ("GOW", "LOW") + resolve_schedulers(
            None, families=("modern",)
        )
    else:
        schedulers = tuple(schedulers)
    headers = ["sigma"]
    for dd in dds:
        for scheduler in schedulers:
            headers.append(f"{scheduler}@DD={dd}")
    if include_c2pl_floor:
        for dd in dds:
            headers.append(f"C2PL@DD={dd}")

    def request(scheduler: str, sigma: float, dd: int) -> ThroughputRequest:
        return ThroughputRequest(
            scheduler=scheduler,
            workload=_workload(sigma, num_files),
            config=MachineConfig(dd=dd, num_files=num_files),
            iterations=scale.bisect_iterations,
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )

    requests = []
    if include_c2pl_floor:
        requests += [request("C2PL", 0.0, dd) for dd in dds]
    requests += [
        request(scheduler, sigma, dd)
        for sigma in sigmas
        for dd in dds
        for scheduler in schedulers
    ]
    results = iter(find_throughput_batch(requests, runner, label="fig13"))

    floor: typing.Dict[int, float] = {}
    if include_c2pl_floor:
        for dd in dds:
            floor[dd] = next(results).throughput_tps

    rows = []
    for sigma in sigmas:
        row: typing.List[object] = [sigma]
        for dd in dds:
            for _scheduler in schedulers:
                row.append(next(results).throughput_tps)
        if include_c2pl_floor:
            for dd in dds:
                row.append(floor[dd])
        rows.append(row)
    return ExperimentOutput(
        experiment_id="fig13",
        title="Fig. 13: declaration-error sigma vs throughput at RT = 70 s",
        headers=headers,
        rows=rows,
        paper_reference=(
            "GOW and LOW stay well above the C2PL floor even at sigma = 1 "
            "(1.45-1.7x at DD=1-2) and sigma = 10; degradation shrinks as "
            "DD grows."
        ),
    )


def table5(
    figure13_output: typing.Optional[ExperimentOutput] = None,
    scale: RunScale = QUICK,
    seed: int = 0,
    dds: typing.Sequence[int] = (1, 2, 4),
    num_files: int = 16,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Table 5: degradation ratio TPS(sigma=10) / TPS(sigma=0) per DD.

    Derives from a Fig. 13 output when given one (the two sigma
    endpoints must be present), else runs the two endpoints directly.
    """
    if figure13_output is None:
        figure13_output = figure13(
            scale,
            seed=seed,
            sigmas=(0.0, 10.0),
            dds=dds,
            num_files=num_files,
            include_c2pl_floor=False,
            runner=runner,
        )
    sigma_column = figure13_output.column("sigma")
    try:
        base_index = sigma_column.index(0.0)
        worst_index = sigma_column.index(10.0)
    except ValueError as exc:
        raise ValueError(
            "table5 needs sigma = 0 and sigma = 10 rows in the Fig. 13 data"
        ) from exc

    rows = []
    for scheduler in ("GOW", "LOW"):
        row: typing.List[object] = [scheduler]
        for dd in dds:
            header = f"{scheduler}@DD={dd}"
            base = typing.cast(float, figure13_output.as_dict()[header][base_index])
            worst = typing.cast(
                float, figure13_output.as_dict()[header][worst_index]
            )
            if base and not math.isnan(base) and not math.isnan(worst):
                row.append(100.0 * worst / base)
            else:
                row.append(float("nan"))
        rows.append(row)
    return ExperimentOutput(
        experiment_id="table5",
        title="Table 5: degradation ratio (%) = TPS(sigma=10) / TPS(sigma=0)",
        headers=["scheduler"] + [f"DD={dd}" for dd in dds],
        rows=rows,
        paper_reference=(
            "Paper: GOW 94/96/97.5%, LOW 77/84/93% at DD=1/2/4 -- GOW is "
            "less sensitive (chain-form constraint); both improve with DD."
        ),
    )
