"""Experiment 2 (Section 5.2): batches updating a hot set.

Pattern 2: ``r(B:5) -> w(F1:1) -> w(F2:1)`` with B from 8 read-only files
and F1 != F2 from 8 hot files; every node is home to one read-only and
one hot file.  Backs Table 4 and Fig. 12.
"""

from __future__ import annotations

import typing

from repro.experiments.common import (
    SCHEDULERS,
    ExperimentOutput,
    QUICK,
    RunScale,
)
from repro.machine.config import MachineConfig
from repro.sim.experiment import find_throughput_at_response_time, run_at_rate
from repro.txn.workload import experiment2_workload


def _workload_factory(rate: float):
    return experiment2_workload(rate)


def table4(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Sequence[str] = SCHEDULERS,
    dds: typing.Sequence[int] = (1, 2, 4),
    rate: float = 1.2,
) -> ExperimentOutput:
    """Table 4: throughput at RT = 70 s and response time at 1.2 TPS.

    One row per (metric, DD) pair, matching the paper's layout.
    """
    rows = []
    for dd in dds:
        config = MachineConfig(dd=dd, num_files=16)
        row: typing.List[object] = [f"thruput DD={dd}"]
        for scheduler in schedulers:
            result = find_throughput_at_response_time(
                scheduler,
                _workload_factory,
                config=config,
                seed=seed,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
                iterations=scale.bisect_iterations,
            )
            row.append(result.throughput_tps)
        rows.append(row)
    for dd in dds:
        config = MachineConfig(dd=dd, num_files=16)
        row = [f"resp.time DD={dd}"]
        for scheduler in schedulers:
            result = run_at_rate(
                scheduler,
                _workload_factory,
                rate,
                config=config,
                seed=seed,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
            )
            row.append(result.mean_response_s)
        rows.append(row)
    return ExperimentOutput(
        experiment_id="table4",
        title=(
            "Table 4: hot-set throughput (TPS at RT = 70 s) and response "
            f"time (s at {rate} TPS) vs DD"
        ),
        headers=["metric"] + list(schedulers),
        rows=rows,
        paper_reference=(
            "Paper throughput (DD=1/2/4): NODC 1.1/1.11/1.13, ASL .4/.7/1.03, "
            "GOW .57/.88/1.1, LOW .77/1.01/1.12, C2PL .7/.92/1.09, OPT .38/.55/.85. "
            "Response time: NODC 112/97/87, ASL 611/380/116, GOW 500/252/80, "
            "LOW 321/133/57, C2PL 432/242/118, OPT 751/746/457. "
            "LOW best, then C2PL, then GOW; ASL worst lock-based at low DD."
        ),
    )


def figure12(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Sequence[str] = SCHEDULERS,
    dds: typing.Sequence[int] = (1, 2, 4, 8),
    rate: float = 1.2,
) -> ExperimentOutput:
    """Fig. 12: response-time speedup vs DD at 1.2 TPS on the hot set."""
    base_results = {}
    rows = []
    for dd in dds:
        config = MachineConfig(dd=dd, num_files=16)
        row: typing.List[object] = [dd]
        for scheduler in schedulers:
            result = run_at_rate(
                scheduler,
                _workload_factory,
                rate,
                config=config,
                seed=seed,
                duration_ms=scale.duration_ms,
                warmup_ms=scale.warmup_ms,
            )
            if dd == dds[0]:
                base_results[scheduler] = result
            row.append(result.speedup_against(base_results[scheduler]))
        rows.append(row)
    return ExperimentOutput(
        experiment_id="fig12",
        title=f"Fig. 12: hot-set declustering vs RT speedup (lambda = {rate} TPS)",
        headers=["dd"] + list(schedulers),
        rows=rows,
        paper_reference=(
            "LOW has the best throughput *and* the best speedup; ASL "
            "speeds up better than C2PL despite worse absolute RT; "
            "NODC's speedup is only ~1.57 at DD=8 (very heavy load)."
        ),
    )
