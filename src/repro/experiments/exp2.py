"""Experiment 2 (Section 5.2): batches updating a hot set.

Pattern 2: ``r(B:5) -> w(F1:1) -> w(F2:1)`` with B from 8 read-only files
and F1 != F2 from 8 hot files; every node is home to one read-only and
one hot file.  Backs Table 4 and Fig. 12.

Both functions accept an optional
:class:`~repro.runner.ParallelRunner`; see :mod:`repro.experiments.exp1`
for the batching convention.
"""

from __future__ import annotations

import typing

from repro.experiments.common import (
    ExperimentOutput,
    QUICK,
    RunScale,
    resolve_schedulers,
)
from repro.machine.config import MachineConfig
from repro.runner.spec import RunSpec, WorkloadSpec
from repro.sim.experiment import (
    ThroughputRequest,
    find_throughput_batch,
    run_specs,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runner.runner import ParallelRunner


def _workload(rate: float) -> WorkloadSpec:
    return WorkloadSpec.make("exp2", rate)


def table4(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    dds: typing.Sequence[int] = (1, 2, 4),
    rate: float = 1.2,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Table 4: throughput at RT = 70 s and response time at 1.2 TPS.

    One row per (metric, DD) pair, matching the paper's layout.
    """
    schedulers = resolve_schedulers(schedulers)
    requests = [
        ThroughputRequest(
            scheduler=scheduler,
            workload=_workload(1.0),
            config=MachineConfig(dd=dd, num_files=16),
            iterations=scale.bisect_iterations,
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for dd in dds
        for scheduler in schedulers
    ]
    throughput = iter(
        find_throughput_batch(requests, runner, label="table4:thruput")
    )
    rows = [
        [f"thruput DD={dd}"]
        + [next(throughput).throughput_tps for _ in schedulers]
        for dd in dds
    ]

    specs = [
        RunSpec(
            scheduler=scheduler,
            workload=_workload(rate),
            config=MachineConfig(dd=dd, num_files=16),
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for dd in dds
        for scheduler in schedulers
    ]
    fixed_rate = iter(run_specs(specs, runner, label="table4:rt"))
    rows += [
        [f"resp.time DD={dd}"]
        + [next(fixed_rate).mean_response_s for _ in schedulers]
        for dd in dds
    ]
    return ExperimentOutput(
        experiment_id="table4",
        title=(
            "Table 4: hot-set throughput (TPS at RT = 70 s) and response "
            f"time (s at {rate} TPS) vs DD"
        ),
        headers=["metric"] + list(schedulers),
        rows=typing.cast(typing.List[typing.List[object]], rows),
        paper_reference=(
            "Paper throughput (DD=1/2/4): NODC 1.1/1.11/1.13, ASL .4/.7/1.03, "
            "GOW .57/.88/1.1, LOW .77/1.01/1.12, C2PL .7/.92/1.09, OPT .38/.55/.85. "
            "Response time: NODC 112/97/87, ASL 611/380/116, GOW 500/252/80, "
            "LOW 321/133/57, C2PL 432/242/118, OPT 751/746/457. "
            "LOW best, then C2PL, then GOW; ASL worst lock-based at low DD."
        ),
    )


def figure12(
    scale: RunScale = QUICK,
    seed: int = 0,
    schedulers: typing.Optional[typing.Sequence[str]] = None,
    dds: typing.Sequence[int] = (1, 2, 4, 8),
    rate: float = 1.2,
    runner: typing.Optional["ParallelRunner"] = None,
) -> ExperimentOutput:
    """Fig. 12: response-time speedup vs DD at 1.2 TPS on the hot set."""
    schedulers = resolve_schedulers(schedulers)
    specs = [
        RunSpec(
            scheduler=scheduler,
            workload=_workload(rate),
            config=MachineConfig(dd=dd, num_files=16),
            seed=seed,
            duration_ms=scale.duration_ms,
            warmup_ms=scale.warmup_ms,
        )
        for dd in dds
        for scheduler in schedulers
    ]
    results = iter(run_specs(specs, runner, label="fig12"))
    base_results: typing.Dict[str, typing.Any] = {}
    rows = []
    for dd in dds:
        row: typing.List[object] = [dd]
        for scheduler in schedulers:
            result = next(results)
            if dd == dds[0]:
                base_results[scheduler] = result
            row.append(result.speedup_against(base_results[scheduler]))
        rows.append(row)
    return ExperimentOutput(
        experiment_id="fig12",
        title=f"Fig. 12: hot-set declustering vs RT speedup (lambda = {rate} TPS)",
        headers=["dd"] + list(schedulers),
        rows=rows,
        paper_reference=(
            "LOW has the best throughput *and* the best speedup; ASL "
            "speeds up better than C2PL despite worse absolute RT; "
            "NODC's speedup is only ~1.57 at DD=8 (very heavy load)."
        ),
    )
