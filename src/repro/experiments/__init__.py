"""The paper's experiments: one function per table/figure.

- Experiment 1 (blocking): :func:`exp1.figure8`, :func:`exp1.table2`,
  :func:`exp1.figure9`, :func:`exp1.table3`, :func:`exp1.figure10`,
  :func:`exp1.figure11`.
- Experiment 2 (hot set): :func:`exp2.table4`, :func:`exp2.figure12`.
- Experiment 3 (sensitivity): :func:`exp3.figure13`, :func:`exp3.table5`.

Every function takes a :class:`~repro.experiments.common.RunScale`
(``QUICK`` by default; ``PAPER`` for the full 2,000,000-clock horizon)
and returns an :class:`~repro.experiments.common.ExperimentOutput`.
"""

from repro.experiments import exp1, exp2, exp3
from repro.experiments.common import (
    C2PLM_MPL_CANDIDATES,
    PAPER,
    QUICK,
    SMOKE,
    SCHEDULERS,
    ExperimentOutput,
    RunScale,
    scale_from_env,
)

__all__ = [
    "C2PLM_MPL_CANDIDATES",
    "ExperimentOutput",
    "PAPER",
    "QUICK",
    "RunScale",
    "SCHEDULERS",
    "SMOKE",
    "exp1",
    "exp2",
    "exp3",
    "scale_from_env",
]
