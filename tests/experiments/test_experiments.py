"""Tests of the experiment definitions (SMOKE scale: plumbing + shape).

Quantitative agreement with the paper lives in the benchmark suite and
EXPERIMENTS.md; these tests verify each table/figure function produces
well-formed output and preserves the cheap-to-check orderings.
"""

import math

import pytest

from repro.experiments import (
    ExperimentOutput,
    PAPER,
    QUICK,
    SMOKE,
    scale_from_env,
)
from repro.experiments import exp1, exp2, exp3


class TestScales:
    def test_scale_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is QUICK

    def test_scale_from_env_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert scale_from_env() is PAPER

    def test_scale_from_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_paper_scale_matches_paper_horizon(self):
        assert PAPER.duration_ms == 2_000_000.0


class TestExperimentOutput:
    def test_column_access(self):
        out = ExperimentOutput("id", "t", ["a", "b"], [[1, 2], [3, 4]])
        assert out.column("b") == [2, 4]
        assert out.as_dict() == {"a": [1, 3], "b": [2, 4]}

    def test_missing_column(self):
        out = ExperimentOutput("id", "t", ["a"], [[1]])
        with pytest.raises(ValueError):
            out.column("zzz")


class TestFigure8:
    def test_shape_and_monotonicity(self):
        out = exp1.figure8(SMOKE, rates=(0.3, 0.9), schedulers=("NODC", "ASL"))
        assert out.headers == ["lambda_tps", "NODC", "ASL"]
        assert len(out.rows) == 2
        nodc = out.column("NODC")
        # response time grows with load
        assert nodc[1] > nodc[0]
        # locking overhead/blocking makes ASL slower than NODC
        assert out.column("ASL")[1] > nodc[1]


class TestTable2:
    def test_throughput_grows_with_files(self):
        out = exp1.table2(SMOKE, schedulers=("ASL",), file_counts=(8, 64))
        asl = out.column("ASL")
        assert asl[1] > asl[0]  # less contention with more files

    def test_headers_include_all_schedulers(self):
        out = exp1.table2(SMOKE, schedulers=("ASL", "C2PL"), file_counts=(8,))
        assert out.headers == ["num_files", "ASL", "C2PL"]


class TestFigure9:
    def test_throughput_grows_with_dd(self):
        out = exp1.figure9(SMOKE, schedulers=("ASL",), dds=(1, 8))
        asl = out.column("ASL")
        assert asl[1] > asl[0]


class TestTable3AndFigure10:
    def test_table3_has_c2plm_column(self):
        out = exp1.table3(SMOKE, dds=(1,), mpl_candidates=(4, 8))
        assert "C2PL+M" in out.headers
        assert len(out.rows) == 1

    def test_figure10_speedups_baseline_is_one(self):
        rt = ExperimentOutput(
            "table3",
            "t",
            ["dd", "ASL", "C2PL+M"],
            [[1, 100.0, 200.0], [4, 25.0, 100.0]],
        )
        speedup = exp1.speedups_from_rt(rt)
        assert speedup.rows[0][1:] == [1.0, 1.0]
        assert speedup.rows[1][1] == pytest.approx(4.0)
        assert speedup.rows[1][2] == pytest.approx(2.0)

    def test_figure10_handles_nan(self):
        rt = ExperimentOutput(
            "table3", "t", ["dd", "X"], [[1, 100.0], [4, float("nan")]]
        )
        speedup = exp1.speedups_from_rt(rt)
        assert math.isnan(speedup.rows[1][1])


class TestFigure11:
    def test_speedup_columns(self):
        out = exp1.figure11(SMOKE, schedulers=("ASL",), rates=(0.5,), dd=4)
        assert out.headers == ["lambda_tps", "ASL"]
        assert out.rows[0][1] > 1.0  # declustering helps


class TestTable4:
    def test_rows_cover_both_metrics(self):
        out = exp2.table4(SMOKE, schedulers=("LOW",), dds=(1, 2))
        metrics = out.column("metric")
        assert metrics == [
            "thruput DD=1",
            "thruput DD=2",
            "resp.time DD=1",
            "resp.time DD=2",
        ]

    def test_low_beats_asl_on_hot_set(self):
        """The paper's headline hot-set result at DD = 1."""
        out = exp2.table4(SMOKE, schedulers=("LOW", "ASL"), dds=(1,))
        thruput = out.rows[0]
        assert thruput[1] > thruput[2]  # LOW > ASL


class TestFigure12:
    def test_baseline_speedup_is_one(self):
        out = exp2.figure12(SMOKE, schedulers=("ASL",), dds=(1, 4))
        assert out.rows[0][1] == pytest.approx(1.0)
        assert out.rows[1][1] > 1.0


class TestFigure13AndTable5:
    def test_figure13_headers(self):
        out = exp3.figure13(
            SMOKE,
            schedulers=("GOW", "LOW"),
            sigmas=(0.0,),
            dds=(1,),
            include_c2pl_floor=True,
        )
        assert out.headers == ["sigma", "GOW@DD=1", "LOW@DD=1", "C2PL@DD=1"]

    def test_figure13_default_grid_includes_modern(self):
        out = exp3.figure13(
            SMOKE, sigmas=(0.0,), dds=(1,), include_c2pl_floor=False
        )
        assert out.headers[:3] == ["sigma", "GOW@DD=1", "LOW@DD=1"]
        for name in ("DGCC", "CAR", "PRED"):
            assert f"{name}@DD=1" in out.headers

    def test_table5_from_figure13(self):
        fig = ExperimentOutput(
            "fig13",
            "t",
            ["sigma", "GOW@DD=1", "LOW@DD=1"],
            [[0.0, 0.5, 0.6], [10.0, 0.45, 0.42]],
        )
        out = exp3.table5(fig, dds=(1,))
        assert out.rows[0] == ["GOW", pytest.approx(90.0)]
        assert out.rows[1] == ["LOW", pytest.approx(70.0)]

    def test_table5_requires_both_endpoints(self):
        fig = ExperimentOutput(
            "fig13", "t", ["sigma", "GOW@DD=1", "LOW@DD=1"], [[0.0, 0.5, 0.6]]
        )
        with pytest.raises(ValueError):
            exp3.table5(fig, dds=(1,))
