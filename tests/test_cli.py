"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "LOW"])
        assert args.scheduler == "LOW"
        assert args.workload == "exp1"
        assert args.rate == 1.0
        assert args.dd == 1
        assert args.mpl is None

    def test_run_custom_flags(self):
        args = build_parser().parse_args([
            "run", "GOW", "--workload", "exp2", "--rate", "0.5",
            "--dd", "4", "--mpl", "8", "--seed", "7",
        ])
        assert args.workload == "exp2"
        assert args.rate == 0.5
        assert args.dd == 4
        assert args.mpl == 8
        assert args.seed == 7

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "LOW", "--workload", "nope"])


class TestCommands:
    def test_schedulers_lists_paper_lineup(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"):
            assert name in out

    def test_experiments_lists_all_ten(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for eid in ("fig8", "table2", "fig9", "table3", "fig10",
                    "fig11", "table4", "fig12", "fig13", "table5"):
            assert eid in out

    def test_run_exp1(self, capsys):
        code = main([
            "run", "ASL", "--rate", "0.4",
            "--duration", "120000", "--warmup", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput (TPS)" in out
        assert "ASL" in out

    def test_run_exp2(self, capsys):
        code = main([
            "run", "LOW", "--workload", "exp2", "--rate", "0.4",
            "--duration", "100000", "--warmup", "0",
        ])
        assert code == 0
        assert "LOW" in capsys.readouterr().out

    def test_run_exp3_with_sigma(self, capsys):
        code = main([
            "run", "GOW", "--workload", "exp3", "--sigma", "2.0",
            "--rate", "0.3", "--duration", "100000", "--warmup", "0",
        ])
        assert code == 0

    def test_run_with_mpl(self, capsys):
        code = main([
            "run", "C2PL", "--mpl", "4", "--rate", "0.4",
            "--duration", "100000", "--warmup", "0",
        ])
        assert code == 0

    def test_run_unknown_scheduler_raises(self):
        with pytest.raises(KeyError):
            main(["run", "NOPE", "--duration", "1000", "--warmup", "0"])
