"""Tests for the command-line interface."""

import json

import pytest

from repro.analysis.arena import load_arena
from repro.bench import load_bench_json, validate_bench, write_bench_json
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "LOW"])
        assert args.scheduler == "LOW"
        assert args.workload == "exp1"
        assert args.rate == 1.0
        assert args.dd == 1
        assert args.mpl is None

    def test_run_custom_flags(self):
        args = build_parser().parse_args([
            "run", "GOW", "--workload", "exp2", "--rate", "0.5",
            "--dd", "4", "--mpl", "8", "--seed", "7",
        ])
        assert args.workload == "exp2"
        assert args.rate == 0.5
        assert args.dd == 4
        assert args.mpl == 8
        assert args.seed == 7

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "LOW", "--workload", "nope"])


class TestCommands:
    def test_schedulers_lists_paper_lineup(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"):
            assert name in out

    def test_experiments_lists_all_ten(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for eid in ("fig8", "table2", "fig9", "table3", "fig10",
                    "fig11", "table4", "fig12", "fig13", "table5"):
            assert eid in out

    def test_run_exp1(self, capsys):
        code = main([
            "run", "ASL", "--rate", "0.4",
            "--duration", "120000", "--warmup", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput (TPS)" in out
        assert "ASL" in out

    def test_run_exp2(self, capsys):
        code = main([
            "run", "LOW", "--workload", "exp2", "--rate", "0.4",
            "--duration", "100000", "--warmup", "0",
        ])
        assert code == 0
        assert "LOW" in capsys.readouterr().out

    def test_run_exp3_with_sigma(self, capsys):
        code = main([
            "run", "GOW", "--workload", "exp3", "--sigma", "2.0",
            "--rate", "0.3", "--duration", "100000", "--warmup", "0",
        ])
        assert code == 0

    def test_run_with_mpl(self, capsys):
        code = main([
            "run", "C2PL", "--mpl", "4", "--rate", "0.4",
            "--duration", "100000", "--warmup", "0",
        ])
        assert code == 0

    def test_run_unknown_scheduler_raises(self):
        with pytest.raises(KeyError):
            main(["run", "NOPE", "--duration", "1000", "--warmup", "0"])


class TestTraceCommand:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "LOW"])
        assert args.jsonl == "trace.jsonl"
        assert args.chrome == ""
        assert args.top == 5
        assert args.max_events is None

    def test_trace_writes_artifacts_and_summary(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        code = main([
            "trace", "C2PL", "--rate", "0.6",
            "--duration", "40000", "--warmup", "0",
            "--jsonl", str(jsonl), "--chrome", str(chrome),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "schema valid" in out
        assert "trace summary" in out
        assert "events by kind" in out
        assert jsonl.exists() and chrome.exists()

    def test_trace_jsonl_can_be_disabled(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "trace", "NODC", "--rate", "0.4",
            "--duration", "20000", "--warmup", "0", "--jsonl", "",
        ])
        assert code == 0
        assert not (tmp_path / "trace.jsonl").exists()
        assert "trace summary" in capsys.readouterr().out

    def test_trace_max_events_warns_on_drop(self, tmp_path, capsys):
        code = main([
            "trace", "NODC", "--rate", "0.6",
            "--duration", "40000", "--warmup", "0",
            "--jsonl", str(tmp_path / "t.jsonl"), "--max-events", "10",
        ])
        assert code == 0
        assert "dropped" in capsys.readouterr().out

    def test_trace_bad_max_events(self):
        with pytest.raises(SystemExit):
            main(["trace", "LOW", "--max-events", "0",
                  "--duration", "1000", "--warmup", "0"])


class TestSweepCommand:
    def test_sweep_reports_cache_counts_and_manifest(self, tmp_path, capsys):
        argv = [
            "sweep", "NODC", "--rates", "0.4",
            "--duration", "20000", "--warmup", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(tmp_path / "runs"),
            "--traces-dir", str(tmp_path / "traces"),
            "--pool", "1",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hits=0 misses=1 simulated=1 coalesced=0" in out
        assert f"manifest={tmp_path / 'runs'}" in out
        # the repeat is served entirely from the cache
        assert main(argv) == 0
        assert "cache hits=1 misses=0" in capsys.readouterr().out

    def test_sweep_trace_reports_artifacts(self, tmp_path, capsys):
        assert main([
            "sweep", "NODC", "--rates", "0.4", "--trace",
            "--duration", "20000", "--warmup", "0",
            "--cache-dir", "", "--runs-dir", "",
            "--traces-dir", str(tmp_path / "traces"),
            "--pool", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace artifacts: 1 file(s)" in out
        assert len(list((tmp_path / "traces").iterdir())) == 1


class TestRunSeries:
    def test_run_writes_series_artifacts(self, tmp_path, capsys):
        series = tmp_path / "run.series.json"
        csv = tmp_path / "run.series.csv"
        code = main([
            "run", "LOW", "--rate", "0.6",
            "--duration", "40000", "--warmup", "0",
            "--series", str(series), "--series-csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[series]" in out
        assert "p95 exact" in out
        assert series.exists() and csv.exists()

    def test_run_without_series_flags_writes_nothing(self, tmp_path,
                                                     capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "run", "NODC", "--rate", "0.4",
            "--duration", "20000", "--warmup", "0",
        ]) == 0
        assert "[series]" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_bad_sample_interval_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "LOW", "--duration", "1000", "--warmup", "0",
                  "--series", "x.json", "--sample-interval", "0"])


class TestReportCommand:
    def _artifact(self, tmp_path):
        path = tmp_path / "run.series.json"
        assert main([
            "run", "GOW", "--rate", "0.6",
            "--duration", "40000", "--warmup", "0", "--series", str(path),
        ]) == 0
        return path

    def test_report_renders_sparklines(self, tmp_path, capsys):
        path = self._artifact(tmp_path)
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cn.util" in out
        assert "sample(s)" in out

    def test_report_missing_file_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 1
        assert "ERROR" in capsys.readouterr().err


class TestBenchCommand:
    def _bench(self, tmp_path, name, capsys):
        path = tmp_path / name
        assert main([
            "bench", "--duration", "5000", "--repeats", "1",
            "--output", str(path),
        ]) == 0
        capsys.readouterr()
        return path

    def test_bench_writes_valid_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_now.json"
        assert main([
            "bench", "--duration", "5000", "--repeats", "1",
            "--output", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "schema valid" in out
        assert "events/s" in out
        validate_bench(load_bench_json(path))

    def test_compare_clean_exits_zero(self, tmp_path, capsys):
        path = self._bench(tmp_path, "a.json", capsys)
        assert main(["bench", "--compare", str(path), str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_flags_injected_regression(self, tmp_path, capsys):
        path = self._bench(tmp_path, "a.json", capsys)
        payload = load_bench_json(path)
        for row in payload["runs"]:
            row["events_per_s"] *= 0.5  # synthetic 2x slowdown
        slow = tmp_path / "slow.json"
        write_bench_json(payload, slow)
        assert main(["bench", "--compare", str(path), str(slow)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_missing_file_fails(self, tmp_path, capsys):
        assert main([
            "bench", "--compare",
            str(tmp_path / "a.json"), str(tmp_path / "b.json"),
        ]) == 1
        assert "ERROR" in capsys.readouterr().err

    def test_bad_repeats_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "--repeats", "0", "--duration", "1000"])

    def test_compare_memory_regression_fails(self, tmp_path, capsys):
        path = self._bench(tmp_path, "a.json", capsys)
        payload = load_bench_json(path)
        for row in payload["runs"]:
            row["maxrss_kb"] = 100_000
        base = tmp_path / "base.json"
        write_bench_json(payload, base)
        for row in payload["runs"]:
            row["maxrss_kb"] = 160_000  # 1.6x > the 30% gate
        grown = tmp_path / "grown.json"
        write_bench_json(payload, grown)
        assert main(["bench", "--compare", str(base), str(grown)]) == 1
        out = capsys.readouterr().out
        assert "+mem" in out and "FAIL" in out
        # a looser gate lets the same artifacts pass
        assert main([
            "bench", "--compare", str(base), str(grown),
            "--mem-tolerance", "0.75",
        ]) == 0


class TestHistoryCommand:
    def _template(self, tmp_path, capsys):
        """One real quick-bench payload reused as the artifact template
        (measured wall-clock numbers are replaced with pinned synthetic
        speeds so the trend verdict is deterministic)."""
        path = tmp_path / "template.json"
        assert main([
            "bench", "--quick", "--duration", "5000", "--repeats", "1",
            "--output", str(path),
        ]) == 0
        capsys.readouterr()
        return load_bench_json(path)

    def _bench_artifact(self, tmp_path, template, name, factor, created):
        payload = json.loads(json.dumps(template))
        payload["created"] = created
        for row in payload["runs"]:
            row["events_per_s"] = 100_000.0 * factor
        return write_bench_json(payload, tmp_path / name)

    def _seed_store(self, tmp_path, capsys, slow_last=False):
        store = tmp_path / "history"
        template = self._template(tmp_path, capsys)
        factors = [1.0, 1.05, 0.98]
        if slow_last:
            factors.append(0.4)
        paths = [
            self._bench_artifact(
                tmp_path, template, f"b{i}.json", factor,
                f"2026-01-{i + 1:02d}T00:00:00Z",
            )
            for i, factor in enumerate(factors)
        ]
        assert main([
            "history", "ingest", *[str(p) for p in paths],
            "--store", str(store),
        ]) == 0
        capsys.readouterr()
        return store, template

    def test_ingest_reports_and_dedups(self, tmp_path, capsys):
        store = tmp_path / "history"
        template = self._template(tmp_path, capsys)
        path = self._bench_artifact(
            tmp_path, template, "b.json", 1.0, "2026-01-01T00:00:00Z"
        )
        assert main([
            "history", "ingest", str(path), "--store", str(store),
        ]) == 0
        out = capsys.readouterr().out
        assert "bench record(s)" in out
        assert main([
            "history", "ingest", str(path), "--store", str(store),
        ]) == 0
        assert "already ingested" in capsys.readouterr().out

    def test_ingest_unknown_artifact_fails(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"mystery": 1}', encoding="utf-8")
        assert main([
            "history", "ingest", str(bogus),
            "--store", str(tmp_path / "history"),
        ]) == 1
        assert "ERROR" in capsys.readouterr().err

    def test_report_writes_artifact_pair(self, tmp_path, capsys):
        store, _template = self._seed_store(tmp_path, capsys)
        assert main(["history", "report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "# Metrics history" in out
        assert "schema valid" in out
        from repro.analysis.trends import load_history
        payload = load_history(store / "HISTORY.json")
        assert len(payload["snapshots"]) == 3
        assert payload["verdict"]["ok"] is True
        assert (store / "HISTORY.md").exists()

    def test_check_passes_then_fails_on_injected_slowdown(
        self, tmp_path, capsys
    ):
        store, template = self._seed_store(tmp_path, capsys)
        assert main(["history", "check", "--store", str(store)]) == 0
        assert "OK" in capsys.readouterr().out
        slow = self._bench_artifact(
            tmp_path, template, "slow.json", 0.4, "2026-01-09T00:00:00Z"
        )
        assert main([
            "history", "ingest", str(slow), "--store", str(store),
        ]) == 0
        capsys.readouterr()
        assert main(["history", "check", "--store", str(store)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_empty_store_is_an_error(self, tmp_path, capsys):
        assert main([
            "history", "report", "--store", str(tmp_path / "empty"),
        ]) == 1
        assert "empty" in capsys.readouterr().err

    def test_missing_subcommand_exits_two(self, capsys):
        assert main(["history"]) == 2
        assert "subcommand" in capsys.readouterr().err


class TestTelemetryCommands:
    def _sweep(self, tmp_path, capsys):
        assert main([
            "sweep", "NODC,C2PL", "--rates", "0.4",
            "--duration", "20000", "--warmup", "0",
            "--cache-dir", "", "--runs-dir", str(tmp_path / "runs"),
            "--pool", "2", "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry: batch" in out
        return out

    def test_sweep_telemetry_then_watch_once(self, tmp_path, capsys):
        self._sweep(tmp_path, capsys)
        assert main([
            "watch", "latest", "--once",
            "--runs-dir", str(tmp_path / "runs"),
        ]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "100.0%" in out
        assert "2/2 finished" in out

    def test_runs_list_and_show(self, tmp_path, capsys):
        self._sweep(tmp_path, capsys)
        assert main([
            "runs", "list", "--runs-dir", str(tmp_path / "runs"),
        ]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep" in out
        assert "complete" in out
        assert main([
            "runs", "show", "latest",
            "--runs-dir", str(tmp_path / "runs"),
        ]) == 0
        out = capsys.readouterr().out
        assert '"status": "complete"' in out
        assert "telemetry.jsonl" in out

    def test_tail_once_prints_validated_records(self, tmp_path, capsys):
        self._sweep(tmp_path, capsys)
        assert main([
            "tail", "latest", "--once",
            "--runs-dir", str(tmp_path / "runs"),
        ]) == 0
        out = capsys.readouterr().out
        assert "batch.meta" in out
        assert "run.done" in out
        assert "batch.done" in out

    def test_watch_unknown_batch_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "watch", "nope", "--once",
            "--runs-dir", str(tmp_path / "runs"),
        ]) == 1
        assert "ERROR" in capsys.readouterr().err

    def test_watch_batch_without_telemetry_fails_cleanly(
        self, tmp_path, capsys
    ):
        assert main([
            "sweep", "NODC", "--rates", "0.4",
            "--duration", "20000", "--warmup", "0",
            "--cache-dir", "", "--runs-dir", str(tmp_path / "runs"),
            "--pool", "1",
        ]) == 0
        capsys.readouterr()
        assert main([
            "watch", "latest", "--once",
            "--runs-dir", str(tmp_path / "runs"),
        ]) == 1
        assert "without" in capsys.readouterr().err

    def test_sweep_telemetry_needs_runs_dir(self):
        with pytest.raises(SystemExit):
            main([
                "sweep", "NODC", "--rates", "0.4",
                "--duration", "20000", "--warmup", "0",
                "--runs-dir", "", "--telemetry",
            ])

    def test_bench_telemetry_links_batch(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        assert main([
            "bench", "--duration", "5000", "--repeats", "1",
            "--out", str(tmp_path), "--output", str(out_path),
            "--telemetry", "--runs-dir", str(tmp_path / "runs"),
        ]) == 0
        payload = load_bench_json(out_path)
        assert payload.get("batch")
        capsys.readouterr()
        assert main([
            "runs", "list", "--runs-dir", str(tmp_path / "runs"),
        ]) == 0
        assert "bench" in capsys.readouterr().out


class TestSchedulersCommand:
    def test_lists_modern_lineup_with_families(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("DGCC", "CAR", "PRED"):
            assert name in out
        assert "modern" in out and "paper" in out and "extension" in out
        # parameterised spellings are advertised
        assert "DGCC(B=" in out


class TestArenaCommand:
    def run_arena(self, tmp_path, *extra):
        return main([
            "arena",
            "--schedulers", "NODC,DGCC",
            "--rates", "0.8",
            "--dds", "1",
            "--duration", "20000",
            "--warmup", "0",
            "--pool", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "arena"),
            "--traces-dir", str(tmp_path / "traces"),
            *extra,
        ])

    def test_writes_valid_report_pair(self, tmp_path, capsys):
        assert self.run_arena(tmp_path, "--no-phases", "--no-explain") == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out and "schema valid" in out
        payload = load_arena(tmp_path / "arena" / "ARENA.json")
        assert [c["scheduler"] for c in payload["cells"]] == ["NODC", "DGCC"]
        assert "phase_cost_s" not in payload["cells"][0]
        assert "time_budget" not in payload["cells"][0]
        md = (tmp_path / "arena" / "ARENA.md").read_text(encoding="utf-8")
        assert "**(best)**" in md

    def test_phase_pass_adds_cost_split(self, tmp_path, capsys):
        assert self.run_arena(tmp_path, "--no-explain") == 0
        payload = load_arena(tmp_path / "arena" / "ARENA.json")
        for cell in payload["cells"]:
            assert cell["phase_cost_s"]
        assert "hot phase" in (tmp_path / "arena" / "ARENA.md").read_text(
            encoding="utf-8"
        )

    def test_explain_pass_adds_time_budgets(self, tmp_path, capsys):
        assert self.run_arena(tmp_path, "--no-phases") == 0
        payload = load_arena(tmp_path / "arena" / "ARENA.json")
        for cell in payload["cells"]:
            budget = cell["time_budget"]
            assert budget["total_ms"] > 0
            assert set(budget["fractions"]) == {
                "queued", "blocked", "executing", "wasted",
            }
        md = (tmp_path / "arena" / "ARENA.md").read_text(encoding="utf-8")
        assert "%queued" in md and "%wasted" in md
        assert (tmp_path / "traces").glob("*.trace.jsonl")

    def test_unknown_scheduler_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            self.run_arena(tmp_path, "--schedulers", "NOPE")

    def test_empty_axes_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            self.run_arena(tmp_path, "--rates", "")


class TestBackendsCommand:
    def test_backends_lists_registry_with_capabilities(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "local", "asyncio", "shared-dir"):
            assert name in out
        assert "distributed" in out
        assert "kill" in out

    def test_sweep_accepts_and_reports_backend(self, tmp_path, capsys):
        assert main([
            "sweep", "NODC", "--rates", "0.4",
            "--duration", "20000", "--warmup", "0",
            "--cache-dir", str(tmp_path / "cache"), "--runs-dir", "",
            "--pool", "1", "--backend", "serial",
        ]) == 0
        assert "backend=serial" in capsys.readouterr().out

    def test_unknown_backend_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            main(["sweep", "NODC", "--backend", "fpga"])

    def test_shared_dir_requires_spool(self):
        with pytest.raises(SystemExit, match="--spool"):
            main(["sweep", "NODC", "--rates", "0.4",
                  "--backend", "shared-dir"])

    def test_spool_rejected_for_other_backends(self, tmp_path):
        with pytest.raises(SystemExit, match="shared-dir"):
            main(["sweep", "NODC", "--rates", "0.4",
                  "--backend", "local", "--spool", str(tmp_path)])

    def test_bench_artifact_records_backend(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        assert main([
            "bench", "--duration", "5000", "--repeats", "1",
            "--quick", "--output", str(path), "--backend", "serial",
        ]) == 0
        assert load_bench_json(path)["backend"] == "serial"


class TestCacheCommand:
    def _warm(self, tmp_path, capsys, rates="0.4"):
        assert main([
            "sweep", "NODC", "--rates", rates,
            "--duration", "20000", "--warmup", "0",
            "--cache-dir", str(tmp_path / "cache"), "--runs-dir", "",
            "--pool", "1",
        ]) == 0
        capsys.readouterr()

    def test_cache_stats(self, tmp_path, capsys):
        self._warm(tmp_path, capsys)
        assert main(["cache", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "result cache" in out

    def test_cache_prune_by_count(self, tmp_path, capsys):
        self._warm(tmp_path, capsys, rates="0.4,0.5")
        assert main([
            "cache", "--cache-dir", str(tmp_path / "cache"),
            "--max-entries", "1",
        ]) == 0
        assert "pruned 1 of 2" in capsys.readouterr().out

    def test_cache_dry_run_keeps_entries(self, tmp_path, capsys):
        self._warm(tmp_path, capsys)
        assert main([
            "cache", "--cache-dir", str(tmp_path / "cache"),
            "--max-entries", "0", "--dry-run",
        ]) == 0
        assert "would prune 1" in capsys.readouterr().out
        assert main(["cache", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        assert "entries" in capsys.readouterr().out

    def test_dry_run_without_criteria_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "--cache-dir", str(tmp_path), "--dry-run"])


class TestWorkerPoolCommand:
    def test_worker_pool_drains_a_spooled_ticket(self, tmp_path, capsys):
        import threading

        spool = tmp_path / "spool"
        sweep = threading.Thread(target=main, args=([
            "sweep", "NODC", "--rates", "0.4",
            "--duration", "20000", "--warmup", "0",
            "--cache-dir", "", "--runs-dir", "",
            "--backend", "shared-dir", "--spool", str(spool),
            "--spool-workers", "0",
        ],))
        sweep.start()
        code = main([
            "worker-pool", "--spool", str(spool),
            "--idle-exit", "30", "--max-tasks", "1",
        ])
        sweep.join(timeout=60.0)
        assert code == 0
        assert "1 run(s) executed" in capsys.readouterr().out

    def test_worker_pool_validates_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["worker-pool", "--spool", str(tmp_path), "--poll", "0"])
        with pytest.raises(SystemExit):
            main(["worker-pool", "--spool", str(tmp_path),
                  "--max-tasks", "0"])


class TestExplainCommand:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        assert main([
            "trace", "LOW", "--rate", "1.2", "--duration", "30000",
            "--warmup", "0", "--seed", "3",
            "--jsonl", str(path), "--chrome", "",
        ]) == 0
        return path

    def test_explain_writes_validated_artifact_pair(
        self, trace_path, tmp_path, capsys
    ):
        out = tmp_path / "explain"
        assert main(["explain", str(trace_path), "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "## Time budget" in stdout
        assert "schema valid" in stdout
        from repro.analysis.explain import load_explain

        payload = load_explain(out / "EXPLAIN.json")
        assert payload["source"]["trace"] == str(trace_path)
        assert (out / "EXPLAIN.md").read_text(encoding="utf-8").startswith(
            "# Explain"
        )

    def test_explain_json_emits_machine_readable_payload(
        self, trace_path, capsys
    ):
        import json as json_mod

        assert main([
            "explain", str(trace_path), "--json", "--out", "",
        ]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["kind"] == "explain"
        assert payload["budget"]["total_ms"] > 0

    def test_explain_txn_deep_dive(self, trace_path, capsys):
        assert main([
            "explain", str(trace_path), "--txn", "1", "--out", "",
        ]) == 0
        assert "# Transaction T1" in capsys.readouterr().out

    def test_explain_rejects_json_plus_md(self, trace_path):
        with pytest.raises(SystemExit):
            main(["explain", str(trace_path), "--json", "--md"])

    def test_explain_missing_target_fails(self, tmp_path):
        assert main([
            "explain", str(tmp_path / "nope.trace.jsonl"), "--out", "",
        ]) != 0

    def test_report_leads_with_budget_headline(
        self, trace_path, tmp_path, capsys
    ):
        series = tmp_path / "run.series.json"
        assert main([
            "run", "LOW", "--rate", "1.2", "--duration", "30000",
            "--warmup", "0", "--seed", "3", "--series", str(series),
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", str(series), "--explain", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("time budget")
        assert "queued" in out and "wasted" in out


class TestJanitorCommand:
    def test_janitor_sweeps_and_reports_counts(self, tmp_path, capsys):
        from repro.runner.backends.shared_dir import spool_dirs

        _pending, _claimed, done = spool_dirs(tmp_path)
        litter = done / "old.result.json"
        litter.write_text("{}")
        import os as os_mod

        old = litter.stat().st_mtime - 7200.0
        os_mod.utime(litter, (old, old))
        assert main([
            "worker-pool", "--spool", str(tmp_path), "--janitor",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 stale result(s)" in out
        assert not litter.exists()

    def test_janitor_flags_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["worker-pool", "--spool", str(tmp_path),
                  "--janitor-every", "0"])
        with pytest.raises(SystemExit):
            main(["worker-pool", "--spool", str(tmp_path),
                  "--done-max-age", "-1"])
