"""End-to-end time-series sampling and self-profiling of real runs.

The load-bearing properties, mirroring the tracing contract:

1. observation only -- a sampled and/or profiled run returns
   byte-identical results to the same run bare, for *every* registered
   scheduler (the sampler reads state at boundaries, never schedules
   events or draws randomness);
2. the sampled trajectories are plausible (utilisation in [0, 1],
   cumulative counters monotone) and export/validate cleanly.
"""

import dataclasses

import pytest

from repro.core.registry import available
from repro.machine import MachineConfig
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.timeseries import TimeSeriesSampler, load_series_json, write_series_json
from repro.sim.simulation import Simulation, run_simulation
from repro.txn.workload import experiment1_workload

QUICK = dict(seed=2, duration_ms=40_000.0)


def _run(scheduler, sampler=None, profiler=None, **overrides):
    settings = dict(QUICK)
    settings.update(overrides)
    return run_simulation(
        scheduler,
        experiment1_workload(1.0),
        MachineConfig(dd=2),
        sampler=sampler,
        profiler=profiler,
        **settings,
    )


class TestObservationOnly:
    @pytest.mark.parametrize("scheduler", available())
    def test_sampled_run_is_byte_identical(self, scheduler):
        bare = _run(scheduler)
        sampler = TimeSeriesSampler(interval_ms=500.0)
        sampled = _run(scheduler, sampler=sampler)
        assert dataclasses.asdict(sampled) == dataclasses.asdict(bare)
        assert sampler.samples_taken == 80  # 40s / 500ms

    @pytest.mark.parametrize("scheduler", ["LOW", "C2PL", "OPT"])
    def test_profiled_run_is_byte_identical(self, scheduler):
        bare = _run(scheduler)
        profiled = _run(scheduler, profiler=PhaseProfiler())
        assert dataclasses.asdict(profiled) == dataclasses.asdict(bare)

    def test_sampling_twice_gives_identical_series(self):
        first, second = (TimeSeriesSampler(interval_ms=1_000.0) for _ in "ab")
        _run("GOW", sampler=first)
        _run("GOW", sampler=second)
        assert first.to_dict() == second.to_dict()


class TestSampledTrajectories:
    def _sampled(self, scheduler="LOW"):
        sampler = TimeSeriesSampler(interval_ms=1_000.0)
        _run(scheduler, sampler=sampler)
        return sampler

    def test_machine_and_scheduler_series_present(self):
        sampler = self._sampled()
        names = set(sampler.series)
        assert {
            "cn.util", "cn.queue", "dpn.util.mean", "dpn.queue.total",
            "sched.active_mpl", "sched.blocked", "lock.files_held",
            "sched.aborts.cum", "txn.in_flight", "txn.commits.cum",
            "txn.commit_rate",
        } <= names

    def test_wtpg_size_sampled_for_wtpg_schedulers(self):
        # GOW/LOW/C2PL all maintain a WTPG; plain 2PL tracks waits-for
        # edges instead and NODC has no graph at all
        assert "sched.wtpg_size" in self._sampled("GOW").series
        assert "sched.wtpg_size" in self._sampled("C2PL").series
        assert "sched.wtpg_size" not in self._sampled("2PL").series
        assert "sched.waits_for_edges" in self._sampled("2PL").series
        assert "sched.wtpg_size" not in self._sampled("NODC").series

    def test_utilisations_stay_in_unit_interval(self):
        sampler = self._sampled()
        for name in ("cn.util", "dpn.util.mean"):
            series = sampler.series[name]
            assert 0.0 <= series.minimum and series.maximum <= 1.0 + 1e-9

    def test_utilisations_in_range_across_warmup_reset(self):
        # the warm-up boundary resets every TimeWeighted monitor; the
        # windowed-rate probes must not emit a negative sample there
        sampler = TimeSeriesSampler(interval_ms=1_000.0)
        _run("LOW", sampler=sampler, warmup_ms=10_000.0)
        for name in ("cn.util", "dpn.util.mean", "txn.commit_rate"):
            assert sampler.series[name].minimum >= 0.0, name

    def test_cumulative_commits_monotone(self):
        series = self._sampled().series["txn.commits.cum"]
        values = [v for _t, v in series.points]
        assert values == sorted(values)
        assert values[-1] > 0

    def test_artifact_round_trips(self, tmp_path):
        sampler = self._sampled()
        path = write_series_json(sampler, tmp_path / "run.series.json")
        payload = load_series_json(path)
        assert payload["samples"] == sampler.samples_taken
        assert set(payload["series"]) == set(sampler.series)


class TestProfilerIntegration:
    def test_phases_attributed(self):
        profiler = PhaseProfiler()
        _run("LOW", profiler=profiler)
        for phase in ("des.heap", "sched.decision", "machine.scan",
                      "machine.msg", "machine.cn"):
            assert profiler.calls.get(phase, 0) > 0, phase
        assert not profiler._stack  # every push matched a pop

    def test_default_is_null_profiler(self):
        sim = Simulation(MachineConfig(), experiment1_workload(1.0))
        assert sim.env.profile is NULL_PROFILER
        assert sim.scheduler._profile is NULL_PROFILER

    def test_profiler_installed_before_components_build(self):
        profiler = PhaseProfiler()
        sim = Simulation(
            MachineConfig(), experiment1_workload(1.0), profiler=profiler
        )
        assert sim.env.profile is profiler
        assert sim.scheduler._profile is profiler


class TestEngineSamplerHook:
    def test_trailing_samples_taken_at_horizon(self):
        # a run whose events stop early must still sample to the horizon
        sampler = TimeSeriesSampler(interval_ms=1_000.0)
        _run("NODC", sampler=sampler, max_arrivals=1, duration_ms=10_000.0)
        assert sampler.samples_taken == 10

    def test_events_processed_counter(self):
        sim = Simulation(
            MachineConfig(), experiment1_workload(1.0),
            seed=1, duration_ms=20_000.0,
        )
        sim.run()
        assert sim.env.events_processed > 0
