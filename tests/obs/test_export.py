"""Exporter tests: JSONL round trip, Chrome trace shape, text summary."""

import json

from repro.obs import MemoryRecorder, render_summary, to_chrome_trace
from repro.obs.events import EVENT_KINDS
from repro.obs.export import read_jsonl, write_chrome_trace, write_jsonl
from repro.obs.schema import TRACE_SCHEMA_VERSION, validate_jsonl


def _lifecycle_recorder():
    """A tiny hand-written history exercising every span type."""
    rec = MemoryRecorder()
    e = rec.emit
    e(0.0, "txn.arrive", txn=1, label="B1")
    e(0.0, "txn.admit", txn=1)
    e(1.0, "cn.exec_start", category="startup", cost_ms=2.0)
    e(3.0, "cn.exec_end", category="startup")
    e(3.0, "txn.lock_wait", txn=2, file=5, mode="EXCLUSIVE")
    e(3.0, "txn.block", txn=2, file=5, holders=[1])
    e(4.0, "node.busy", node=0)
    e(4.0, "node.queue", node=0, depth=1)
    e(6.0, "node.idle", node=0)
    e(6.0, "txn.step_start", txn=1, file=5, step=0, cost=2.0)
    e(8.0, "txn.step_end", txn=1, file=5, step=0)
    e(8.0, "txn.lock_acquired", txn=2, file=5, wait_ms=5.0)
    e(9.0, "txn.restart", txn=2, new_txn=10, reason="deadlock")
    e(9.5, "txn.restart", txn=10, new_txn=11, reason="deadlock")
    e(10.0, "txn.commit", txn=1, response_ms=10.0)
    return rec


class TestJsonl:
    def test_round_trip_preserves_records(self, tmp_path):
        rec = _lifecycle_recorder()
        path = write_jsonl(rec.events, tmp_path / "t.jsonl", meta={"seed": 3})
        records = read_jsonl(path)
        assert len(records) == len(rec.events) + 1
        assert records[0]["kind"] == "trace.meta"
        for record, event in zip(records[1:], rec.events):
            assert record == json.loads(json.dumps(event.to_record()))

    def test_creates_parent_directories(self, tmp_path):
        path = write_jsonl([], tmp_path / "a" / "b" / "t.jsonl")
        assert path.exists()


class TestChromeTrace:
    def test_loads_as_json_and_has_tracks(self, tmp_path):
        rec = _lifecycle_recorder()
        path = write_chrome_trace(rec.events, tmp_path / "t.json",
                                  meta={"scheduler": "LOW"})
        payload = json.loads(path.read_text())
        assert payload["otherData"] == {"scheduler": "LOW"}
        events = payload["traceEvents"]
        names = {e["name"] for e in events}
        # one CN slice named by cost category, one DPN busy span,
        # one per-step scan span, one lock-wait span
        assert {"startup", "scan", "scan F5", "wait F5"} <= names
        # process/thread metadata so Perfetto labels the tracks
        metas = [e for e in events if e["ph"] == "M"]
        labels = {e["args"]["name"] for e in metas}
        assert {"machine", "transactions", "CN cpu", "DPN 0", "T1"} <= labels

    def test_span_times_are_microseconds(self):
        rec = _lifecycle_recorder()
        events = to_chrome_trace(rec.events)["traceEvents"]
        cn = next(e for e in events if e["name"] == "startup")
        assert cn["ts"] == 1000.0 and cn["dur"] == 2000.0  # 1ms..3ms

    def test_open_intervals_closed_as_truncated(self):
        rec = MemoryRecorder()
        rec.emit(0.0, "txn.admit", txn=1)
        rec.emit(2.0, "node.busy", node=3)
        rec.emit(5.0, "txn.arrive", txn=2, label="B1")  # just advances time
        events = to_chrome_trace(rec.events)["traceEvents"]
        truncated = [e for e in events
                     if e.get("args", {}).get("truncated")]
        assert {e["name"] for e in truncated} == {"active", "scan"}
        for e in truncated:
            assert e["ts"] + e["dur"] == 5.0 * 1000

    def test_empty_stream(self):
        payload = to_chrome_trace([])
        # only the process-name metadata records, no spans or instants
        assert all(e["ph"] == "M" for e in payload["traceEvents"])


class TestSummary:
    def test_mentions_blockers_waits_and_restart_chains(self):
        text = render_summary(_lifecycle_recorder().events)
        assert "1 commits" in text
        assert "T1" in text and "blocked others 1 time(s)" in text
        assert "F5" in text
        assert "1 completed waits" in text
        # two (old, new) pairs stitch into one chain of three attempts
        assert "2 restart(s) in 1 chain(s)" in text
        assert "T2 -> T10 -> T11" in text

    def test_empty_stream(self):
        text = render_summary([])
        assert "0 events" in text
        assert "no blocking observed" in text


def _one_event_of_every_kind():
    """A synthetic stream containing one record of every schema kind."""
    sample_fields = {
        "txn": 1, "new_txn": 2, "label": "B1", "file": 3, "mode": "SHARED",
        "wait_ms": 4.0, "holders": [9], "step": 0, "cost": 2.0,
        "reason": "deadlock", "response_ms": 10.0, "src": 1, "dst": 2,
        "ok": True, "consistent": True, "e_q": 0.5, "granted": True,
        "deadlock": False, "node": 0, "depth": 2, "category": "startup",
        "cost_ms": 1.5, "name": "cn.cpu", "schema": TRACE_SCHEMA_VERSION,
        "epoch": 0, "batch": 3, "queue": 1, "live": 4, "moved": 2,
        "score": 0.25, "admitted": True,
    }
    rec = MemoryRecorder()
    for t, kind in enumerate(sorted(EVENT_KINDS)):
        if kind == "trace.meta":
            continue  # written by the exporter, never emitted
        fields = {f: sample_fields[f] for f in EVENT_KINDS[kind]}
        rec.emit(float(t), kind, **fields)
    return rec


class TestEveryKind:
    """Exporters must accept the full event vocabulary, not just the
    kinds the curated lifecycle fixture happens to emit."""

    def test_stream_covers_every_kind(self):
        rec = _one_event_of_every_kind()
        assert {e.kind for e in rec.events} == set(EVENT_KINDS) - {"trace.meta"}

    def test_jsonl_round_trip_validates_every_kind(self, tmp_path):
        rec = _one_event_of_every_kind()
        path = write_jsonl(rec.events, tmp_path / "all.jsonl")
        assert validate_jsonl(path) == len(rec.events) + 1
        records = read_jsonl(path)
        assert {r["kind"] for r in records} == set(EVENT_KINDS)

    def test_chrome_trace_round_trip_every_kind(self, tmp_path):
        rec = _one_event_of_every_kind()
        path = write_chrome_trace(rec.events, tmp_path / "all.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "no Chrome records produced"
        # every record is well-formed Chrome trace JSON
        for record in events:
            assert "ph" in record and "pid" in record
            if record["ph"] in ("X", "i", "C"):
                assert record["ts"] >= 0.0
        # the instants the exporter maps must all appear
        names = {e["name"] for e in events}
        assert {"arrive", "blocked", "delayed", "restart",
                "admit rejected"} <= names
        # counter tracks from both node.queue and res.queue
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert {"dpn0 queue", "cn.cpu queue"} <= counters

    def test_summary_accepts_every_kind(self):
        text = render_summary(_one_event_of_every_kind().events)
        assert "events by kind" in text


class TestDroppedWarnings:
    """A capped recorder's dropped count must surface in every exporter."""

    def test_jsonl_meta_flags_truncation(self, tmp_path):
        rec = _lifecycle_recorder()
        path = write_jsonl(rec.events, tmp_path / "t.jsonl", dropped=7)
        meta = read_jsonl(path)[0]
        assert meta["events_dropped"] == 7
        assert meta["truncated"] is True

    def test_jsonl_meta_clean_when_nothing_dropped(self, tmp_path):
        rec = _lifecycle_recorder()
        path = write_jsonl(rec.events, tmp_path / "t.jsonl")
        meta = read_jsonl(path)[0]
        assert "truncated" not in meta

    def test_chrome_other_data_flags_truncation(self):
        rec = _lifecycle_recorder()
        payload = to_chrome_trace(rec.events, dropped=3)
        assert payload["otherData"]["events_dropped"] == 3
        assert payload["otherData"]["truncated"] is True

    def test_chrome_merges_meta_and_drop_flag(self):
        payload = to_chrome_trace([], meta={"scheduler": "LOW"}, dropped=1)
        assert payload["otherData"]["scheduler"] == "LOW"
        assert payload["otherData"]["truncated"] is True

    def test_summary_warns_on_drop(self):
        text = render_summary(_lifecycle_recorder().events, dropped=12)
        assert "WARNING" in text and "12" in text

    def test_summary_silent_without_drop(self):
        text = render_summary(_lifecycle_recorder().events)
        assert "WARNING" not in text
