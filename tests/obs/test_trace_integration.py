"""End-to-end tracing through real simulation runs.

The two load-bearing properties:

1. observation only -- a traced run returns byte-identical results to
   the same run untraced (the recorder draws no randomness and never
   touches the event queue);
2. the captured stream is schema-valid and exportable.
"""

import dataclasses
import json

import pytest

from repro.machine import MachineConfig
from repro.obs import MemoryRecorder, validate_jsonl, write_jsonl
from repro.obs.export import to_chrome_trace
from repro.obs.recorder import NULL_RECORDER
from repro.sim.simulation import Simulation, run_simulation
from repro.txn.workload import experiment1_workload

QUICK = dict(seed=2, duration_ms=40_000.0)


def _run(scheduler, recorder=None, **overrides):
    settings = dict(QUICK)
    settings.update(overrides)
    return run_simulation(
        scheduler,
        experiment1_workload(1.0),
        MachineConfig(dd=2),
        recorder=recorder,
        **settings,
    )


class TestObservationOnly:
    @pytest.mark.parametrize("scheduler", ["LOW", "GOW", "C2PL", "OPT", "2PL"])
    def test_traced_run_is_byte_identical(self, scheduler):
        untraced = _run(scheduler)
        recorder = MemoryRecorder()
        traced = _run(scheduler, recorder=recorder)
        assert dataclasses.asdict(traced) == dataclasses.asdict(untraced)
        assert len(recorder.events) > 0

    def test_tracing_twice_gives_identical_streams(self):
        first, second = MemoryRecorder(), MemoryRecorder()
        _run("LOW", recorder=first)
        _run("LOW", recorder=second)
        assert first.events == second.events


class TestDefaultOff:
    def test_environment_defaults_to_null_recorder(self):
        sim = Simulation(MachineConfig(), experiment1_workload(1.0))
        assert sim.env.trace is NULL_RECORDER
        assert sim.trace.enabled is False

    def test_recorder_installed_before_components_build(self):
        recorder = MemoryRecorder()
        sim = Simulation(
            MachineConfig(), experiment1_workload(1.0), recorder=recorder
        )
        # every component cached the live recorder at construction
        assert sim.env.trace is recorder
        assert sim.scheduler._trace is recorder
        assert sim.machine.data_nodes[0]._trace is recorder


class TestStreamContents:
    def test_timestamps_non_decreasing(self):
        recorder = MemoryRecorder()
        _run("C2PL", recorder=recorder)
        times = [e.time for e in recorder.events]
        assert times == sorted(times)

    def test_lifecycle_kinds_present(self):
        recorder = MemoryRecorder()
        _run("C2PL", recorder=recorder)
        kinds = recorder.kinds()
        for kind in ("txn.arrive", "txn.admit", "lock.grant", "lock.release",
                     "txn.step_start", "txn.step_end", "txn.commit",
                     "cn.exec_start", "cn.exec_end", "node.busy", "node.idle"):
            assert kinds.get(kind, 0) > 0, kind
        assert kinds["txn.step_start"] >= kinds["txn.step_end"]
        assert kinds["lock.grant"] >= kinds["lock.release"]

    @pytest.mark.parametrize("scheduler,kind", [
        ("GOW", "sched.chain_test"),
        ("LOW", "sched.kconflict"),
        ("LOW", "sched.e_eval"),
        ("C2PL", "sched.cycle_test"),
        ("OPT", "sched.opt_validation"),
    ])
    def test_policy_decisions_traced(self, scheduler, kind):
        recorder = MemoryRecorder()
        _run(scheduler, recorder=recorder)
        assert recorder.kinds().get(kind, 0) > 0

    def test_commit_count_matches_result(self):
        recorder = MemoryRecorder()
        result = _run("C2PL", recorder=recorder)
        assert recorder.kinds()["txn.commit"] == result.completed


class TestArtifacts:
    def test_jsonl_artifact_validates(self, tmp_path):
        recorder = MemoryRecorder()
        _run("LOW", recorder=recorder)
        path = write_jsonl(recorder.events, tmp_path / "run.jsonl",
                           meta={"scheduler": "LOW", "seed": QUICK["seed"]})
        assert validate_jsonl(path) == len(recorder.events) + 1

    def test_chrome_trace_json_serializable(self):
        recorder = MemoryRecorder()
        _run("GOW", recorder=recorder)
        payload = to_chrome_trace(recorder.events)
        parsed = json.loads(json.dumps(payload))
        assert len(parsed["traceEvents"]) > 0
        phases = {e["ph"] for e in parsed["traceEvents"]}
        assert {"X", "M"} <= phases
