"""Unit tests for the live telemetry layer (schema, sink, aggregation)."""

import json
import os
import threading

import pytest

from repro.obs.telemetry import (
    STATUS_SCHEMA_VERSION,
    TELEMETRY_EVENT_KINDS,
    TELEMETRY_SCHEMA_VERSION,
    BatchStatus,
    TelemetrySchemaError,
    TelemetrySink,
    WorkerTelemetry,
    format_telemetry_record,
    read_status,
    read_telemetry_records,
    render_status,
    telemetry_event_kinds,
    validate_telemetry_event,
    validate_telemetry_jsonl,
    write_status,
)

#: one syntactically complete example record per kind -- tests iterate
#: this so a newly added kind is covered automatically
EXAMPLES = {
    "batch.meta": {
        "schema": TELEMETRY_SCHEMA_VERSION, "batch": "b1",
        "label": "sweep", "total": 2,
    },
    "batch.done": {"status": "complete", "wall_s": 1.5},
    "run.cached": {"cell": 0},
    "run.coalesced": {"cell": 1},
    "run.start": {"cell": 0, "pid": 4242, "key": "abc", "until_ms": 1000.0},
    "run.heartbeat": {
        "cell": 0, "pid": 4242, "sim_ms": 500.0, "until_ms": 1000.0,
        "events": 128, "progress": 0.5,
    },
    "run.done": {"cell": 0, "pid": 4242, "wall_s": 0.25},
    "run.error": {"cell": 0, "error": "ValueError: boom"},
    "run.stalled": {"cell": 0, "idle_s": 3.2},
    "run.retry": {"cell": 0, "attempt": 2},
}


def test_examples_cover_every_kind():
    assert set(EXAMPLES) == set(TELEMETRY_EVENT_KINDS)
    assert telemetry_event_kinds() == tuple(sorted(TELEMETRY_EVENT_KINDS))


class TestValidator:
    @pytest.mark.parametrize("kind", sorted(TELEMETRY_EVENT_KINDS))
    def test_valid_record_roundtrips(self, kind):
        record = {"ts": 123.456, "kind": kind, **EXAMPLES[kind]}
        decoded = json.loads(json.dumps(record))
        validate_telemetry_event(decoded)  # must not raise

    @pytest.mark.parametrize("kind", sorted(TELEMETRY_EVENT_KINDS))
    def test_each_required_field_is_enforced(self, kind):
        for field in TELEMETRY_EVENT_KINDS[kind]:
            record = {"ts": 1.0, "kind": kind, **EXAMPLES[kind]}
            del record[field]
            with pytest.raises(TelemetrySchemaError):
                validate_telemetry_event(record)

    def test_rejects_unknown_kind(self):
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry_event({"ts": 1.0, "kind": "run.nope"})

    def test_rejects_missing_or_bad_ts(self):
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry_event({"kind": "run.cached", "cell": 0})
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry_event(
                {"ts": "now", "kind": "run.cached", "cell": 0}
            )
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry_event(
                {"ts": -5.0, "kind": "run.cached", "cell": 0}
            )

    def test_rejects_missing_kind(self):
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry_event({"ts": 1.0})


class TestStreamValidator:
    def _write(self, path, records):
        with path.open("w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def _meta(self, **overrides):
        record = {
            "ts": 1.0, "kind": "batch.meta", **EXAMPLES["batch.meta"],
        }
        record.update(overrides)
        return record

    def test_valid_stream_counts_records(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        self._write(path, [
            self._meta(),
            {"ts": 2.0, "kind": "run.start", **EXAMPLES["run.start"]},
            {"ts": 3.0, "kind": "run.done", **EXAMPLES["run.done"]},
            {"ts": 4.0, "kind": "batch.done", **EXAMPLES["batch.done"]},
        ])
        assert validate_telemetry_jsonl(path) == 4

    def test_first_record_must_be_meta(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        self._write(path, [
            {"ts": 2.0, "kind": "run.start", **EXAMPLES["run.start"]},
        ])
        with pytest.raises(TelemetrySchemaError, match="batch.meta"):
            validate_telemetry_jsonl(path)

    def test_schema_version_is_checked(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        self._write(path, [self._meta(schema=999)])
        with pytest.raises(TelemetrySchemaError, match="schema"):
            validate_telemetry_jsonl(path)

    def test_rejects_malformed_json_with_line_number(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            json.dumps(self._meta()) + "\n" + "{not json\n"
        )
        with pytest.raises(TelemetrySchemaError, match=":2"):
            validate_telemetry_jsonl(path)

    def test_rejects_empty_stream(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text("")
        with pytest.raises(TelemetrySchemaError, match="empty"):
            validate_telemetry_jsonl(path)

    def test_interleaved_timestamps_are_legal(self, tmp_path):
        # wall clocks of concurrent workers interleave; ts need not be
        # monotone (unlike the simulated clock of trace files)
        path = tmp_path / "telemetry.jsonl"
        self._write(path, [
            self._meta(ts=5.0),
            {"ts": 4.0, "kind": "run.start", **EXAMPLES["run.start"]},
            {"ts": 3.0, "kind": "run.done", **EXAMPLES["run.done"]},
        ])
        assert validate_telemetry_jsonl(path) == 3


class TestSinkAndTailer:
    def test_emit_appends_validated_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = TelemetrySink(path)
        sink.emit("batch.meta", **EXAMPLES["batch.meta"])
        sink.emit("run.cached", cell=0)
        sink.close()
        assert validate_telemetry_jsonl(path) == 2

    def test_after_emit_hook_sees_each_record(self, tmp_path):
        seen = []
        sink = TelemetrySink(
            tmp_path / "t.jsonl", after_emit=seen.append
        )
        sink.emit("run.cached", cell=3)
        sink.close()
        assert len(seen) == 1 and seen[0]["cell"] == 3

    def test_tailer_is_incremental(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TelemetrySink(path)
        sink.emit("run.cached", cell=0)
        records, offset = read_telemetry_records(path, 0)
        assert [r["cell"] for r in records] == [0]
        sink.emit("run.cached", cell=1)
        records, offset = read_telemetry_records(path, offset)
        assert [r["cell"] for r in records] == [1]
        records, offset2 = read_telemetry_records(path, offset)
        assert records == [] and offset2 == offset
        sink.close()

    def test_tailer_leaves_partial_line_for_next_call(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ts": 1.0, "kind": "run.cached", "cell": 0}\n'
                        '{"ts": 2.0, "kind": "run.')
        records, offset = read_telemetry_records(path, 0)
        assert len(records) == 1
        with path.open("a") as handle:
            handle.write('cached", "cell": 1}\n')
        records, _ = read_telemetry_records(path, offset)
        assert [r["cell"] for r in records] == [1]

    def test_tailer_survives_missing_file(self, tmp_path):
        records, offset = read_telemetry_records(tmp_path / "nope", 7)
        assert records == [] and offset == 7

    def test_concurrent_thread_emits_never_tear(self, tmp_path):
        path = tmp_path / "t.jsonl"

        def writer(cell):
            sink = TelemetrySink(path)
            for _ in range(50):
                sink.emit("run.cached", cell=cell)
            sink.close()

        threads = [
            threading.Thread(target=writer, args=(c,)) for c in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records, _ = read_telemetry_records(path, 0)
        assert len(records) == 200
        for record in records:
            validate_telemetry_event(record)


class TestWorkerTelemetry:
    def test_lifecycle_emits_start_heartbeat_done(self, tmp_path):
        path = tmp_path / "t.jsonl"
        worker = WorkerTelemetry(
            str(path), cell=2, until_ms=1000.0, key="k", label="cell-2",
            heartbeat_s=0.0,
        )
        worker.start()
        worker._on_progress(250.0, 64)
        worker._on_progress(750.0, 192)
        worker.done(wall_s=0.5, events=256)
        records = read_telemetry_records(path, 0)[0]
        assert [r["kind"] for r in records] == [
            "run.start", "run.heartbeat", "run.heartbeat", "run.done",
        ]
        assert records[1]["progress"] == 0.25
        assert records[2]["progress"] == 0.75
        assert all(r["cell"] == 2 for r in records)
        assert all(r["pid"] == os.getpid() for r in records)

    def test_heartbeats_throttled_by_wall_clock(self, tmp_path):
        path = tmp_path / "t.jsonl"
        worker = WorkerTelemetry(
            str(path), cell=0, until_ms=1000.0, heartbeat_s=3600.0,
        )
        worker.start()
        for step in range(10):
            worker._on_progress(step * 100.0, step * 10)
        records = read_telemetry_records(path, 0)[0]
        assert [r["kind"] for r in records] == ["run.start"]

    def test_error_carries_message_and_traceback(self, tmp_path):
        path = tmp_path / "t.jsonl"
        worker = WorkerTelemetry(str(path), cell=0, until_ms=1.0)
        try:
            raise ValueError("boom")
        except ValueError as exc:
            worker.error(exc)
        (record,) = read_telemetry_records(path, 0)[0]
        assert record["error"] == "ValueError: boom"
        assert "ValueError" in record["traceback"]

    def test_install_hooks_engine_progress(self, tmp_path):
        from repro.des.engine import Environment

        worker = WorkerTelemetry(
            str(tmp_path / "t.jsonl"), cell=0, until_ms=10_000.0,
            heartbeat_s=0.0, progress_every=2,
        )
        env = Environment()
        worker.install(env)
        assert env.progress_every == 2
        for delay in range(6):
            env.timeout(float(delay))
        env.run()
        records = read_telemetry_records(tmp_path / "t.jsonl", 0)[0]
        assert [r["kind"] for r in records].count("run.heartbeat") >= 2


def _cells(n, until_ms=1000.0):
    return [
        {"cell": i, "key": f"k{i}", "label": f"cell-{i}",
         "until_ms": until_ms}
        for i in range(n)
    ]


class TestBatchStatus:
    def test_full_lifecycle_to_complete(self):
        status = BatchStatus("b1", "sweep", _cells(3))
        status.consume({"ts": 1.0, "kind": "run.cached", "cell": 0})
        status.consume({"ts": 1.0, "kind": "run.start", "cell": 1,
                        "pid": 11, "key": "k1", "until_ms": 1000.0})
        status.consume({"ts": 2.0, "kind": "run.heartbeat", "cell": 1,
                        "pid": 11, "sim_ms": 400.0, "until_ms": 1000.0,
                        "events": 100, "progress": 0.4})
        snap = status.snapshot()
        assert snap["status"] == "running"
        assert snap["counts"]["cached"] == 1
        assert snap["counts"]["running"] == 1
        assert snap["counts"]["pending"] == 1
        assert snap["workers"] == [{"pid": 11, "cell": 1}]
        assert snap["progress"] == pytest.approx((1.0 + 0.4 + 0.0) / 3)
        status.consume({"ts": 3.0, "kind": "run.done", "cell": 1,
                        "pid": 11, "wall_s": 0.2})
        status.consume({"ts": 3.5, "kind": "run.coalesced", "cell": 2})
        status.consume({"ts": 4.0, "kind": "batch.done",
                        "status": "complete", "wall_s": 3.0})
        snap = status.snapshot()
        assert snap["status"] == "complete"
        assert snap["progress"] == 1.0
        assert snap["counts"]["done"] == 2

    def test_ewma_and_eta_from_heartbeats(self):
        status = BatchStatus("b1", "sweep", _cells(1, until_ms=10_000.0))
        status.consume({"ts": 10.0, "kind": "run.start", "cell": 0,
                        "pid": 5, "key": "k", "until_ms": 10_000.0})
        status.consume({"ts": 11.0, "kind": "run.heartbeat", "cell": 0,
                        "pid": 5, "sim_ms": 1000.0, "until_ms": 10_000.0,
                        "events": 500, "progress": 0.1})
        status.consume({"ts": 12.0, "kind": "run.heartbeat", "cell": 0,
                        "pid": 5, "sim_ms": 2000.0, "until_ms": 10_000.0,
                        "events": 1000, "progress": 0.2})
        snap = status.snapshot()
        # 500 events/s and 1000 sim-ms/s -> 8000 remaining ms / 1000
        assert snap["ewma_events_per_s"] == pytest.approx(500.0, rel=0.01)
        assert snap["eta_s"] == pytest.approx(8.0, rel=0.01)

    def test_stalled_candidates_and_recovery(self):
        status = BatchStatus("b1", "sweep", _cells(2))
        status.consume({"ts": 100.0, "kind": "run.start", "cell": 0,
                        "pid": 5, "key": "k", "until_ms": 1000.0})
        # cell 1 still pending: never a stall candidate
        assert status.stalled_candidates(10.0, now=105.0) == []
        assert status.stalled_candidates(10.0, now=111.0) == [0]
        status.consume({"ts": 111.0, "kind": "run.stalled", "cell": 0,
                        "idle_s": 11.0})
        assert status.cells[0]["state"] == "stalled"
        # a late heartbeat proves it was merely slow
        status.consume({"ts": 112.0, "kind": "run.heartbeat", "cell": 0,
                        "pid": 5, "sim_ms": 1.0, "until_ms": 1000.0,
                        "events": 1, "progress": 0.001})
        assert status.cells[0]["state"] == "running"
        assert status.stalled_candidates(10.0, now=113.0) == []

    def test_retry_resets_cell_and_attempt_counts(self):
        status = BatchStatus("b1", "sweep", _cells(1))
        status.consume({"ts": 1.0, "kind": "run.start", "cell": 0,
                        "pid": 5, "key": "k", "until_ms": 1000.0})
        status.consume({"ts": 2.0, "kind": "run.retry", "cell": 0,
                        "attempt": 2})
        assert status.cells[0]["state"] == "pending"
        assert status.cells[0]["pid"] is None
        status.consume({"ts": 3.0, "kind": "run.start", "cell": 0,
                        "pid": 6, "key": "k", "until_ms": 1000.0})
        assert status.cells[0]["attempt"] == 2

    def test_error_marks_cell_failed(self):
        status = BatchStatus("b1", "sweep", _cells(1))
        status.consume({"ts": 1.0, "kind": "run.error", "cell": 0,
                        "error": "ValueError: boom"})
        snap = status.snapshot()
        assert snap["counts"]["failed"] == 1
        assert snap["cells"][0]["error"] == "ValueError: boom"

    def test_ignores_out_of_range_cells(self):
        status = BatchStatus("b1", "sweep", _cells(1))
        status.consume({"ts": 1.0, "kind": "run.cached", "cell": 99})
        assert status.snapshot()["counts"]["pending"] == 1


class TestStatusFile:
    def test_write_read_roundtrip(self, tmp_path):
        status = BatchStatus("b1", "sweep", _cells(2))
        path = status.write(tmp_path / "status.json")
        snap = read_status(path)
        assert snap["schema"] == STATUS_SCHEMA_VERSION
        assert snap["batch"] == "b1"
        assert len(snap["cells"]) == 2

    def test_no_temp_litter_after_write(self, tmp_path):
        write_status({"schema": STATUS_SCHEMA_VERSION}, tmp_path / "s.json")
        assert [p.name for p in tmp_path.iterdir()] == ["s.json"]

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            read_status(path)


class TestRendering:
    def _snapshot(self):
        status = BatchStatus("b1", "sweep", _cells(2))
        status.consume({"ts": 1.0, "kind": "run.start", "cell": 0,
                        "pid": 7, "key": "k0", "until_ms": 1000.0})
        status.consume({"ts": 2.0, "kind": "run.error", "cell": 1,
                        "error": "ValueError: boom"})
        return status.snapshot()

    def test_render_status_mentions_cells_and_states(self):
        frame = render_status(self._snapshot())
        assert "b1" in frame
        assert "pid=7" in frame
        assert "failed" in frame
        assert "ValueError" in frame

    @pytest.mark.parametrize("kind", sorted(TELEMETRY_EVENT_KINDS))
    def test_format_covers_every_kind(self, kind):
        line = format_telemetry_record(
            {"ts": 1700000000.0, "kind": kind, **EXAMPLES[kind]}
        )
        assert kind in line


class TestPeakRss:
    def test_max_rss_kb_reports_a_sane_figure(self):
        from repro.obs.telemetry import max_rss_kb

        rss = max_rss_kb()
        # this test process has the interpreter + pytest resident, so
        # anything from a few MB to a few GB is plausible
        assert rss is not None
        assert 1_000 < rss < 64 * 1024 * 1024

    def test_heartbeat_and_done_carry_maxrss(self, tmp_path):
        path = tmp_path / "t.jsonl"
        worker = WorkerTelemetry(
            str(path), cell=0, until_ms=1000.0, heartbeat_s=0.0,
        )
        worker.start()
        worker._on_progress(500.0, 32)
        worker.done(wall_s=0.1, events=64)
        records = read_telemetry_records(path, 0)[0]
        by_kind = {r["kind"]: r for r in records}
        assert by_kind["run.heartbeat"]["maxrss_kb"] > 0
        assert by_kind["run.done"]["maxrss_kb"] > 0
        # optional field: the stream still validates
        for record in records:
            validate_telemetry_event(record)
