"""Renderer edge cases feeding the history dashboard: sparkline and
series reports with empty / single-sample / all-equal inputs, histogram
export with zero observations."""

import json
import math

from repro.obs.timeseries import (
    FixedHistogram,
    LogHistogram,
    SERIES_SCHEMA_VERSION,
    render_series_report,
    sparkline,
    validate_series,
)


class TestSparklineEdges:
    def test_empty_series(self):
        assert sparkline([]) == "(no samples)"

    def test_all_nan_series(self):
        assert sparkline([math.nan, math.nan]) == "(no samples)"

    def test_single_sample_renders_one_cell(self):
        line = sparkline([42.0])
        assert len(line) == 1
        assert line == "▁"  # zero span maps to the lowest level

    def test_all_equal_series_stays_flat(self):
        line = sparkline([7.0] * 5)
        assert line == "▁▁▁▁▁"

    def test_nan_gaps_render_as_spaces(self):
        line = sparkline([1.0, math.nan, 2.0])
        assert line == "▁ █"

    def test_downsampling_respects_width(self):
        line = sparkline(list(range(1000)), width=10)
        assert len(line) == 10
        # bucket means compress the extremes: ends near, not at, the rails
        assert line[0] == "▁" and line[-1] in "▇█"

    def test_negative_and_zero_values(self):
        line = sparkline([-5.0, 0.0, 5.0])
        assert line[0] == "▁" and line[-1] == "█"


def series_payload(points, stats=None):
    body = {
        "unit": "", "points": points,
        "min": math.nan, "mean": math.nan, "max": math.nan,
        "last": math.nan, "count": len(points), "dropped": 0,
    }
    if stats:
        body.update(stats)
    return {
        "schema": SERIES_SCHEMA_VERSION,
        "interval_ms": 100.0,
        "samples": len(points),
        "meta": {},
        "series": {"probe": body},
    }


class TestSeriesReportEdges:
    def test_no_series_at_all(self):
        payload = series_payload([])
        payload["series"] = {}
        text = render_series_report(payload)
        assert "(no series sampled)" in text

    def test_empty_points_render_without_crashing(self):
        text = render_series_report(series_payload([]))
        assert "(no samples)" in text
        assert "probe" in text

    def test_single_sample_series(self):
        text = render_series_report(series_payload(
            [[0.0, 3.5]],
            stats={"min": 3.5, "mean": 3.5, "max": 3.5, "last": 3.5},
        ))
        assert "min=3.5" in text and "last=3.5" in text

    def test_all_equal_series(self):
        points = [[float(i), 2.0] for i in range(4)]
        text = render_series_report(series_payload(
            points, stats={"min": 2.0, "mean": 2.0, "max": 2.0,
                           "last": 2.0},
        ))
        assert "▁▁▁▁" in text


class TestHistogramZeroObservations:
    def test_fixed_histogram_exports_empty(self):
        histogram = FixedHistogram(0.0, 10.0, bins=4)
        exported = histogram.to_dict()
        assert exported["counts"] == [0, 0, 0, 0]
        assert exported["underflow"] == 0
        assert exported["overflow"] == 0
        assert len(exported["edges"]) == 5
        json.dumps(exported)  # JSON-serialisable as-is

    def test_log_histogram_exports_empty(self):
        histogram = LogHistogram(lo=1.0, decades=2, bins_per_decade=1)
        exported = histogram.to_dict()
        assert exported["counts"] == [0, 0]
        assert exported["underflow"] == 0
        assert exported["overflow"] == 0
        json.dumps(exported)

    def test_empty_series_payload_still_validates(self):
        validate_series(series_payload([]))
