"""History store: ingest, dedup, family detection, schema gate."""

import json

import pytest

from repro.bench import bench_payload
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    HistorySchemaError,
    HistoryStore,
    artifact_digest,
    detect_family,
    extract_records,
    validate_history_record,
)


def bench_rows(n_cells, events_per_s=100_000.0, maxrss_kb=None):
    rows = []
    for i in range(n_cells):
        events = int(events_per_s)
        row = {
            "scheduler": f"S{i}", "workload": {"kind": "exp1",
                                               "rate_tps": 1.0},
            "dd": 1, "seed": 0, "duration_ms": 1_000.0, "warmup_ms": 0.0,
            "repeats": 1, "wall_s": events / events_per_s,
            "events": events, "events_per_s": events_per_s,
            "wall_per_sim_s": 1.0,
            "profile": {"phases": {}, "total_s": 1.0, "other_s": 1.0},
            "completed": 1, "throughput_tps": 1.0,
        }
        if maxrss_kb is not None:
            row["maxrss_kb"] = maxrss_kb
        rows.append(row)
    return rows


def write_bench(path, n_cells=2, events_per_s=100_000.0, created=None,
                maxrss_kb=None):
    payload = bench_payload(
        bench_rows(n_cells, events_per_s, maxrss_kb=maxrss_kb),
        git_sha="cafe1234",
    )
    if created is not None:
        payload["created"] = created
    path.write_text(json.dumps(payload), encoding="utf-8")
    return payload


def arena_cell(scheduler="NODC", throughput=10.0, with_budget=False):
    cell = {
        "scheduler": scheduler, "family": "paper", "workload": "exp1",
        "rate_tps": 0.8, "dd": 1, "seed": 0, "duration_ms": 1000.0,
        "completed": 5, "throughput_tps": throughput,
        "mean_response_s": 0.5, "p95_response_s": 0.9, "abort_rate": 0.1,
        "blocks": 0, "delays": 0, "restarts": 0,
        "admission_rejections": 0,
        "cn_utilisation": 0.5, "dpn_utilisation": 0.5,
    }
    if with_budget:
        cell["time_budget"] = {
            "queued_ms": 100.0, "blocked_ms": 50.0,
            "executing_ms": 800.0, "wasted_ms": 50.0,
            "total_ms": 1000.0,
            "fractions": {"queued": 0.1, "blocked": 0.05,
                          "executing": 0.8, "wasted": 0.05},
        }
    return cell


def write_arena(path, with_budget=False):
    payload = {
        "schema_version": 1, "schema": 1, "kind": "arena",
        "cells": [arena_cell(with_budget=with_budget)],
        "failed_cells": 0,
        "created": "2026-08-08T10:00:00Z", "git_sha": "beef5678",
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return payload


def write_explain(path):
    payload = {
        "schema": 1, "kind": "explain",
        "source": {"scheduler": "GOW", "workload": "exp1",
                   "rate_tps": 0.8, "seed": 0, "duration_ms": 1000.0},
        "budget": {
            "queued_ms": 10.0, "blocked_ms": 5.0, "executing_ms": 80.0,
            "wasted_ms": 5.0, "total_ms": 100.0, "makespan_ms": 90.0,
            "mean_response_ms": 20.0, "transactions": 5, "committed": 5,
            "restarts": 0, "in_flight": 0,
            "fractions": {"queued": 0.1, "blocked": 0.05,
                          "executing": 0.8, "wasted": 0.05},
        },
        "hotspots": [], "critical_path": [], "blocking_edges": [],
        "anomalies": [], "transactions": [],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return payload


def write_telemetry(path):
    records = [
        {"schema": 1, "ts": 1.0, "kind": "batch.meta", "batch": "b-1",
         "label": "t", "total": 2},
        {"schema": 1, "ts": 2.0, "kind": "run.heartbeat", "batch": "b-1",
         "cell": 0, "host": "hostA", "maxrss_kb": 50_000},
        {"schema": 1, "ts": 3.0, "kind": "run.done", "batch": "b-1",
         "cell": 1, "host": "hostB", "maxrss_kb": 70_000},
    ]
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
    )


class TestDetectFamily:
    def test_detects_each_family(self, tmp_path):
        write_bench(tmp_path / "b.json")
        write_arena(tmp_path / "a.json")
        write_explain(tmp_path / "e.json")
        write_telemetry(tmp_path / "t.jsonl")
        assert detect_family(tmp_path / "b.json") == "bench"
        assert detect_family(tmp_path / "a.json") == "arena"
        assert detect_family(tmp_path / "e.json") == "explain"
        assert detect_family(tmp_path / "t.jsonl") == "telemetry"

    def test_rejects_unknown_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"what": "ever"}', encoding="utf-8")
        with pytest.raises(ValueError, match="unrecognised"):
            detect_family(path)

    def test_rejects_non_telemetry_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "txn.arrive"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a telemetry stream"):
            detect_family(path)


class TestExtract:
    def test_bench_rows_become_cell_records(self, tmp_path):
        write_bench(tmp_path / "b.json", n_cells=3, maxrss_kb=42_000)
        family, records = extract_records(tmp_path / "b.json")
        assert family == "bench"
        assert len(records) == 3
        record = records[0]
        assert record["kind"] == "bench.cell"
        assert record["history_schema_version"] == HISTORY_SCHEMA_VERSION
        assert record["git_sha"] == "cafe1234"
        assert record["cell"]["scheduler"] == "S0"
        assert record["cell"]["workload"] == "exp1"
        assert record["metrics"]["events_per_s"] == 100_000.0
        assert record["metrics"]["maxrss_kb"] == 42_000
        assert record["snapshot"] == artifact_digest(tmp_path / "b.json")

    def test_arena_cells_carry_time_budget_shares(self, tmp_path):
        write_arena(tmp_path / "a.json", with_budget=True)
        _family, records = extract_records(tmp_path / "a.json")
        assert records[0]["kind"] == "arena.cell"
        assert records[0]["metrics"]["executing_share"] == 0.8
        assert records[0]["metrics"]["throughput_tps"] == 10.0

    def test_explain_budget_record(self, tmp_path):
        write_explain(tmp_path / "e.json")
        _family, records = extract_records(tmp_path / "e.json")
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "explain.budget"
        assert record["cell"]["scheduler"] == "GOW"
        assert record["metrics"]["queued_share"] == 0.1
        assert record["metrics"]["total_ms"] == 100.0

    def test_telemetry_peak_is_the_high_water_mark(self, tmp_path):
        write_telemetry(tmp_path / "t.jsonl")
        _family, records = extract_records(tmp_path / "t.jsonl")
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "telemetry.peak"
        assert record["metrics"]["maxrss_kb"] == 70_000
        assert record["metrics"]["batch"] == "b-1"
        assert record["host"] == "hostA,hostB"

    def test_family_override_must_be_known(self, tmp_path):
        write_bench(tmp_path / "b.json")
        with pytest.raises(ValueError, match="unknown artifact family"):
            extract_records(tmp_path / "b.json", family="nope")

    def test_invalid_bench_payload_is_rejected(self, tmp_path):
        payload = write_bench(tmp_path / "b.json")
        payload["schema_version"] = 999
        payload["bench_schema_version"] = 999
        (tmp_path / "bad.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="unknown bench schema_version"):
            extract_records(tmp_path / "bad.json", family="bench")


class TestStore:
    def test_ingest_appends_and_dedups(self, tmp_path):
        store = HistoryStore(tmp_path / "history")
        write_bench(tmp_path / "b.json", n_cells=2)
        outcome = store.ingest(tmp_path / "b.json")
        assert outcome == {
            "family": "bench",
            "snapshot": artifact_digest(tmp_path / "b.json"),
            "added": 2,
            "skipped": False,
        }
        again = store.ingest(tmp_path / "b.json")
        assert again["skipped"] is True
        assert again["added"] == 0
        assert len(store.records()) == 2

    def test_different_artifacts_accumulate(self, tmp_path):
        store = HistoryStore(tmp_path / "history")
        write_bench(tmp_path / "b1.json", events_per_s=100_000.0,
                    created="2026-01-01T00:00:00Z")
        write_bench(tmp_path / "b2.json", events_per_s=120_000.0,
                    created="2026-01-02T00:00:00Z")
        write_arena(tmp_path / "a.json")
        for name in ("b1.json", "b2.json", "a.json"):
            store.ingest(tmp_path / name)
        records = store.records()
        assert len(records) == 5  # 2 + 2 bench cells + 1 arena cell
        assert len(store.snapshots()) == 3

    def test_empty_store_reads_as_empty(self, tmp_path):
        store = HistoryStore(tmp_path / "nowhere")
        assert store.records() == []
        assert store.snapshots() == set()

    def test_append_validates(self, tmp_path):
        store = HistoryStore(tmp_path / "history")
        with pytest.raises(HistorySchemaError):
            store.append([{"history_schema_version": 999}])
        assert not store.path.exists()

    def test_load_rejects_unknown_schema_version(self, tmp_path):
        store = HistoryStore(tmp_path / "history")
        write_bench(tmp_path / "b.json")
        store.ingest(tmp_path / "b.json")
        record = json.loads(store.path.read_text().splitlines()[0])
        record["history_schema_version"] = 999
        store.path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        with pytest.raises(HistorySchemaError, match="history_schema_version"):
            store.records()

    def test_load_pinpoints_corrupt_lines(self, tmp_path):
        store = HistoryStore(tmp_path / "history")
        write_bench(tmp_path / "b.json", n_cells=1)
        store.ingest(tmp_path / "b.json")
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(HistorySchemaError, match=":2"):
            store.records()


class TestRecordValidation:
    def test_round_trip(self, tmp_path):
        write_bench(tmp_path / "b.json", n_cells=1)
        _family, records = extract_records(tmp_path / "b.json")
        validate_history_record(records[0])

    def test_cellless_kinds_allow_null_cell(self):
        validate_history_record({
            "history_schema_version": HISTORY_SCHEMA_VERSION,
            "kind": "telemetry.peak", "family": "telemetry",
            "snapshot": "abc", "source": "t.jsonl", "created": None,
            "git_sha": None, "host": None, "cell": None,
            "metrics": {"maxrss_kb": 1},
        })

    def test_cell_kinds_require_scheduler(self):
        with pytest.raises(HistorySchemaError, match="scheduler"):
            validate_history_record({
                "history_schema_version": HISTORY_SCHEMA_VERSION,
                "kind": "bench.cell", "family": "bench",
                "snapshot": "abc", "source": "b.json", "created": None,
                "git_sha": None, "host": None, "cell": {},
                "metrics": {},
            })

    def test_unknown_kind_rejected(self):
        with pytest.raises(HistorySchemaError, match="kind"):
            validate_history_record({
                "history_schema_version": HISTORY_SCHEMA_VERSION,
                "kind": "mystery", "family": "bench",
                "snapshot": "abc", "source": "b.json", "created": None,
                "git_sha": None, "host": None, "cell": None,
                "metrics": {},
            })
