"""Unit tests for the trace recorders."""

import pytest

from repro.obs import NULL_RECORDER, MemoryRecorder, NullRecorder, TraceRecorder
from repro.obs.events import TraceEvent


class TestNullRecorder:
    def test_disabled_by_default(self):
        assert NullRecorder().enabled is False
        assert NULL_RECORDER.enabled is False

    def test_enabled_is_class_attribute(self):
        """The hot-path guard reads a class attribute, not a slot."""
        assert "enabled" not in NullRecorder.__slots__
        assert NullRecorder.enabled is False

    def test_emit_is_noop(self):
        NULL_RECORDER.emit(1.0, "txn.arrive", txn=1, label="B1")

    def test_base_protocol_disabled(self):
        assert TraceRecorder.enabled is False


class TestMemoryRecorder:
    def test_enabled(self):
        assert MemoryRecorder().enabled is True

    def test_buffers_in_order(self):
        rec = MemoryRecorder()
        rec.emit(1.0, "txn.arrive", txn=1, label="B1")
        rec.emit(2.0, "txn.admit", txn=1)
        assert len(rec) == 2
        assert rec.events[0] == TraceEvent(1.0, "txn.arrive", {"txn": 1, "label": "B1"})
        assert rec.events[1].kind == "txn.admit"

    def test_max_events_drops_not_evicts(self):
        rec = MemoryRecorder(max_events=2)
        for i in range(5):
            rec.emit(float(i), "txn.admit", txn=i)
        assert len(rec) == 2
        assert rec.dropped == 3
        # the *prefix* is retained, so the history has no gaps
        assert [e.time for e in rec.events] == [0.0, 1.0]

    def test_max_events_validation(self):
        with pytest.raises(ValueError):
            MemoryRecorder(max_events=0)

    def test_clear(self):
        rec = MemoryRecorder(max_events=1)
        rec.emit(0.0, "txn.admit", txn=1)
        rec.emit(1.0, "txn.admit", txn=2)
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0
        rec.emit(2.0, "txn.admit", txn=3)
        assert len(rec) == 1

    def test_kinds_counts(self):
        rec = MemoryRecorder()
        rec.emit(0.0, "txn.admit", txn=1)
        rec.emit(1.0, "txn.admit", txn=2)
        rec.emit(2.0, "txn.commit", txn=1, response_ms=5.0)
        assert rec.kinds() == {"txn.admit": 2, "txn.commit": 1}
