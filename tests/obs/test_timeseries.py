"""Unit tests for the time-series sampler, histograms and exports."""

import json
import math

import pytest

from repro.obs.timeseries import (
    DEFAULT_MAX_POINTS,
    FixedHistogram,
    LogHistogram,
    Series,
    TimeSeriesSampler,
    gauge,
    load_series_json,
    render_series_report,
    sparkline,
    validate_series,
    windowed_rate,
    write_series_csv,
    write_series_json,
)


class TestFixedHistogram:
    def test_bins_values_with_under_and_overflow(self):
        hist = FixedHistogram(0.0, 1.0, bins=4)
        for value in (-0.1, 0.0, 0.24, 0.25, 0.5, 0.99, 1.0, 2.0):
            hist.observe(value)
        assert hist.underflow == 1
        assert hist.overflow == 2  # 1.0 is exclusive
        assert hist.counts == [2, 1, 1, 1]

    def test_edges_span_the_range(self):
        hist = FixedHistogram(0.0, 2.0, bins=4)
        assert hist.edges() == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_rejects_degenerate_ranges(self):
        with pytest.raises(ValueError):
            FixedHistogram(1.0, 1.0)
        with pytest.raises(ValueError):
            FixedHistogram(0.0, 1.0, bins=0)


class TestLogHistogram:
    def test_zero_lands_in_underflow(self):
        hist = LogHistogram(lo=1.0, decades=2, bins_per_decade=1)
        hist.observe(0.0)
        assert hist.underflow == 1 and sum(hist.counts) == 0

    def test_geometric_binning(self):
        hist = LogHistogram(lo=1.0, decades=3, bins_per_decade=1)
        for value in (1.0, 5.0, 10.0, 99.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]
        hist.observe(1e6)
        assert hist.overflow == 1

    def test_edges_are_geometric(self):
        hist = LogHistogram(lo=1.0, decades=2, bins_per_decade=1)
        assert hist.edges() == pytest.approx([1.0, 10.0, 100.0])


class TestSeries:
    def test_streaming_stats_over_all_samples(self):
        series = Series("s", unit="txn", max_points=2)
        for t, v in ((1.0, 5.0), (2.0, 1.0), (3.0, 3.0)):
            series.record(t, v)
        # the ring kept only the 2 newest points...
        assert list(series.points) == [(2.0, 1.0), (3.0, 3.0)]
        # ...but the statistics cover every sample
        assert series.count == 3
        assert series.mean == pytest.approx(3.0)
        assert series.minimum == 1.0 and series.maximum == 5.0
        assert series.last == 3.0

    def test_empty_series_reports_nan(self):
        series = Series("s")
        assert math.isnan(series.mean)


class TestSampler:
    def test_advance_takes_all_due_samples(self):
        sampler = TimeSeriesSampler(interval_ms=10.0)
        values = iter(range(100))
        sampler.add_probe("x", lambda t: float(next(values)))
        sampler.advance_to(35.0)  # boundaries 10, 20, 30
        assert sampler.samples_taken == 3
        assert sampler.next_due == 40.0
        assert list(sampler.series["x"].points) == [
            (10.0, 0.0), (20.0, 1.0), (30.0, 2.0)
        ]

    def test_probe_receives_boundary_time_not_event_time(self):
        sampler = TimeSeriesSampler(interval_ms=10.0)
        seen = []
        sampler.add_probe("t", lambda t: seen.append(t) or t)
        sampler.advance_to(25.0)
        assert seen == [10.0, 20.0]

    def test_duplicate_probe_name_rejected(self):
        sampler = TimeSeriesSampler()
        sampler.add_probe("x", lambda t: 0.0)
        with pytest.raises(ValueError):
            sampler.add_probe("x", lambda t: 0.0)

    def test_default_ring_capacity(self):
        sampler = TimeSeriesSampler(interval_ms=1.0)
        series = sampler.add_probe("x", lambda t: t)
        assert series.points.maxlen == DEFAULT_MAX_POINTS

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(interval_ms=0.0)


class TestProbeHelpers:
    def test_gauge_reads_current_value(self):
        box = {"v": 7}
        probe = gauge(lambda: box["v"])
        assert probe(123.0) == 7.0
        box["v"] = 9
        assert probe(456.0) == 9.0

    def test_windowed_rate_diffs_the_integral(self):
        # integral grows 2 units/ms until t=10, then stalls
        probe = windowed_rate(lambda t: min(t, 10.0) * 2.0)
        assert probe(5.0) == pytest.approx(2.0)
        assert probe(10.0) == pytest.approx(2.0)
        assert probe(20.0) == pytest.approx(0.0)

    def test_windowed_rate_scale(self):
        probe = windowed_rate(lambda t: t, scale=1000.0)
        assert probe(4.0) == pytest.approx(1000.0)

    def test_windowed_rate_survives_monitor_reset(self):
        # a warm-up reset shrinks the integral mid-window; the probe
        # must fall back to the post-reset accumulation, never negative
        areas = iter([10.0, 2.0, 7.0])
        probe = windowed_rate(lambda t: next(areas))
        assert probe(10.0) == pytest.approx(1.0)   # normal window
        assert probe(20.0) == pytest.approx(0.2)   # reset: 2.0 since it
        assert probe(30.0) == pytest.approx(0.5)   # back to diffing


class TestExport:
    def _sampler(self):
        sampler = TimeSeriesSampler(interval_ms=5.0)
        sampler.add_probe("a", lambda t: t * 2.0, unit="ms")
        sampler.add_probe("b", lambda t: 1.0)
        sampler.advance_to(20.0)
        return sampler

    def test_json_round_trip_validates(self, tmp_path):
        sampler = self._sampler()
        path = write_series_json(
            sampler, tmp_path / "s.json", meta={"scheduler": "LOW"}
        )
        payload = load_series_json(path)
        assert payload["samples"] == 4
        assert payload["meta"]["scheduler"] == "LOW"
        assert payload["series"]["a"]["points"] == [
            [5.0, 10.0], [10.0, 20.0], [15.0, 30.0], [20.0, 40.0]
        ]

    def test_csv_is_long_format(self, tmp_path):
        path = write_series_csv(self._sampler(), tmp_path / "s.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "series,t_ms,value"
        assert lines[1] == "a,5,10"
        assert len(lines) == 1 + 2 * 4

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            validate_series({"schema": 999, "series": {}})

    def test_validate_rejects_malformed_points(self):
        payload = {
            "schema": 1,
            "series": {"x": {"count": 1, "points": [[1.0]]}},
        }
        with pytest.raises(ValueError):
            validate_series(payload)

    def test_load_rejects_corrupted_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ValueError):
            load_series_json(path)


class TestSparkline:
    def test_constant_series_renders_flat(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_range_maps_to_levels(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=10)) == 10

    def test_empty_series(self):
        assert sparkline([]) == "(no samples)"


class TestReport:
    def test_report_contains_every_series(self, tmp_path):
        sampler = TimeSeriesSampler(interval_ms=5.0)
        sampler.add_probe("cn.util", lambda t: 0.5, unit="frac")
        sampler.add_probe("sched.mpl", lambda t: t)
        sampler.advance_to(50.0)
        path = write_series_json(sampler, tmp_path / "s.json")
        text = render_series_report(load_series_json(path))
        assert "cn.util" in text and "sched.mpl" in text
        assert "frac" in text
        assert "10 sample(s)" in text

    def test_report_on_empty_payload(self):
        text = render_series_report({"schema": 1, "series": {}})
        assert "no series" in text
