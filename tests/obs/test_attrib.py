"""Span folding and the conservation invariant (``repro.obs.attrib``).

Two layers of coverage:

1. hand-written synthetic streams with known answers (tiling, restart
   lineage, truncation, the blocking graph, anomaly flags);
2. real traced runs of **every registered scheduler**, where folding
   must conserve time exactly for every transaction (the strict fold
   raises otherwise), including a hypothesis sweep over seeds/rates.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import available
from repro.machine.config import MachineConfig
from repro.obs import MemoryRecorder
from repro.obs.attrib import (
    CONVOY_MIN_DEPTH,
    ConservationError,
    check_conservation,
    fold_trace,
)
from repro.sim.simulation import Simulation
from repro.txn.workload import experiment1_workload


def ev(t, kind, **fields):
    return {"t": float(t), "kind": kind, **fields}


def simple_commit_stream():
    """T1: arrives at 0, admitted at 10, runs, commits at 100."""
    return [
        ev(0, "txn.arrive", txn=1, label="txn"),
        ev(10, "txn.admit", txn=1),
        ev(10, "txn.step_start", txn=1, file=3, step=0, cost=1.0),
        ev(90, "txn.step_end", txn=1, file=3, step=0),
        ev(100, "txn.commit", txn=1, response_ms=100.0),
    ]


class TestSyntheticTiling:
    def test_simple_commit_tiles_into_admission_and_executing(self):
        attribution = fold_trace(simple_commit_stream())
        timeline = attribution.transactions[1]
        spans = [span for _, span in timeline.spans()]
        assert [(s.kind, s.start, s.end) for s in spans] == [
            ("admission", 0.0, 10.0),
            ("executing", 10.0, 100.0),
        ]
        assert timeline.totals() == {
            "queued": 10.0, "blocked": 0.0, "executing": 90.0,
            "wasted": 0.0,
        }

    def test_lock_wait_becomes_a_blocked_span(self):
        attribution = fold_trace([
            ev(0, "txn.arrive", txn=1, label="txn"),
            ev(0, "txn.admit", txn=1),
            ev(20, "txn.lock_wait", txn=1, file=3, mode="X"),
            ev(20, "txn.block", txn=1, file=3, holders=[2]),
            ev(50, "txn.lock_acquired", txn=1, file=3, wait_ms=30.0),
            ev(100, "txn.commit", txn=1, response_ms=100.0),
        ])
        timeline = attribution.transactions[1]
        spans = [span for _, span in timeline.spans()]
        assert [(s.kind, s.start, s.end) for s in spans] == [
            ("executing", 0.0, 20.0),
            ("lock_wait", 20.0, 50.0),
            ("executing", 50.0, 100.0),
        ]
        wait = spans[1]
        assert wait.file == 3 and wait.flavor == "block"
        assert timeline.totals()["blocked"] == 30.0

    def test_restart_chain_charges_the_aborted_attempt_as_wasted(self):
        attribution = fold_trace([
            ev(0, "txn.arrive", txn=1, label="txn"),
            ev(0, "txn.admit", txn=1),
            ev(40, "txn.abort", txn=1, reason="deadlock"),
            ev(40, "txn.restart", txn=1, new_txn=11, reason="deadlock"),
            ev(45, "txn.admit", txn=11),
            ev(100, "txn.commit", txn=11, response_ms=100.0),
        ])
        assert set(attribution.transactions) == {1}
        timeline = attribution.transactions[1]
        assert [a.txn_id for a in timeline.attempts] == [1, 11]
        assert timeline.attempts[0].outcome == "abort"
        assert timeline.attempts[0].reason == "deadlock"
        assert timeline.restarts == 1
        assert timeline.totals() == {
            "queued": 5.0, "blocked": 0.0, "executing": 55.0,
            "wasted": 40.0,
        }

    def test_abort_while_blocked_closes_the_open_wait(self):
        attribution = fold_trace([
            ev(0, "txn.arrive", txn=1, label="txn"),
            ev(0, "txn.admit", txn=1),
            ev(10, "txn.lock_wait", txn=1, file=2, mode="X"),
            ev(10, "txn.block", txn=1, file=2, holders=[9]),
            ev(30, "txn.abort", txn=1, reason="deadlock"),
            ev(30, "txn.restart", txn=1, new_txn=11, reason="deadlock"),
            ev(30, "txn.admit", txn=11),
            ev(50, "txn.commit", txn=11, response_ms=50.0),
        ])
        attempt = attribution.transactions[1].attempts[0]
        assert attempt.waits[0].end == 30.0
        kinds = [s.kind for s in attempt.spans]
        assert kinds == ["executing", "lock_wait"]

    def test_in_flight_attempt_is_truncated_at_stream_end(self):
        attribution = fold_trace([
            ev(0, "txn.arrive", txn=1, label="txn"),
            ev(5, "txn.admit", txn=1),
            ev(0, "txn.arrive", txn=2, label="txn"),
            ev(80, "txn.commit", txn=2, response_ms=80.0),
        ])
        timeline = attribution.transactions[1]
        assert timeline.status == "in_flight"
        assert timeline.attempts[-1].end == 80.0
        assert timeline.committed is False

    def test_conservation_violation_raises_and_strict_off_tolerates(self):
        stream = simple_commit_stream()
        stream[-1] = ev(100, "txn.commit", txn=1, response_ms=90.0)
        with pytest.raises(ConservationError, match="T1"):
            fold_trace(stream)
        attribution = fold_trace(stream, strict=False)
        assert attribution.transactions[1].response_ms == 90.0


class TestSyntheticGraph:
    def contended_stream(self):
        """T1 holds F5; T2 and T3 queue behind it."""
        return [
            ev(0, "txn.arrive", txn=1, label="txn"),
            ev(0, "txn.admit", txn=1),
            ev(0, "txn.arrive", txn=2, label="txn"),
            ev(0, "txn.admit", txn=2),
            ev(0, "txn.arrive", txn=3, label="txn"),
            ev(0, "txn.admit", txn=3),
            ev(10, "txn.lock_wait", txn=2, file=5, mode="X"),
            ev(10, "txn.block", txn=2, file=5, holders=[1]),
            ev(12, "txn.lock_wait", txn=3, file=5, mode="X"),
            ev(12, "txn.block", txn=3, file=5, holders=[1]),
            ev(40, "txn.commit", txn=1, response_ms=40.0),
            ev(40, "txn.lock_acquired", txn=2, file=5, wait_ms=30.0),
            ev(42, "txn.lock_acquired", txn=3, file=5, wait_ms=30.0),
            ev(70, "txn.commit", txn=2, response_ms=70.0),
            ev(72, "txn.commit", txn=3, response_ms=72.0),
        ]

    def test_hotspots_and_convoy_depth(self):
        attribution = fold_trace(self.contended_stream())
        (top,) = attribution.hotspots(top=1)
        assert top["file"] == 5
        assert top["waits"] == 2
        assert top["max_convoy"] == 2
        assert top["blocked_ms"] == pytest.approx(60.0)

    def test_blocking_edges_split_across_holders(self):
        attribution = fold_trace(self.contended_stream())
        edges = dict(
            ((e["waiter"], e["holder"]), e["ms"])
            for e in attribution.blocking_edges(top=10)
        )
        assert edges[(2, 1)] == pytest.approx(30.0)
        assert edges[(3, 1)] == pytest.approx(30.0)

    def test_critical_path_jumps_into_the_releasing_holder(self):
        attribution = fold_trace(self.contended_stream())
        path = attribution.critical_path()
        txns = [segment["txn"] for segment in path]
        # the tail txn (T3) waits on T1, so the walk crosses into T1
        assert txns[-1] == 3
        assert 1 in txns

    def test_budget_fractions_sum_to_one(self):
        budget = fold_trace(self.contended_stream()).budget()
        assert sum(budget["fractions"].values()) == pytest.approx(1.0)
        assert budget["total_ms"] == pytest.approx(
            budget["queued_ms"] + budget["blocked_ms"]
            + budget["executing_ms"] + budget["wasted_ms"]
        )

    def test_starvation_flag_on_wait_dominated_outlier(self):
        stream = []
        # nine quick transactions set a small median
        for i in range(1, 10):
            stream += [
                ev(0, "txn.arrive", txn=i, label="txn"),
                ev(0, "txn.admit", txn=i),
                ev(10, "txn.commit", txn=i, response_ms=10.0),
            ]
        # one transaction blocked for almost all of a 200 ms response
        stream += [
            ev(0, "txn.arrive", txn=99, label="txn"),
            ev(0, "txn.admit", txn=99),
            ev(10, "txn.lock_wait", txn=99, file=1, mode="X"),
            ev(10, "txn.block", txn=99, file=1, holders=[1]),
            ev(190, "txn.lock_acquired", txn=99, file=1, wait_ms=180.0),
            ev(200, "txn.commit", txn=99, response_ms=200.0),
        ]
        flags = fold_trace(stream).anomalies()
        starved = [f for f in flags if f["kind"] == "starvation"]
        assert [f["txn"] for f in starved] == [99]

    def test_convoy_flag_needs_min_depth(self):
        stream = [
            ev(0, "txn.arrive", txn=1, label="txn"),
            ev(0, "txn.admit", txn=1),
        ]
        waiters = range(2, 2 + CONVOY_MIN_DEPTH)
        for i in waiters:
            stream += [
                ev(0, "txn.arrive", txn=i, label="txn"),
                ev(0, "txn.admit", txn=i),
                ev(5, "txn.lock_wait", txn=i, file=7, mode="X"),
                ev(5, "txn.block", txn=i, file=7, holders=[1]),
            ]
        stream.append(ev(50, "txn.commit", txn=1, response_ms=50.0))
        for i in waiters:
            stream.append(
                ev(50, "txn.lock_acquired", txn=i, file=7, wait_ms=45.0)
            )
        for i in waiters:
            stream.append(ev(60, "txn.commit", txn=i, response_ms=60.0))
        flags = fold_trace(stream).anomalies()
        convoys = [f for f in flags if f["kind"] == "convoy"]
        assert [f["file"] for f in convoys] == [7]
        assert convoys[0]["max_convoy"] == CONVOY_MIN_DEPTH


def traced_attribution(scheduler, seed=3, rate=1.2, duration_ms=30_000.0):
    recorder = MemoryRecorder()
    Simulation(
        MachineConfig(dd=1),
        experiment1_workload(rate),
        scheduler=scheduler,
        seed=seed,
        duration_ms=duration_ms,
        warmup_ms=0.0,
        recorder=recorder,
    ).run()
    return fold_trace(recorder.events)  # strict: conservation asserted


class TestRealRunsConserve:
    @pytest.mark.parametrize("scheduler", available())
    def test_every_registered_scheduler_conserves_time(self, scheduler):
        attribution = traced_attribution(scheduler)
        # strict fold already asserted it; assert again explicitly and
        # check the committed rows really carry a response time
        check_conservation(attribution)
        committed = [
            t for t in attribution.transactions.values() if t.committed
        ]
        assert committed, f"{scheduler}: nothing committed in the window"
        for timeline in committed:
            total = sum(s.duration for _, s in timeline.spans())
            assert math.isclose(
                total, timeline.response_ms, rel_tol=1e-9, abs_tol=1e-6
            )

    @settings(max_examples=10, deadline=None)
    @given(
        scheduler=st.sampled_from(available()),
        seed=st.integers(min_value=0, max_value=7),
        rate=st.sampled_from([0.8, 1.2, 1.6]),
    )
    def test_conservation_holds_across_seeds_and_rates(
        self, scheduler, seed, rate
    ):
        attribution = traced_attribution(
            scheduler, seed=seed, rate=rate, duration_ms=20_000.0
        )
        check_conservation(attribution)
        budget = attribution.budget()
        if budget["total_ms"] > 0:
            assert sum(budget["fractions"].values()) == pytest.approx(1.0)
