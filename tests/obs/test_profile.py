"""Unit tests for the wall-clock self-profiler and generator wrapper."""

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    PHASES,
    NullProfiler,
    PhaseProfiler,
    profiled,
)


class TestNullProfiler:
    def test_disabled_and_noop(self):
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.push("des.heap")
        NULL_PROFILER.pop()

    def test_shared_instance(self):
        assert isinstance(NULL_PROFILER, NullProfiler)


class TestPhaseProfiler:
    def test_push_pop_accumulates(self):
        profiler = PhaseProfiler()
        profiler.push("des.heap")
        profiler.pop()
        assert profiler.calls["des.heap"] == 1
        assert profiler.seconds["des.heap"] >= 0.0
        assert not profiler._stack

    def test_nested_attribution_is_exclusive(self):
        # time inside the inner phase must not double-count to the outer
        profiler = PhaseProfiler()
        profiler.push("sched.decision")
        profiler.push("lock.manager")
        busy = sum(i for i in range(20_000))  # measurable inner work
        profiler.pop()
        profiler.pop()
        assert busy > 0
        total = sum(profiler.seconds.values())
        inner = profiler.seconds["lock.manager"]
        outer = profiler.seconds["sched.decision"]
        # exclusive: outer only owns its own (tiny) segments
        assert inner > 0.0
        assert outer < total

    def test_report_includes_all_phases_and_other(self):
        profiler = PhaseProfiler()
        profiler.push("machine.cn")
        profiler.pop()
        report = profiler.report(total_s=1.0)
        for phase in PHASES:
            assert phase in report["phases"]
        assert report["total_s"] == 1.0
        assert 0.0 <= report["other_s"] <= 1.0

    def test_reset(self):
        profiler = PhaseProfiler()
        profiler.push("des.heap")
        profiler.pop()
        profiler.reset()
        assert profiler.seconds == {} and profiler.calls == {}


class TestProfiledWrapper:
    def test_relays_yields_sends_and_return_value(self):
        def gen():
            got = yield "a"
            assert got == 1
            yield "b"
            return "done"

        profiler = PhaseProfiler()
        wrapped = profiled(gen(), profiler, "sched.decision")
        assert next(wrapped) == "a"
        assert wrapped.send(1) == "b"
        with pytest.raises(StopIteration) as stop:
            next(wrapped)
        assert stop.value.value == "done"
        assert profiler.calls["sched.decision"] == 3
        assert not profiler._stack  # balanced even across StopIteration

    def test_relays_thrown_exceptions(self):
        caught = []

        def gen():
            try:
                yield "x"
            except KeyError as exc:
                caught.append(exc)
                yield "recovered"

        wrapped = profiled(gen(), PhaseProfiler(), "sched.decision")
        assert next(wrapped) == "x"
        assert wrapped.throw(KeyError("boom")) == "recovered"
        assert len(caught) == 1

    def test_propagates_inner_exception(self):
        def gen():
            yield "x"
            raise RuntimeError("inner")

        profiler = PhaseProfiler()
        wrapped = profiled(gen(), profiler, "machine.scan")
        next(wrapped)
        with pytest.raises(RuntimeError, match="inner"):
            next(wrapped)
        assert not profiler._stack  # pop ran despite the exception

    def test_close_propagates_to_inner_generator(self):
        closed = []

        def gen():
            try:
                yield "x"
            finally:
                closed.append(True)

        wrapped = profiled(gen(), PhaseProfiler(), "machine.scan")
        next(wrapped)
        wrapped.close()
        assert closed == [True]

    def test_works_with_null_profiler(self):
        def gen():
            yield 1
            return 2

        wrapped = profiled(gen(), NULL_PROFILER, "des.heap")
        assert next(wrapped) == 1
        with pytest.raises(StopIteration) as stop:
            next(wrapped)
        assert stop.value.value == 2
