"""Schema validation of exported traces."""

import json

import pytest

from repro.obs import MemoryRecorder, validate_event, validate_jsonl, write_jsonl
from repro.obs.events import EVENT_KINDS, event_kinds
from repro.obs.schema import TRACE_SCHEMA_VERSION, TraceSchemaError


def _recorded():
    rec = MemoryRecorder()
    rec.emit(0.5, "txn.arrive", txn=1, label="B1")
    rec.emit(1.0, "txn.admit", txn=1)
    rec.emit(4.0, "lock.grant", txn=1, file=3, mode="EXCLUSIVE")
    rec.emit(9.0, "txn.commit", txn=1, response_ms=8.5)
    return rec


class TestValidateEvent:
    def test_all_registered_kinds_have_fields(self):
        assert set(event_kinds()) == set(EVENT_KINDS)
        for kind, fields in EVENT_KINDS.items():
            assert isinstance(fields, tuple)

    def test_valid_record_passes(self):
        validate_event({"t": 1.0, "kind": "txn.admit", "txn": 4})

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"t": 1.0, "kind": "txn.teleport", "txn": 4})

    def test_missing_kind_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"t": 1.0, "txn": 4})

    def test_missing_required_field_rejected(self):
        with pytest.raises(TraceSchemaError, match="missing required"):
            validate_event({"t": 1.0, "kind": "txn.block", "txn": 4})

    def test_non_numeric_time_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"t": "soon", "kind": "txn.admit", "txn": 4})
        with pytest.raises(TraceSchemaError):
            validate_event({"t": True, "kind": "txn.admit", "txn": 4})

    def test_negative_time_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"t": -1.0, "kind": "txn.admit", "txn": 4})


class TestValidateJsonl:
    def test_round_trip(self, tmp_path):
        path = write_jsonl(_recorded().events, tmp_path / "t.jsonl",
                           meta={"seed": 7})
        assert validate_jsonl(path) == 5  # 4 events + meta header
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "trace.meta"
        assert first["schema"] == TRACE_SCHEMA_VERSION
        assert first["seed"] == 7

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_jsonl(path)

    def test_missing_meta_header_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"t": 0.0, "kind": "txn.admit", "txn": 1}\n')
        with pytest.raises(TraceSchemaError, match="trace.meta"):
            validate_jsonl(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"t": 0.0, "kind": "trace.meta", "schema": 99}) + "\n"
        )
        with pytest.raises(TraceSchemaError, match="schema version"):
            validate_jsonl(path)

    def test_backwards_timestamp_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join([
            json.dumps({"t": 0.0, "kind": "trace.meta",
                        "schema": TRACE_SCHEMA_VERSION}),
            json.dumps({"t": 5.0, "kind": "txn.admit", "txn": 1}),
            json.dumps({"t": 4.0, "kind": "txn.admit", "txn": 2}),
        ]) + "\n")
        with pytest.raises(TraceSchemaError, match="backwards"):
            validate_jsonl(path)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            validate_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(TraceSchemaError, match="expected an object"):
            validate_jsonl(path)
