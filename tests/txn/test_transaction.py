"""Unit tests for BatchTransaction."""

import pytest

from repro.txn import PATTERN_1, AccessMode, BatchTransaction, Step, TransactionState


def pattern1_txn(txn_id=1, f1=0, f2=1, arrival=0.0, declared=None):
    steps = PATTERN_1.instantiate({"F1": f1, "F2": f2})
    return BatchTransaction(txn_id, steps, arrival, declared_costs=declared)


def simple_txn(txn_id, spec, arrival=0.0):
    """spec: list of (file, 'r'|'w', cost)."""
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, arrival)


class TestConstruction:
    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            BatchTransaction(1, [], 0.0)

    def test_declared_costs_default_to_exact(self):
        txn = pattern1_txn()
        assert txn.declared_costs == [1.0, 5.0, 0.2, 1.0]

    def test_declared_costs_length_checked(self):
        with pytest.raises(ValueError):
            pattern1_txn(declared=[1.0, 2.0])

    def test_negative_declared_cost_rejected(self):
        with pytest.raises(ValueError):
            pattern1_txn(declared=[1.0, -5.0, 0.2, 1.0])

    def test_initial_state(self):
        txn = pattern1_txn()
        assert txn.state is TransactionState.PENDING
        assert txn.current_step_index == 0
        assert txn.attempt == 1

    def test_bad_attempt_rejected(self):
        with pytest.raises(ValueError):
            BatchTransaction(1, PATTERN_1.instantiate({"F1": 0, "F2": 1}), 0.0, attempt=0)


class TestLockPlan:
    def test_strongest_mode_wins(self):
        """Pattern 1 reads then writes both files: X from first touch."""
        txn = pattern1_txn(f1=3, f2=7)
        assert txn.mode_for(3) is AccessMode.EXCLUSIVE
        assert txn.mode_for(7) is AccessMode.EXCLUSIVE

    def test_pure_read_file_stays_shared(self):
        txn = simple_txn(1, [(0, "r", 5.0), (1, "w", 1.0)])
        assert txn.mode_for(0) is AccessMode.SHARED
        assert txn.mode_for(1) is AccessMode.EXCLUSIVE

    def test_files_in_first_need_order(self):
        txn = simple_txn(1, [(5, "r", 1.0), (2, "w", 1.0), (5, "w", 1.0)])
        assert txn.files == [5, 2]

    def test_first_step_needing(self):
        txn = pattern1_txn(f1=0, f2=1)
        assert txn.first_step_needing(0) == 0
        assert txn.first_step_needing(1) == 1

    def test_read_and_write_sets(self):
        txn = simple_txn(1, [(0, "r", 5.0), (1, "w", 1.0), (2, "w", 1.0)])
        assert txn.read_set == {0, 1, 2}
        assert txn.write_set == {1, 2}


class TestConflicts:
    def test_write_write_conflict(self):
        a = simple_txn(1, [(0, "w", 1.0)])
        b = simple_txn(2, [(0, "w", 1.0)])
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_read_read_no_conflict(self):
        a = simple_txn(1, [(0, "r", 1.0)])
        b = simple_txn(2, [(0, "r", 1.0)])
        assert not a.conflicts_with(b)

    def test_read_write_conflict(self):
        a = simple_txn(1, [(0, "r", 1.0)])
        b = simple_txn(2, [(0, "w", 1.0)])
        assert a.conflicts_with(b)

    def test_disjoint_files_no_conflict(self):
        a = simple_txn(1, [(0, "w", 1.0)])
        b = simple_txn(2, [(1, "w", 1.0)])
        assert not a.conflicts_with(b)

    def test_conflict_files_sorted(self):
        a = simple_txn(1, [(5, "w", 1.0), (2, "w", 1.0)])
        b = simple_txn(2, [(2, "r", 1.0), (5, "r", 1.0)])
        assert a.conflict_files(b) == [2, 5]

    def test_blocked_step_is_first_conflicting(self):
        """Fig. 2: T2 = r(C:1) -> w(A:1) -> w(C:1) blocks against T1 on A
        at its second step, leaving 2 objects of remaining cost."""
        t1 = simple_txn(1, [(0, "w", 1.0), (1, "r", 3.0)])  # writes A=0
        t2 = simple_txn(2, [(2, "r", 1.0), (0, "w", 1.0), (2, "w", 1.0)])
        assert t2.blocked_step_against(t1) == 1
        assert t2.declared_cost_from_step(1) == pytest.approx(2.0)

    def test_blocked_step_without_conflict_raises(self):
        a = simple_txn(1, [(0, "r", 1.0)])
        b = simple_txn(2, [(1, "r", 1.0)])
        with pytest.raises(ValueError):
            a.blocked_step_against(b)


class TestCostArithmetic:
    def test_total_declared_cost(self):
        assert pattern1_txn().total_declared_cost == pytest.approx(7.2)

    def test_declared_cost_from_step(self):
        txn = pattern1_txn()
        assert txn.declared_cost_from_step(0) == pytest.approx(7.2)
        assert txn.declared_cost_from_step(2) == pytest.approx(1.2)
        assert txn.declared_cost_from_step(4) == 0.0

    def test_declared_cost_out_of_range(self):
        with pytest.raises(IndexError):
            pattern1_txn().declared_cost_from_step(5)

    def test_remaining_cost_fresh_transaction(self):
        """Fig. 2-(b): a just-started T1 has T0-weight = its full cost."""
        txn = pattern1_txn()
        assert txn.remaining_declared_cost() == pytest.approx(7.2)

    def test_remaining_cost_decreases_with_steps(self):
        txn = pattern1_txn()
        txn.advance()
        assert txn.remaining_declared_cost() == pytest.approx(6.2)

    def test_remaining_cost_scales_by_execution_progress(self):
        class FakeExecution:
            def fraction_done(self):
                return 0.5

        txn = pattern1_txn()
        txn.advance()  # at step 1, declared 5.0
        txn.current_execution = FakeExecution()
        assert txn.remaining_declared_cost() == pytest.approx(1.2 + 2.5)

    def test_remaining_cost_zero_after_commit(self):
        txn = pattern1_txn()
        txn.state = TransactionState.COMMITTED
        assert txn.remaining_declared_cost() == 0.0

    def test_declared_error_affects_remaining(self):
        txn = pattern1_txn(declared=[2.0, 10.0, 0.4, 2.0])
        assert txn.remaining_declared_cost() == pytest.approx(14.4)


class TestLifecycle:
    def test_advance_through_steps(self):
        txn = pattern1_txn()
        assert txn.current_step.file_id == 0
        assert not txn.is_last_step
        for _ in range(4):
            txn.advance()
        assert txn.finished_all_steps
        with pytest.raises(RuntimeError):
            txn.advance()

    def test_is_last_step(self):
        txn = pattern1_txn()
        for _ in range(3):
            txn.advance()
        assert txn.is_last_step

    def test_response_time(self):
        txn = pattern1_txn(arrival=100.0)
        txn.commit_time = 350.0
        assert txn.response_time() == 250.0

    def test_response_time_before_commit_raises(self):
        with pytest.raises(RuntimeError):
            pattern1_txn().response_time()

    def test_restart_copy_preserves_arrival_and_bumps_attempt(self):
        txn = pattern1_txn(arrival=42.0, declared=[2.0, 10.0, 0.4, 2.0])
        copy = txn.restart_copy(new_txn_id=99)
        assert copy.txn_id == 99
        assert copy.arrival_time == 42.0
        assert copy.attempt == 2
        assert copy.declared_costs == txn.declared_costs
        assert copy.steps == txn.steps
        assert copy.state is TransactionState.PENDING
        assert copy.current_step_index == 0

    def test_repr_contains_id_and_steps(self):
        txn = pattern1_txn(txn_id=7)
        assert "T7" in repr(txn)
        assert "r(F0:1)" in repr(txn)
