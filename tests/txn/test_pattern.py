"""Unit tests for the pattern DSL."""

import pytest

from repro.txn import PATTERN_1, PATTERN_2, AccessMode, Pattern, PatternError


class TestParsing:
    def test_pattern1_shape(self):
        assert len(PATTERN_1) == 4
        assert PATTERN_1.placeholders == ["F1", "F2"]
        modes = [s.mode for s in PATTERN_1.steps]
        assert modes == [
            AccessMode.SHARED,
            AccessMode.SHARED,
            AccessMode.EXCLUSIVE,
            AccessMode.EXCLUSIVE,
        ]
        assert [s.cost for s in PATTERN_1.steps] == [1.0, 5.0, 0.2, 1.0]

    def test_pattern2_shape(self):
        assert len(PATTERN_2) == 3
        assert PATTERN_2.placeholders == ["B", "F1", "F2"]
        assert PATTERN_2.total_cost == pytest.approx(7.0)

    def test_unicode_arrow_accepted(self):
        pattern = Pattern.parse("r(A:1) → w(B:2)")
        assert len(pattern) == 2

    def test_whitespace_tolerant(self):
        pattern = Pattern.parse("  r( A : 1 )  ->  w( B : 0.5 )  ")
        assert pattern.placeholders == ["A", "B"]

    def test_literal_integer_files(self):
        pattern = Pattern.parse("r(3:1) -> w(7:2)")
        steps = pattern.instantiate({})
        assert [s.file_id for s in steps] == [3, 7]

    @pytest.mark.parametrize("bad", [
        "",
        "x(A:1)",
        "r(A)",
        "r(:1)",
        "r(A:1) => w(B:2)",
        "r(A:-1)",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(PatternError):
            Pattern.parse(bad)

    def test_empty_step_list_rejected(self):
        with pytest.raises(PatternError):
            Pattern([])

    def test_roundtrip_str(self):
        text = "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)"
        assert str(Pattern.parse(text)) == text


class TestInstantiation:
    def test_binding_replaces_placeholders(self):
        steps = PATTERN_1.instantiate({"F1": 3, "F2": 11})
        assert [s.file_id for s in steps] == [3, 11, 3, 11]

    def test_missing_binding_raises(self):
        with pytest.raises(PatternError):
            PATTERN_1.instantiate({"F1": 3})

    def test_binding_overrides_literal(self):
        pattern = Pattern.parse("r(5:1)")
        steps = pattern.instantiate({"5": 9})
        assert steps[0].file_id == 9

    def test_costs_carried_over(self):
        steps = PATTERN_1.instantiate({"F1": 0, "F2": 1})
        assert [s.cost for s in steps] == [1.0, 5.0, 0.2, 1.0]

    def test_total_cost(self):
        assert PATTERN_1.total_cost == pytest.approx(7.2)

    def test_placeholder_first_appearance_order(self):
        pattern = Pattern.parse("r(Z:1) -> r(A:1) -> w(Z:1)")
        assert pattern.placeholders == ["Z", "A"]
