"""Unit tests for steps and access modes."""

import pytest

from repro.txn import AccessMode, Step


class TestAccessMode:
    def test_shared_is_not_write(self):
        assert not AccessMode.SHARED.is_write

    def test_exclusive_is_write(self):
        assert AccessMode.EXCLUSIVE.is_write

    @pytest.mark.parametrize("a,b,expected", [
        (AccessMode.SHARED, AccessMode.SHARED, False),
        (AccessMode.SHARED, AccessMode.EXCLUSIVE, True),
        (AccessMode.EXCLUSIVE, AccessMode.SHARED, True),
        (AccessMode.EXCLUSIVE, AccessMode.EXCLUSIVE, True),
    ])
    def test_conflict_matrix(self, a, b, expected):
        assert a.conflicts_with(b) is expected

    def test_str(self):
        assert str(AccessMode.SHARED) == "S"
        assert str(AccessMode.EXCLUSIVE) == "X"


class TestStep:
    def test_valid_step(self):
        step = Step(file_id=3, mode=AccessMode.SHARED, cost=5.0)
        assert step.file_id == 3
        assert not step.is_write
        assert step.cost == 5.0

    def test_negative_file_rejected(self):
        with pytest.raises(ValueError):
            Step(file_id=-1, mode=AccessMode.SHARED, cost=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Step(file_id=0, mode=AccessMode.SHARED, cost=-0.1)

    def test_zero_cost_allowed(self):
        assert Step(file_id=0, mode=AccessMode.SHARED, cost=0.0).cost == 0.0

    def test_mode_type_checked(self):
        with pytest.raises(TypeError):
            Step(file_id=0, mode="S", cost=1.0)

    def test_str_rendering(self):
        assert str(Step(1, AccessMode.SHARED, 5.0)) == "r(F1:5)"
        assert str(Step(2, AccessMode.EXCLUSIVE, 0.2)) == "w(F2:0.2)"

    def test_frozen(self):
        step = Step(0, AccessMode.SHARED, 1.0)
        with pytest.raises(Exception):
            step.cost = 2.0

    def test_equality(self):
        assert Step(0, AccessMode.SHARED, 1.0) == Step(0, AccessMode.SHARED, 1.0)
        assert Step(0, AccessMode.SHARED, 1.0) != Step(0, AccessMode.EXCLUSIVE, 1.0)
