"""Unit tests for workload generation and the declaration-error model."""

import pytest

from repro.des import RandomStreams
from repro.txn import (
    DeclarationErrorModel,
    Workload,
    PATTERN_1,
    experiment1_workload,
    experiment2_workload,
    experiment3_workload,
    hot_set_chooser,
    uniform_two_files,
)


@pytest.fixture
def streams():
    return RandomStreams(123)


class TestDeclarationErrorModel:
    def test_sigma_zero_is_exact(self, streams):
        model = DeclarationErrorModel(0.0)
        assert model.declare([1.0, 5.0], streams) == [1.0, 5.0]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            DeclarationErrorModel(-1.0)

    def test_errors_never_negative(self, streams):
        model = DeclarationErrorModel(10.0)
        declared = model.declare([5.0] * 1000, streams)
        assert all(c >= 0 for c in declared)

    def test_mean_roughly_unbiased_at_small_sigma(self, streams):
        model = DeclarationErrorModel(0.3)
        declared = model.declare([5.0] * 5000, streams)
        assert sum(declared) / len(declared) == pytest.approx(5.0, rel=0.05)

    def test_large_sigma_produces_zeros(self, streams):
        """At sigma = 10 about half the draws fall at or below x = -1."""
        model = DeclarationErrorModel(10.0)
        declared = model.declare([5.0] * 1000, streams)
        zero_fraction = sum(1 for c in declared if c == 0.0) / len(declared)
        assert 0.3 < zero_fraction < 0.7

    def test_deterministic_given_stream(self):
        a = DeclarationErrorModel(1.0).declare([5.0] * 10, RandomStreams(7))
        b = DeclarationErrorModel(1.0).declare([5.0] * 10, RandomStreams(7))
        assert a == b


class TestFileChoosers:
    def test_uniform_two_files_distinct(self, streams):
        choose = uniform_two_files(16)
        for _ in range(200):
            binding = choose(streams)
            assert binding["F1"] != binding["F2"]
            assert 0 <= binding["F1"] < 16
            assert 0 <= binding["F2"] < 16

    def test_uniform_two_files_covers_range(self, streams):
        choose = uniform_two_files(8)
        seen = set()
        for _ in range(500):
            binding = choose(streams)
            seen.update(binding.values())
        assert seen == set(range(8))

    def test_uniform_needs_two_files(self):
        with pytest.raises(ValueError):
            uniform_two_files(1)

    def test_hot_set_chooser_pools(self, streams):
        choose = hot_set_chooser()
        for _ in range(200):
            binding = choose(streams)
            assert 0 <= binding["B"] < 8
            assert 8 <= binding["F1"] < 16
            assert 8 <= binding["F2"] < 16
            assert binding["F1"] != binding["F2"]

    def test_hot_set_overlap_rejected(self):
        with pytest.raises(ValueError):
            hot_set_chooser(read_only_files=[0, 1], hot_files=[1, 2])

    def test_hot_set_too_small_rejected(self):
        with pytest.raises(ValueError):
            hot_set_chooser(hot_files=[8])


class TestWorkload:
    def test_rate_conversion(self):
        wl = experiment1_workload(arrival_rate_tps=1.2)
        assert wl.rate_per_ms == pytest.approx(0.0012)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            Workload(PATTERN_1, uniform_two_files(16), 0.0)

    def test_interarrival_mean(self, streams):
        wl = experiment1_workload(arrival_rate_tps=1.0)
        draws = [wl.next_interarrival_ms(streams) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(1000.0, rel=0.05)

    def test_txn_ids_sequential(self, streams):
        wl = experiment1_workload(1.0)
        t0 = wl.make_transaction(0.0, streams)
        t1 = wl.make_transaction(5.0, streams)
        assert (t0.txn_id, t1.txn_id) == (0, 1)

    def test_transaction_shape_matches_pattern(self, streams):
        wl = experiment1_workload(1.0)
        txn = wl.make_transaction(10.0, streams)
        assert len(txn.steps) == 4
        assert txn.arrival_time == 10.0
        assert [s.cost for s in txn.steps] == [1.0, 5.0, 0.2, 1.0]

    def test_experiment2_transactions_touch_hot_set(self, streams):
        wl = experiment2_workload(1.0)
        txn = wl.make_transaction(0.0, streams)
        files = txn.files
        assert files[0] < 8  # read-only bulk scan
        assert all(f >= 8 for f in files[1:])
        assert txn.write_set == set(files[1:])

    def test_experiment3_declarations_perturbed(self, streams):
        wl = experiment3_workload(1.0, sigma=1.0)
        txns = [wl.make_transaction(0.0, streams) for _ in range(50)]
        # at sigma=1 it is overwhelmingly unlikely all declarations are exact
        assert any(
            t.declared_costs != [s.cost for s in t.steps] for t in txns
        )
        # but actual step costs stay exact
        assert all(
            [s.cost for s in t.steps] == [1.0, 5.0, 0.2, 1.0] for t in txns
        )

    def test_experiment3_sigma_zero_exact(self, streams):
        wl = experiment3_workload(1.0, sigma=0.0)
        txn = wl.make_transaction(0.0, streams)
        assert txn.declared_costs == [1.0, 5.0, 0.2, 1.0]

    def test_workload_name(self):
        assert "exp1" in experiment1_workload(1.0).name
        assert "exp3" in experiment3_workload(1.0, 2.0).name


class TestMixedWorkload:
    def test_labels_assigned(self, streams):
        from repro.txn import mixed_workload

        wl = mixed_workload(2.0, small_share=0.5)
        labels = {
            wl.make_transaction(0.0, streams).label for _ in range(200)
        }
        assert labels == {"small", "bulk"}

    def test_share_zero_is_all_bulk(self, streams):
        from repro.txn import mixed_workload

        wl = mixed_workload(2.0, small_share=0.0)
        txns = [wl.make_transaction(0.0, streams) for _ in range(50)]
        assert all(t.label == "bulk" for t in txns)
        assert all(len(t.steps) == 4 for t in txns)

    def test_share_one_is_all_small(self, streams):
        from repro.txn import mixed_workload

        wl = mixed_workload(2.0, small_share=1.0)
        txns = [wl.make_transaction(0.0, streams) for _ in range(50)]
        assert all(t.label == "small" for t in txns)
        assert all(len(t.steps) == 1 for t in txns)
        assert all(t.steps[0].cost == 0.1 for t in txns)
        assert all(t.steps[0].is_write for t in txns)

    def test_share_validated(self):
        from repro.txn import MixedWorkload

        with pytest.raises(ValueError):
            MixedWorkload(1.0, small_share=1.5)
        with pytest.raises(ValueError):
            MixedWorkload(1.0, small_cost=0.0)

    def test_restart_copy_keeps_label(self, streams):
        from repro.txn import mixed_workload

        wl = mixed_workload(2.0, small_share=1.0)
        txn = wl.make_transaction(0.0, streams)
        assert txn.restart_copy(99).label == "small"
