"""Behavioural and end-to-end tests for the modern scheduler arena.

Mirrors tests/core/test_schedulers.py: each policy's characteristic
decisions are exercised through the real lifecycle (admission, lock
requests, commit) with deterministic mini-workloads, then every family
is put through full audited simulations at each declustering degree and
through the pool-size determinism check.
"""

import json

import pytest

from repro.core import SerializabilityAuditor
from repro.des import Environment
from repro.machine import ControlNode, MachineConfig
from repro.runner import ParallelRunner, RunSpec, WorkloadSpec
from repro.schedulers import (
    ConflictPredictScheduler,
    ConflictReorderScheduler,
    DGCCScheduler,
)
from repro.sim import run_simulation
from repro.txn import (
    AccessMode,
    BatchTransaction,
    Step,
    experiment1_workload,
)

MODERN = ("DGCC", "CAR", "PRED")


def make_txn(txn_id, spec, arrival=0.0):
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, arrival)


class Harness:
    """Drives scheduler lifecycles as simulation processes."""

    def __init__(self, scheduler_cls, config=None, **scheduler_kwargs):
        self.env = Environment()
        self.config = config or MachineConfig(retry_delay_ms=50.0)
        self.cn = ControlNode(self.env, self.config)
        self.scheduler = scheduler_cls(
            self.env, self.config, self.cn, **scheduler_kwargs
        )
        self.trace = []

    def lifecycle(self, txn, hold_ms=100.0):
        """Admit, acquire each file at first need, hold, then commit."""

        def proc():
            yield from self.scheduler.admit(txn)
            self.trace.append((self.env.now, "admitted", txn.txn_id))
            for file_id in txn.files:
                yield from self.scheduler.acquire(txn, file_id)
                self.trace.append((self.env.now, "locked", txn.txn_id, file_id))
            yield self.env.timeout(hold_ms)
            yield from self.scheduler.commit(txn)
            self.trace.append((self.env.now, "committed", txn.txn_id))

        return self.env.process(proc(), name=f"txn-{txn.txn_id}")

    def admit_only(self, txn):
        """Admit and stay live forever (for partition inspection)."""

        def proc():
            yield from self.scheduler.admit(txn)
            self.trace.append((self.env.now, "admitted", txn.txn_id))

        return self.env.process(proc(), name=f"admit-{txn.txn_id}")

    def run(self, until=None):
        self.env.run(until=until)

    def events(self, kind):
        return [t for t in self.trace if t[1] == kind]


class TestDGCC:
    def test_full_batch_seals_until_drained(self):
        h = Harness(DGCCScheduler, batch_size=2)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.lifecycle(make_txn(2, [(1, "w", 1.0)]))
        h.lifecycle(make_txn(3, [(2, "w", 1.0)]))
        h.run()
        commits = dict((t[2], t[0]) for t in h.events("committed"))
        assert set(commits) == {1, 2, 3}
        # txn 3 found the batch sealed: admitted only after 1 and 2 left
        admit3 = next(t[0] for t in h.events("admitted") if t[2] == 3)
        assert admit3 >= max(commits[1], commits[2])
        # two epochs drained: {1, 2} and then {3}
        assert h.scheduler._epoch == 2

    def test_unfilled_batch_keeps_admitting(self):
        h = Harness(DGCCScheduler, batch_size=8)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=200.0)
        h.lifecycle(make_txn(2, [(1, "w", 1.0)]), hold_ms=200.0)
        h.run(until=50.0)
        # both admitted immediately: no quorum wait at light load
        assert {t[2] for t in h.events("admitted")} == {1, 2}

    def test_conflicting_writes_follow_admission_order(self):
        h = Harness(DGCCScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]))
        h.run()
        commit1 = next(t[0] for t in h.events("committed") if t[2] == 1)
        locked2 = next(t[0] for t in h.events("locked") if t[2] == 2)
        assert locked2 >= commit1  # the graph successor waited

    def test_dependency_components_partition_the_batch(self):
        h = Harness(DGCCScheduler)
        h.admit_only(make_txn(1, [(0, "w", 1.0), (1, "r", 1.0)]))
        h.admit_only(make_txn(2, [(1, "w", 1.0), (2, "w", 1.0)]))
        h.admit_only(make_txn(3, [(5, "w", 1.0)]))
        h.run()
        components = h.scheduler.dependency_components()
        assert components == [frozenset({1, 2}), frozenset({3})]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            Harness(DGCCScheduler, batch_size=0)


class TestCAR:
    def test_conflicts_co_locate_and_independents_spread(self):
        h = Harness(ConflictReorderScheduler, num_queues=2)
        h.admit_only(make_txn(1, [(0, "w", 1.0)]))
        h.admit_only(make_txn(2, [(0, "w", 1.0)]))
        h.admit_only(make_txn(3, [(5, "w", 1.0)]))
        h.run()
        assert h.scheduler.queue_snapshot() == [
            frozenset({1, 2}),
            frozenset({3}),
        ]

    def test_queue_mates_run_serially_in_admission_order(self):
        h = Harness(ConflictReorderScheduler, num_queues=2)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]))
        h.run()
        commit1 = next(t[0] for t in h.events("committed") if t[2] == 1)
        locked2 = next(t[0] for t in h.events("locked") if t[2] == 2)
        assert locked2 >= commit1

    def test_conflict_predecessor_delay_triggers_repartition(self):
        h = Harness(
            ConflictReorderScheduler, num_queues=2, repartition_after=1
        )
        scheduler = h.scheduler

        def t1():  # queue 0; holds file 0 briefly
            txn = make_txn(1, [(0, "w", 1.0)])
            yield from scheduler.admit(txn)
            yield from scheduler.acquire(txn, 0)
            yield h.env.timeout(100.0)
            yield from scheduler.commit(txn)
            h.trace.append((h.env.now, "committed", 1))

        def t2():  # queue 1; declares file 1 but acquires it late
            txn = make_txn(2, [(1, "w", 1.0)])
            yield from scheduler.admit(txn)
            yield h.env.timeout(300.0)
            yield from scheduler.acquire(txn, 1)
            yield h.env.timeout(50.0)
            yield from scheduler.commit(txn)
            h.trace.append((h.env.now, "committed", 2))

        def t3():  # queue 0 behind t1; then hits t2's declaration on file 1
            txn = make_txn(3, [(0, "w", 1.0), (1, "w", 1.0)])
            yield from scheduler.admit(txn)
            yield from scheduler.acquire(txn, 0)
            yield from scheduler.acquire(txn, 1)
            yield from scheduler.commit(txn)
            h.trace.append((h.env.now, "committed", 3))

        for proc in (t1, t2, t3):
            h.env.process(proc(), name=proc.__name__)
        h.run()
        assert {t[2] for t in h.events("committed")} == {1, 2, 3}
        # t3's wait on t2's declared-but-unlocked file was staleness
        # evidence, and the threshold of one forced a re-partition
        assert scheduler._repartitions >= 1
        commit2 = next(t[0] for t in h.events("committed") if t[2] == 2)
        commit3 = next(t[0] for t in h.events("committed") if t[2] == 3)
        assert commit3 >= commit2  # admission order won on file 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Harness(ConflictReorderScheduler, num_queues=0)
        with pytest.raises(ValueError):
            Harness(ConflictReorderScheduler, repartition_after=0)


class TestPRED:
    def test_uncontested_admission_is_immediate(self):
        h = Harness(ConflictPredictScheduler, threshold=0.01)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.run()
        # nobody else declared file 0: score 0, no deferral
        assert h.scheduler._defers_total == 0
        assert len(h.events("committed")) == 1

    def test_hot_declaration_defers_until_commit(self):
        h = Harness(ConflictPredictScheduler, threshold=0.4, max_defers=5)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=200.0)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]))
        h.run()
        # fresh model: p(file 0) = 1/2 > 0.4, so txn 2 waited out txn 1
        assert h.scheduler._defers_total >= 1
        commit1 = next(t[0] for t in h.events("committed") if t[2] == 1)
        admit2 = next(t[0] for t in h.events("admitted") if t[2] == 2)
        assert admit2 >= commit1

    def test_starvation_cap_admits_regardless(self):
        h = Harness(ConflictPredictScheduler, threshold=0.01, max_defers=0)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=500.0)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]))
        h.run()
        commit1 = next(t[0] for t in h.events("committed") if t[2] == 1)
        admit2 = next(t[0] for t in h.events("admitted") if t[2] == 2)
        assert admit2 < commit1  # admitted into the hot mix anyway
        assert len(h.events("committed")) == 2

    def test_completions_lower_the_estimate(self):
        h = Harness(ConflictPredictScheduler)
        assert h.scheduler.conflict_probability(0) == pytest.approx(1 / 2)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.run()
        assert h.scheduler.conflict_probability(0) == pytest.approx(1 / 3)

    def test_waits_count_once_per_file(self):
        h = Harness(ConflictPredictScheduler, threshold=1.0)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=400.0)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]))
        h.run()
        # txn 2 re-evaluated its wait every retry_delay, but the model
        # saw one conflict observation, not many
        assert h.scheduler._conflicts.get(0) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Harness(ConflictPredictScheduler, threshold=0.0)
        with pytest.raises(ValueError):
            Harness(ConflictPredictScheduler, threshold=1.5)
        with pytest.raises(ValueError):
            Harness(ConflictPredictScheduler, max_defers=-1)


# -- full-simulation guarantees ----------------------------------------------


def quick(scheduler, rate=0.6, dd=1, num_files=16, seed=7,
          duration=150_000, **kwargs):
    return run_simulation(
        scheduler,
        experiment1_workload(rate, num_files=num_files),
        MachineConfig(dd=dd, num_files=num_files),
        seed=seed,
        duration_ms=duration,
        warmup_ms=0.0,
        **kwargs,
    )


class TestSerializability:
    @pytest.mark.parametrize("scheduler", MODERN)
    @pytest.mark.parametrize("dd", [1, 2, 4, 8])
    def test_audit_clean_at_every_dd(self, scheduler, dd):
        auditor = SerializabilityAuditor()
        result = quick(scheduler, dd=dd, auditor=auditor)
        assert result.completed > 5, f"{scheduler} stalled at DD={dd}"
        assert auditor.committed_count > 5
        assert auditor.is_serializable(), auditor.find_cycle()

    @pytest.mark.parametrize(
        "scheduler", ["DGCC(B=4)", "CAR(Q=2)", "PRED(T=0.25)"]
    )
    def test_parameterised_variants_audit_clean(self, scheduler):
        auditor = SerializabilityAuditor()
        result = quick(scheduler, dd=2, auditor=auditor)
        assert result.completed > 5
        assert auditor.is_serializable(), auditor.find_cycle()


class TestDeterminism:
    def test_pool_sizes_yield_byte_identical_results(self):
        specs = [
            RunSpec(
                scheduler=scheduler,
                workload=WorkloadSpec.make("exp1", 0.8, num_files=16),
                config=MachineConfig(dd=2),
                seed=3,
                duration_ms=20_000.0,
                warmup_ms=0.0,
            )
            for scheduler in MODERN + ("DGCC(B=4)", "CAR(Q=2)", "PRED(T=0.25)")
        ]
        serial = ParallelRunner(pool_size=1, progress=None).run_batch(
            specs, label="modern-pool1"
        )
        pooled = ParallelRunner(pool_size=3, progress=None).run_batch(
            specs, label="modern-pool3"
        )
        a = [json.dumps(r.to_dict(), sort_keys=True) for r in serial]
        b = [json.dumps(r.to_dict(), sort_keys=True) for r in pooled]
        assert a == b
