"""Hypothesis property tests for the modern schedulers.

The load-bearing DGCC claim: transactions in *different* dependency
components share no declared file, so the components really can execute
with no interaction.  Driven through the public admission API with
randomized access sets.
"""

from hypothesis import given, settings, strategies as st

from repro.des import Environment
from repro.machine import ControlNode, MachineConfig
from repro.schedulers import DGCCScheduler
from repro.txn import AccessMode, BatchTransaction, Step


def txn_strategy(txn_id, num_files=6):
    """A random batch transaction over a small file pool."""
    step = st.tuples(
        st.integers(min_value=0, max_value=num_files - 1),
        st.sampled_from([AccessMode.SHARED, AccessMode.EXCLUSIVE]),
        st.floats(min_value=0.0, max_value=5.0),
    )
    return st.lists(step, min_size=1, max_size=4).map(
        lambda steps: BatchTransaction(
            txn_id,
            [Step(f, m, c) for f, m, c in steps],
            arrival_time=0.0,
        )
    )


def admit_all(txns):
    """Admit every transaction into one DGCC batch and freeze it live."""
    env = Environment()
    config = MachineConfig(retry_delay_ms=50.0)
    scheduler = DGCCScheduler(
        env, config, ControlNode(env, config), batch_size=64
    )
    for txn in txns:

        def proc(txn=txn):
            yield from scheduler.admit(txn)

        env.process(proc(), name=f"admit-{txn.txn_id}")
    env.run()
    return scheduler


class TestDependencyComponents:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=1, max_value=6))
    def test_components_never_share_a_declared_file(self, data, n):
        txns = [data.draw(txn_strategy(i), label=f"txn{i}") for i in range(n)]
        scheduler = admit_all(txns)
        components = scheduler.dependency_components()
        # the components partition the live batch exactly
        members = [t for component in components for t in component]
        assert sorted(members) == sorted(t.txn_id for t in txns)
        # no declared file appears in two components
        owner = {}
        for index, component in enumerate(components):
            for txn in txns:
                if txn.txn_id not in component:
                    continue
                for file_id in txn.files:
                    assert owner.setdefault(file_id, index) == index, (
                        f"file {file_id} spans components"
                    )

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=2, max_value=6))
    def test_sharing_transactions_land_in_one_component(self, data, n):
        txns = [data.draw(txn_strategy(i), label=f"txn{i}") for i in range(n)]
        scheduler = admit_all(txns)
        component_of = {
            t: index
            for index, component in enumerate(
                scheduler.dependency_components()
            )
            for t in component
        }
        for a in txns:
            for b in txns:
                if a.txn_id < b.txn_id and set(a.files) & set(b.files):
                    assert component_of[a.txn_id] == component_of[b.txn_id]
