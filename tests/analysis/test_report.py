"""Unit tests for the text-table reporting helpers."""

import math

import pytest

from repro.analysis import format_cell, render_series, render_table, to_csv


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(1.23456, precision=2) == "1.23"
        assert format_cell(1.23456, precision=4) == "1.2346"

    def test_nan_renders_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_inf(self):
        assert format_cell(float("inf")) == "inf"

    def test_strings_and_ints_pass_through(self):
        assert format_cell("ASL") == "ASL"
        assert format_cell(8) == "8"


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert lines[0].endswith("bbb")
        assert "----" in lines[1]
        assert lines[2].split() == ["1", "2.50"]
        assert lines[3].split() == ["10", "3.25"]

    def test_title_included(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_wide_values_extend_column(self):
        text = render_table(["x"], [["longvalue"]])
        assert "longvalue" in text


class TestRenderSeries:
    def test_series_columns(self):
        text = render_series(
            "dd", [1, 2], {"ASL": [1.0, 2.0], "C2PL": [1.0, 1.5]}
        )
        lines = text.splitlines()
        assert "ASL" in lines[0] and "C2PL" in lines[0]
        assert lines[2].split() == ["1", "1.00", "1.00"]

    def test_short_series_padded_with_nan(self):
        text = render_series("x", [1, 2], {"s": [1.0]})
        assert text.splitlines()[-1].split() == ["2", "-"]


class TestCSV:
    def test_csv_shape(self):
        csv = to_csv(["a", "b"], [[1, 2.5]])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.500000"

    def test_nan_as_dash(self):
        csv = to_csv(["a"], [[math.nan]])
        assert csv.strip().splitlines()[1] == "-"


class TestAsciiChart:
    def chart(self, **kwargs):
        from repro.analysis import ascii_chart

        return ascii_chart(
            [1, 2, 4, 8],
            {"ASL": [1.0, 2.0, 4.0, 8.0], "OPT": [1.0, 1.2, 1.1, 1.0]},
            **kwargs,
        )

    def test_contains_legend_and_glyphs(self):
        text = self.chart(title="speedup")
        assert "*=ASL" in text
        assert "o=OPT" in text
        assert "speedup" in text
        assert "*" in text and "o" in text

    def test_axis_bounds(self):
        text = self.chart(x_label="DD")
        assert "(DD)" in text
        assert text.splitlines()[-1].strip().startswith("1")

    def test_nan_points_skipped(self):
        from repro.analysis import ascii_chart

        text = ascii_chart([1, 2], {"s": [float("nan"), 3.0]})
        assert "*" in text

    def test_empty_rejected(self):
        from repro.analysis import ascii_chart
        import pytest

        with pytest.raises(ValueError):
            ascii_chart([], {"s": []})
        with pytest.raises(ValueError):
            ascii_chart([1], {"s": [float("nan")]})

    def test_too_small_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            self.chart(width=5)
