"""The EXPLAIN artifact pipeline: payload, schema, rendering, disk."""

import json

import pytest

from repro.analysis.explain import (
    EXPLAIN_SCHEMA_VERSION,
    explain_payload,
    explain_trace_path,
    load_explain,
    render_budget_line,
    render_explain_markdown,
    render_txn_markdown,
    time_budget_of_trace,
    validate_explain,
    write_explain,
)
from repro.machine.config import MachineConfig
from repro.obs import MemoryRecorder, write_jsonl
from repro.obs.attrib import fold_trace
from repro.sim.simulation import Simulation
from repro.txn.workload import experiment1_workload


@pytest.fixture(scope="module")
def traced_events():
    recorder = MemoryRecorder()
    Simulation(
        MachineConfig(dd=1),
        experiment1_workload(1.2),
        scheduler="LOW",
        seed=3,
        duration_ms=40_000.0,
        warmup_ms=0.0,
        recorder=recorder,
    ).run()
    return recorder.events


@pytest.fixture(scope="module")
def payload(traced_events):
    return explain_payload(traced_events, source={"trace": "mem"})


class TestPayload:
    def test_validates_and_counts_transactions(self, payload):
        count = validate_explain(payload)
        assert count == len(payload["transactions"]) > 0
        assert payload["schema"] == EXPLAIN_SCHEMA_VERSION
        assert payload["source"]["trace"] == "mem"

    def test_committed_rows_conserve_response_time(self, payload):
        committed = [
            row for row in payload["transactions"]
            if row["status"] == "committed"
        ]
        assert committed
        for row in committed:
            attributed = (
                row["queued_ms"] + row["blocked_ms"]
                + row["executing_ms"] + row["wasted_ms"]
            )
            assert attributed == pytest.approx(row["response_ms"])

    def test_validation_rejects_broken_payloads(self, payload):
        with pytest.raises(ValueError, match="kind"):
            validate_explain({**payload, "kind": "arena"})
        with pytest.raises(ValueError, match="schema"):
            validate_explain({**payload, "schema": 999})
        missing = dict(payload)
        del missing["budget"]
        with pytest.raises(ValueError, match="budget"):
            validate_explain(missing)

    def test_validation_recomputes_conservation(self, payload):
        broken = json.loads(json.dumps(payload))
        row = next(
            r for r in broken["transactions"]
            if r["status"] == "committed"
        )
        row["executing_ms"] += 1.0
        with pytest.raises(ValueError, match="attributed"):
            validate_explain(broken)


class TestGoldenRoundTrip:
    def test_write_load_round_trip_is_identical(self, payload, tmp_path):
        json_path, md_path = write_explain(payload, tmp_path)
        assert json_path.name == "EXPLAIN.json"
        assert md_path.name == "EXPLAIN.md"
        reloaded = load_explain(json_path)
        assert reloaded == json.loads(json.dumps(payload))
        # load_explain validates; a corrupted artifact must not load
        corrupt = json.loads(json_path.read_text(encoding="utf-8"))
        corrupt["kind"] = "nope"
        json_path.write_text(json.dumps(corrupt), encoding="utf-8")
        with pytest.raises(ValueError):
            load_explain(json_path)

    def test_trace_artifact_to_payload(self, traced_events, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        write_jsonl(traced_events, trace)
        payload = explain_trace_path(trace)
        assert validate_explain(payload) > 0
        assert payload["source"]["trace"] == str(trace)
        budget = time_budget_of_trace(trace)
        assert budget["total_ms"] == pytest.approx(
            payload["budget"]["total_ms"]
        )


class TestRendering:
    def test_markdown_report_has_all_sections(self, payload):
        text = render_explain_markdown(payload)
        for heading in (
            "# Explain", "## Time budget", "## Lock hotspots",
            "## Critical path", "## Anomalies", "## Slowest transactions",
        ):
            assert heading in text

    def test_budget_line_shows_all_buckets(self, payload):
        line = render_budget_line(payload["budget"])
        for bucket in ("queued", "blocked", "executing", "wasted"):
            assert bucket in line

    def test_txn_deep_dive_resolves_roots_and_attempt_ids(
        self, traced_events
    ):
        attribution = fold_trace(traced_events)
        root = sorted(attribution.transactions)[0]
        text = render_txn_markdown(attribution, root)
        assert f"# Transaction T{root}" in text
        assert "## Attempt 0" in text
        with pytest.raises(KeyError):
            render_txn_markdown(attribution, 987654321)
